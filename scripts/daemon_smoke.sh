#!/usr/bin/env bash
# Operator-CLI round trip against a real `thriftyd`, exactly as a
# deployer would drive it: start a sim-clock daemon, wait for it to
# serve, register a tenant, advance quiesced log time until it is
# routable, hot-reload with one accepted knob and one rejected knob,
# read telemetry, stop, and require a clean exit with the socket gone.
#
# Usage: scripts/daemon_smoke.sh [path-to-thriftyd]
# (CI runs it after `cargo build --release -p thrifty-daemon`.)
set -euxo pipefail

BIN=${1:-target/release/thriftyd}
DIR=$(mktemp -d)
export THRIFTYD_SOCKET="$DIR/thriftyd.sock"
trap 'rm -rf "$DIR"' EXIT

"$BIN" init-config > "$DIR/thriftyd.json"
"$BIN" start --config "$DIR/thriftyd.json" --sim-clock &
DAEMON=$!

for _ in $(seq 1 100); do
  if "$BIN" ping 2>/dev/null; then break; fi
  sleep 0.1
done
"$BIN" ping
"$BIN" status | grep 'clock sim'
"$BIN" status | grep 'all routable'

# Register: the tenant parks and bulk-loads; an hour of quiesced log
# time is far beyond the calibrated load latency, after which it must
# be routable.
"$BIN" tenant register --id 50 --nodes 2 --data-gb 60.0
"$BIN" quiesce --ms 3600000
"$BIN" status | grep -E 'tenant +50 .*routable'
"$BIN" status | grep 'all routable'
"$BIN" submit --tenant 50 --template 2 --data-gb 30.0 --nodes 2
"$BIN" quiesce --ms 600000

# Hot-reload: sla_p is a live knob (applied); monitor_window_ms is
# deploy-time (rejected with a structured reason).
sed -i \
  -e 's/"sla_p": 0.999/"sla_p": 0.99/' \
  -e 's/"monitor_window_ms": 14400000/"monitor_window_ms": 28800000/' \
  "$DIR/thriftyd.json"
grep '"sla_p": 0.99,' "$DIR/thriftyd.json"   # the edit took
"$BIN" reload | tee "$DIR/reload.out"
grep '^applied  sla_p' "$DIR/reload.out"
grep '^rejected monitor_window_ms' "$DIR/reload.out"

# Telemetry reconciles with everything this script did.
"$BIN" telemetry | tee "$DIR/telemetry.json"
grep -E '"config.reloads": *1' "$DIR/telemetry.json"
grep -E '"config.knobs_applied": *1' "$DIR/telemetry.json"
grep -E '"config.knobs_rejected": *1' "$DIR/telemetry.json"
grep -E '"tenants.registered": *1' "$DIR/telemetry.json"
grep -E '"queries.completed": *1' "$DIR/telemetry.json"

"$BIN" stop
wait "$DAEMON"
test ! -e "$THRIFTYD_SOCKET"
echo "daemon smoke: full round trip passed"
