//! L5 annotated fixture: an audited float-to-int rounding cast.

pub fn round_ms(ms: f64) -> u64 {
    if !ms.is_finite() || ms <= 0.0 {
        return 0;
    }
    ms.round() as u64 // lint: allow(cast)
}
