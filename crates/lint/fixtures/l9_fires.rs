//! L9 positive fixture: a public fallible API with no `# Errors` section.

/// Parses a shard count.
pub fn parse_shards(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|e| e.to_string())
}
