//! L4 annotated fixture: a documented programmer-error panic.

use std::ops::Sub;

pub struct Millis(pub u64);

impl Sub for Millis {
    type Output = Millis;
    fn sub(self, rhs: Millis) -> Millis {
        // Mirrors std::time::Duration: underflow is a programmer error.
        Millis(self.0.checked_sub(rhs.0).expect("underflow")) // lint: allow(panic)
    }
}
