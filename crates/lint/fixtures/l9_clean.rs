//! L9 negative fixture: the failure modes are documented (and private /
//! infallible functions are out of scope).

/// Parses a shard count.
///
/// # Errors
/// A human-readable message when `s` is not a decimal `u32`.
pub fn parse_shards(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|e| e.to_string())
}

fn private_helper(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|e| e.to_string())
}

pub fn infallible(x: u32) -> u32 {
    x
}
