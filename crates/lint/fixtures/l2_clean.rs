//! L2 negative fixture: simulated time and a seeded RNG stream.

pub fn now_ms(clock: u64) -> u64 {
    clock
}

pub fn roll(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}
