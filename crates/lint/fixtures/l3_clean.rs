//! L3 negative fixture: no threading at all.

pub fn run() -> u32 {
    (0..4u32).map(|x| x * x).sum()
}
