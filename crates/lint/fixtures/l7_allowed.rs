//! L7 annotated fixture: the reduction's iteration order is pinned and
//! the annotation says why.

pub fn merged_mean(shards: &[Vec<f64>]) -> f64 {
    let sums = crate::parallel::par_map("sum", shards, |s| s.len() as f64);
    // Order pinned: par_map returns results in input order.
    // lint: allow(float-merge)
    sums.iter().sum::<f64>() / sums.len() as f64
}
