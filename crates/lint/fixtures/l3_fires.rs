//! L3 positive fixture: ad-hoc thread spawning.

pub fn run() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
