//! L7 negative fixture: the same shape off the merge path (no parallel
//! entry point anywhere in the function), plus an integer reduction on
//! one (integer addition is associative, so order cannot matter).

pub fn plain_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

pub fn merged_count(shards: &[Vec<f64>]) -> usize {
    let sizes = crate::parallel::par_map("len", shards, |s| s.len());
    sizes.iter().sum::<usize>()
}
