//! L1 negative fixture: ordered containers are the blessed replacement.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn build() -> (BTreeMap<u32, u32>, BTreeSet<u32>) {
    (BTreeMap::new(), BTreeSet::new())
}
