//! L9 annotated fixture: a reviewed exception (e.g. a trait-mirroring
//! signature whose error is documented on the trait).

/// Parses a shard count.
// lint: allow(error-docs)
pub fn parse_shards(s: &str) -> Result<u32, String> {
    s.parse::<u32>().map_err(|e| e.to_string())
}
