//! L1 annotated fixture: membership-only set, never iterated.

pub fn dedup_count(xs: &[u32]) -> usize {
    // Membership probes only; order is never observed. // lint: allow(unordered)
    let mut seen = std::collections::HashSet::new();
    xs.iter().filter(|x| seen.insert(**x)).count()
}
