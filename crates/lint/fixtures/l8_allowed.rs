//! L8 annotated fixture: a stale annotation kept deliberately (e.g. the
//! violation is about to return in a queued change), tombstoned with the
//! L8 key itself.

// lint: allow(stale-allow)
// lint: allow(unordered)
use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
