// L6 firing fixture for the daemon layer: linted under a synthetic
// `crates/daemon/src/...` path, this import reaches *up* into the bench
// harness — the fuzz harness drives the daemon, never the reverse.
use thrifty_bench::parallel::par_map;

pub fn f() {
    let _ = par_map;
}
