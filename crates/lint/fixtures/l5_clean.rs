//! L5 negative fixture: checked conversions (and float casts, which L5
//! deliberately ignores — precision loss is not silent truncation).

pub fn count(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

pub fn ratio(n: usize, d: usize) -> f64 {
    n as f64 / d.max(1) as f64
}
