//! L8 negative fixture: the annotation earns its keep — it suppresses a
//! real L1 finding on the next line.

// lint: allow(unordered)
use std::collections::HashMap;

// lint: allow(unordered)
pub fn build() -> HashMap<u32, u32> {
    HashMap::new() // lint: allow(unordered)
}
