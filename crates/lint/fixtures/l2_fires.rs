//! L2 positive fixture: ambient clock/entropy in a deterministic crate.

use std::time::Instant;
use std::time::SystemTime;

pub fn now() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
