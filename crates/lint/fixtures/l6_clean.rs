//! L6 negative fixture: core depending "down" on the simulator is the
//! permitted direction.

use mppdb_sim::time::SimTime;

pub fn horizon(now: SimTime) -> SimTime {
    now
}
