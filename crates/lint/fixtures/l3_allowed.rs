//! L3 annotated fixture: a blessed one-off worker thread.

pub fn run() {
    // Watchdog thread, joined before any result is read. // lint: allow(thread-spawn)
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
