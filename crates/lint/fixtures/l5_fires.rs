//! L5 positive fixture: bare integer casts in the simulator.

pub fn index(id: u32) -> usize {
    id as usize
}

pub fn count(n: usize) -> u32 {
    n as u32
}
