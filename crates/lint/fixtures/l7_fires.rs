//! L7 positive fixture: unpinned float reductions in a function on a
//! parallel merge path (it invokes the fork-join executor).

pub fn merged_mean(shards: &[Vec<f64>]) -> f64 {
    let sums = crate::parallel::par_map("sum", shards, |s| s.iter().sum::<f64>());
    let mut acc = 0.0;
    for s in &sums {
        acc += s;
    }
    acc / sums.len() as f64
}
