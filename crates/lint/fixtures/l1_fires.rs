//! L1 positive fixture: randomized-order containers in library code.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> (HashMap<u32, u32>, HashSet<u32>) {
    (HashMap::new(), HashSet::new())
}
