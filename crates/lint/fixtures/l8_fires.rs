//! L8 positive fixture: annotations that suppress nothing — one whose
//! violation was refactored away, one whose key names no rule.

// lint: allow(unordered)
use std::collections::BTreeMap;

// lint: allow(hashmpa)
pub fn build() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
