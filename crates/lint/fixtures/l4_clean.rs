//! L4 negative fixture: failures routed through Result.

/// First element of the slice.
///
/// # Errors
/// `"empty slice"` when there is no first element.
pub fn first(v: &[u32]) -> Result<u32, &'static str> {
    v.first().copied().ok_or("empty slice")
}

pub fn second(v: &[u32]) -> u32 {
    v.get(1).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32, 2];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
