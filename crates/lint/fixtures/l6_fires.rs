//! L6 positive fixture: a core module reaching "up" into the bench
//! harness — the layering contract forbids the core -> bench edge.

use thrifty_bench::parallel::par_map;

pub fn group_sizes(groups: &[Vec<u32>]) -> Vec<usize> {
    par_map("sizes", groups, |g| g.len())
}
