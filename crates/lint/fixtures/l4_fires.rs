//! L4 positive fixture: panicking APIs in core/sim library code.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("needs two elements")
}

pub fn boom() -> ! {
    panic!("library code must not abort the caller")
}

pub fn later() -> u32 {
    unreachable!("not yet")
}
