// L6 clean fixture for the daemon layer: the control plane may depend
// on every library underneath it.
use mppdb_sim::time::SimTime;
use thrifty::prelude::*;
use thrifty_workload::library::QueryLibrary;

pub fn f() -> u64 {
    let _ = std::any::type_name::<QueryLibrary>();
    let _ = std::any::type_name::<ThriftyService>();
    SimTime::from_ms(1).as_ms()
}
