//! L6 annotated fixture: a reviewed exception to the layering contract.

// lint: allow(layering)
use thrifty_bench::parallel::par_map;

pub fn group_sizes(groups: &[Vec<u32>]) -> Vec<usize> {
    par_map("sizes", groups, |g| g.len())
}
