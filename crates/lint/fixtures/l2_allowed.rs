//! L2 annotated fixture: a wall-clock read that never feeds results.

pub fn stamp_ns() -> u128 {
    // Operator-facing progress display only. // lint: allow(ambient)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
