//! L6: the crate layering contract.
//!
//! Parses `use` / path tokens tree-wide (any identifier that names a
//! workspace crate and is followed by `::`), builds the inter-crate and
//! inter-module dependency graph, and enforces the declarative
//! [`LayeringContract`]: every observed crate edge must be permitted, and
//! the observed crate graph must be acyclic. Test subtrees are exempt —
//! dev-dependencies legitimately point "up" the stack (core's unit tests
//! drive it with thrifty-workload histories).

use super::Run;
use crate::config::{CrateScope, LayeringContract};
use crate::report::Finding;
use crate::tokenizer::TokKind;
use std::collections::{BTreeMap, BTreeSet};

/// Where an edge was first observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeSite {
    /// File the referencing token lives in.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// The dependency graph the pass builds: crate-granularity edges (what
/// the contract constrains) and module-granularity edges (`crate::foo`
/// and `other_crate::foo` references, kept for reporting and tests).
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// `(from crate, to crate)` → first site, self-edges excluded.
    pub crate_edges: BTreeMap<(CrateScope, CrateScope), EdgeSite>,
    /// `(from module path, to module path)` → first site.
    pub module_edges: BTreeMap<(String, String), EdgeSite>,
}

/// Builds the dependency graph over a set of units (test tokens skipped).
pub fn dep_graph(units: &[super::FileUnit<'_>]) -> DepGraph {
    let mut graph = DepGraph::default();
    for unit in units {
        let toks = &unit.lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind != TokKind::Ident
                || unit.tree.is_test_token(i)
                || toks.get(i + 1).map(|t| t.text.as_str()) != Some("::")
            {
                continue;
            }
            // A path segment, not a path head (`std::collections::HashMap`
            // must not record `collections` as a crate).
            if i > 0 && toks[i - 1].text == "::" {
                continue;
            }
            let site = EdgeSite {
                file: unit.path.clone(),
                line: tok.line,
                column: tok.column,
            };
            let seg = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident);
            if let Some(target) = CrateScope::from_crate_ident(&tok.text) {
                if target != unit.scope {
                    graph
                        .crate_edges
                        .entry((unit.scope, target))
                        .or_insert_with(|| site.clone());
                    if let Some(seg) = seg {
                        let to = format!("{}::{}", target.short_name(), seg.text);
                        graph
                            .module_edges
                            .entry((unit.module.clone(), to))
                            .or_insert(site);
                    }
                }
            } else if tok.text == "crate" {
                if let Some(seg) = seg {
                    let to = format!("{}::{}", unit.scope.short_name(), seg.text);
                    if to != unit.module {
                        graph
                            .module_edges
                            .entry((unit.module.clone(), to))
                            .or_insert(site);
                    }
                }
            }
        }
    }
    graph
}

/// Runs the layering pass over the whole file set.
pub fn check(run: &mut Run<'_>, contract: &LayeringContract, findings: &mut Vec<Finding>) {
    // Contract violations: report the first offending site per
    // (file, target crate) so one bad import does not flood the report.
    let mut reported: BTreeSet<(String, CrateScope)> = BTreeSet::new();
    for u in 0..run.units.len() {
        let toks_len = run.units[u].lexed.tokens.len();
        let from = run.units[u].scope;
        if from == CrateScope::Other {
            continue;
        }
        for i in 0..toks_len {
            let unit = &run.units[u];
            let toks = &unit.lexed.tokens;
            let tok = &toks[i];
            if tok.kind != TokKind::Ident
                || unit.tree.is_test_token(i)
                || toks.get(i + 1).map(|t| t.text.as_str()) != Some("::")
                || (i > 0 && toks[i - 1].text == "::")
            {
                continue;
            }
            let Some(target) = CrateScope::from_crate_ident(&tok.text) else {
                continue;
            };
            if target == from || contract.permits(from, target) {
                continue;
            }
            let (line, column) = (tok.line, tok.column);
            if reported.contains(&(unit.path.clone(), target)) {
                continue;
            }
            if run.allowed(u, "layering", line) {
                continue;
            }
            let unit = &run.units[u];
            let scope_path = unit.tree.path_of_token(i);
            let message = format!(
                "crate `{}` must not depend on `{}` (layering contract: the architecture \
                 is a DAG with bench on top of daemon/core/workload on top of sim)",
                from.short_name(),
                target.short_name()
            );
            reported.insert((unit.path.clone(), target));
            findings.push(run.finding(u, "L6", line, column, scope_path, message));
        }
    }

    // Cycle detection over the observed crate graph (allowed edges
    // included — a contract edit must not be able to smuggle a cycle in).
    let graph = dep_graph(&run.units);
    if let Some(cycle) = find_cycle(&graph) {
        let names: Vec<&str> = cycle.iter().map(|c| c.short_name()).collect();
        let first_edge = (cycle[0], cycle[1]);
        let site = graph
            .crate_edges
            .get(&first_edge)
            .cloned()
            .unwrap_or(EdgeSite {
                file: String::new(),
                line: 0,
                column: 0,
            });
        findings.push(Finding {
            rule: "L6".to_string(),
            file: site.file.clone(),
            line: site.line,
            column: site.column,
            scope: String::new(),
            message: format!(
                "crate dependency cycle: {} (the layering contract requires a DAG)",
                names.join(" -> ")
            ),
            snippet: run
                .units
                .iter()
                .find(|u| u.path == site.file)
                .map(|u| u.snippet(site.line))
                .unwrap_or_default(),
        });
    }
}

/// Finds a crate-level cycle, returned as `[a, b, .., a]`.
fn find_cycle(graph: &DepGraph) -> Option<Vec<CrateScope>> {
    let mut adjacency: BTreeMap<CrateScope, Vec<CrateScope>> = BTreeMap::new();
    for (from, to) in graph.crate_edges.keys() {
        adjacency.entry(*from).or_default().push(*to);
    }
    let mut visited: BTreeSet<CrateScope> = BTreeSet::new();
    for &start in adjacency.keys() {
        if visited.contains(&start) {
            continue;
        }
        let mut path: Vec<CrateScope> = Vec::new();
        if let Some(cycle) = dfs(start, &adjacency, &mut visited, &mut path) {
            return Some(cycle);
        }
    }
    None
}

fn dfs(
    node: CrateScope,
    adjacency: &BTreeMap<CrateScope, Vec<CrateScope>>,
    visited: &mut BTreeSet<CrateScope>,
    path: &mut Vec<CrateScope>,
) -> Option<Vec<CrateScope>> {
    if let Some(pos) = path.iter().position(|&n| n == node) {
        let mut cycle = path[pos..].to_vec();
        cycle.push(node);
        return Some(cycle);
    }
    if visited.contains(&node) {
        return None;
    }
    visited.insert(node);
    path.push(node);
    if let Some(nexts) = adjacency.get(&node) {
        for &next in nexts {
            if let Some(cycle) = dfs(next, adjacency, visited, path) {
                return Some(cycle);
            }
        }
    }
    path.pop();
    None
}
