//! L8: every `lint: allow(..)` annotation must suppress something.
//!
//! The escape hatches are load-bearing documentation: each one records a
//! reviewed decision that a specific violation is safe. When the code it
//! justified is refactored away, the stale annotation silently excuses
//! the next real violation typed near it — so an allow that suppressed
//! nothing during this run is itself a finding, as is an allow whose key
//! matches no rule. This pass runs last, over the consumption ledger the
//! other passes filled in.
//!
//! A deliberately kept tombstone can be annotated with the L8 key itself
//! (`allow(stale-allow)` on or above the stale line), which follows the
//! same rules: the tombstone must itself suppress a stale-allow finding.

use super::Run;
use crate::config::RULES;
use crate::report::Finding;

/// Runs the allow-audit over the whole file set.
pub fn check(run: &mut Run<'_>, findings: &mut Vec<Finding>) {
    let known: Vec<&str> = RULES.iter().map(|r| r.allow_key).collect();
    for u in 0..run.units.len() {
        let sites: Vec<(usize, usize, usize, String)> = run.units[u]
            .lexed
            .allows
            .iter()
            .enumerate()
            .map(|(ai, s)| (ai, s.line, s.column, s.key.clone()))
            .collect();
        for (ai, line, column, key) in sites {
            if key == "stale-allow" {
                // Tombstones are audited after the findings they cover.
                continue;
            }
            if run.used_allows.contains(&(u, ai)) {
                continue;
            }
            if run.allowed(u, "stale-allow", line) {
                continue;
            }
            let message = if known.contains(&key.as_str()) {
                format!(
                    "`lint: allow({key})` suppresses nothing — the violation it justified \
                     is gone; remove the stale annotation (or keep a deliberate tombstone \
                     with `lint: allow(stale-allow)`)"
                )
            } else {
                format!(
                    "`lint: allow({key})` names no rule (known keys: {}); fix the key or \
                     remove the annotation",
                    known.join(", ")
                )
            };
            let scope_path = scope_at_line(run, u, line);
            findings.push(run.finding(u, "L8", line, column, scope_path, message));
        }
        // Second sweep: tombstones that themselves suppressed nothing.
        let sites: Vec<(usize, usize, usize, String)> = run.units[u]
            .lexed
            .allows
            .iter()
            .enumerate()
            .map(|(ai, s)| (ai, s.line, s.column, s.key.clone()))
            .collect();
        for (ai, line, column, key) in sites {
            if key != "stale-allow" || run.used_allows.contains(&(u, ai)) {
                continue;
            }
            let message = "`lint: allow(stale-allow)` tombstone covers no stale annotation; \
                           remove it"
                .to_string();
            let scope_path = scope_at_line(run, u, line);
            findings.push(run.finding(u, "L8", line, column, scope_path, message));
        }
    }
}

/// Scope path of the nearest token on or after a comment's line (the
/// comment itself is not a token).
fn scope_at_line(run: &Run<'_>, u: usize, line: usize) -> String {
    let unit = &run.units[u];
    unit.lexed
        .tokens
        .iter()
        .position(|t| t.line >= line)
        .map(|i| unit.tree.path_of_token(i))
        .unwrap_or_else(|| unit.module.clone())
}
