//! L1–L5: the lexical determinism & robustness rules, migrated onto the
//! scope tree (test exemption is structural: any token inside a
//! `#[cfg(test)]` / `#[test]` subtree is skipped, and every finding
//! carries its scope path).

use super::Run;
use crate::config::CrateScope;
use crate::report::Finding;
use crate::tokenizer::TokKind;

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Runs L1–L5 over one file.
pub fn check(run: &mut Run<'_>, u: usize, findings: &mut Vec<Finding>) {
    let scope = run.units[u].scope;
    let is_parallel_module = run.units[u].path.ends_with("crates/bench/src/parallel.rs")
        || run.units[u].path == "crates/bench/src/parallel.rs";
    let n = run.units[u].lexed.tokens.len();

    for i in 0..n {
        // Copy the token context out before calling `run.allowed` (which
        // borrows the run mutably to fill the L8 consumption ledger).
        let (name, line, column, scope_path, prev_text, next_text) = {
            let unit = &run.units[u];
            let toks = &unit.lexed.tokens;
            let tok = &toks[i];
            if tok.kind != TokKind::Ident || unit.tree.is_test_token(i) {
                continue;
            }
            (
                tok.text.clone(),
                tok.line,
                tok.column,
                unit.tree.path_of_token(i),
                i.checked_sub(1).map(|p| toks[p].text.clone()),
                toks.get(i + 1).map(|t| t.text.clone()),
            )
        };
        let prev_text = prev_text.as_deref();
        let next_text = next_text.as_deref();

        // L1: randomized iteration order.
        if (name == "HashMap" || name == "HashSet") && !run.allowed(u, "unordered", line) {
            let message = format!(
                "{name} has a randomized iteration order that breaks replay determinism; \
                 use BTreeMap/BTreeSet (or annotate membership-only use with \
                 `// lint: allow(unordered)`)"
            );
            findings.push(run.finding(u, "L1", line, column, scope_path.clone(), message));
        }

        // L2: ambient nondeterminism in deterministic crates.
        if matches!(
            scope,
            CrateScope::Core | CrateScope::Sim | CrateScope::Workload
        ) && matches!(
            name.as_str(),
            "Instant" | "SystemTime" | "thread_rng" | "from_entropy"
        ) && !run.allowed(u, "ambient", line)
        {
            let message = format!(
                "{name} reads ambient wall-clock/entropy state; deterministic crates must \
                 take time from SimTime and randomness from seeded DetRng"
            );
            findings.push(run.finding(u, "L2", line, column, scope_path.clone(), message));
        }

        // L3: ad-hoc threading outside the blessed executor.
        if name == "spawn" && !is_parallel_module && !run.allowed(u, "thread-spawn", line) {
            let message = "thread spawning outside thrifty_bench::parallel bypasses the \
                           deterministic fork-join executor"
                .to_string();
            findings.push(run.finding(u, "L3", line, column, scope_path.clone(), message));
        }

        // L4: panicking APIs in core/sim/workload library code.
        if matches!(
            scope,
            CrateScope::Core | CrateScope::Sim | CrateScope::Workload
        ) {
            let method_call =
                |m: &str| name == m && prev_text == Some(".") && next_text == Some("(");
            let macro_call = |m: &str| name == m && next_text == Some("!");
            if method_call("unwrap") || method_call("expect") {
                if !run.allowed(u, "panic", line) {
                    let message = format!(
                        ".{name}() can panic in library code; route the failure through \
                         ThriftyError/SimError instead"
                    );
                    findings.push(run.finding(u, "L4", line, column, scope_path.clone(), message));
                }
            } else if (macro_call("panic") || macro_call("unreachable") || macro_call("todo"))
                && !run.allowed(u, "panic", line)
            {
                let message = format!(
                    "{name}! aborts the caller; library code must return \
                     ThriftyError/SimError instead"
                );
                findings.push(run.finding(u, "L4", line, column, scope_path.clone(), message));
            }
        }

        // L5: bare integer casts in the simulator.
        if scope == CrateScope::Sim && name == "as" {
            let next_int = next_text.map(|t| INT_TYPES.contains(&t)) == Some(true);
            if next_int && !run.allowed(u, "cast", line) {
                let target = next_text.unwrap_or_default().to_string();
                let message = format!(
                    "bare `as {target}` cast can truncate silently; use the checked helpers \
                     in mppdb_sim::convert (or annotate with `// lint: allow(cast)`)"
                );
                findings.push(run.finding(u, "L5", line, column, scope_path, message));
            }
        }
    }
}
