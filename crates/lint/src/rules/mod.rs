//! The rule passes and the shared per-file analysis unit.
//!
//! Per-file rules (L1–L5 lexical, L9 error-docs) see one [`FileUnit`];
//! tree-wide rules (L6 layering, L7 float-order) see the whole set; the
//! L8 allow-audit runs last over the allow-consumption ledger the other
//! passes filled in. All passes share one tokenization and one scope
//! tree per file.

pub mod allow_audit;
pub mod error_docs;
pub mod float_order;
pub mod layering;
pub mod lexical;

use crate::config::{crate_scope, module_path, CrateScope, LayeringContract};
use crate::report::{sort_findings, Finding};
use crate::tokenizer::{lex, Lexed};
use crate::tree::{self, ScopeTree};
use std::collections::BTreeSet;

/// One file's shared analysis state: tokens, allow sites, scope tree.
pub struct FileUnit<'a> {
    /// Normalized (forward-slash) path, used for reporting and scoping.
    pub path: String,
    /// Source lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Lexer output.
    pub lexed: Lexed,
    /// Brace-tree scopes.
    pub tree: ScopeTree,
    /// Owning workspace crate.
    pub scope: CrateScope,
    /// Module path (`core::reconsolidation`).
    pub module: String,
}

impl<'a> FileUnit<'a> {
    fn build(path: &str, source: &'a str) -> FileUnit<'a> {
        let norm = path.replace('\\', "/");
        let lexed = lex(source);
        let module = module_path(&norm);
        let tree = tree::build(&lexed.tokens, &module);
        FileUnit {
            path: norm.clone(),
            lines: source.lines().collect(),
            lexed,
            tree,
            scope: crate_scope(&norm),
            module,
        }
    }

    /// The trimmed source line for a finding snippet.
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// A whole lint run: the file units plus the allow-consumption ledger.
pub struct Run<'a> {
    /// Per-file analysis units.
    pub units: Vec<FileUnit<'a>>,
    /// `(unit index, allow index)` pairs consumed by some rule.
    pub used_allows: BTreeSet<(usize, usize)>,
}

impl<'a> Run<'a> {
    /// Builds the per-file units.
    pub fn new(files: &[(&str, &'a str)]) -> Run<'a> {
        Run {
            units: files
                .iter()
                .map(|(path, source)| FileUnit::build(path, source))
                .collect(),
            used_allows: BTreeSet::new(),
        }
    }

    /// Is a finding of `key`'s rule at `line` of `unit` suppressed by an
    /// annotation? An annotation covers its own line and the next line,
    /// so it can trail the offending expression or sit on the line above
    /// it. Consumes the annotation for the L8 audit.
    pub fn allowed(&mut self, unit: usize, key: &str, line: usize) -> bool {
        let mut hit = false;
        for (ai, site) in self.units[unit].lexed.allows.iter().enumerate() {
            if site.key == key && (site.line == line || site.line + 1 == line) {
                self.used_allows.insert((unit, ai));
                hit = true;
            }
        }
        hit
    }

    /// Builds a finding with the snippet and scope path filled in from
    /// the unit.
    pub fn finding(
        &self,
        unit: usize,
        rule: &str,
        line: usize,
        column: usize,
        scope: String,
        message: String,
    ) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: self.units[unit].path.clone(),
            line,
            column,
            scope,
            message,
            snippet: self.units[unit].snippet(line),
        }
    }
}

/// Runs every pass over the file set with the given layering contract.
pub fn run_all(files: &[(&str, &str)], contract: &LayeringContract) -> Vec<Finding> {
    let mut run = Run::new(files);
    let mut findings = Vec::new();
    for u in 0..run.units.len() {
        lexical::check(&mut run, u, &mut findings);
        error_docs::check(&mut run, u, &mut findings);
    }
    layering::check(&mut run, contract, &mut findings);
    float_order::check(&mut run, &mut findings);
    allow_audit::check(&mut run, &mut findings);
    sort_findings(&mut findings);
    findings
}
