//! L9: public fallible APIs in `core`/`sim` document their errors.
//!
//! The PR 2 error-hardening discipline routes library failures through
//! `ThriftyError`/`SimError`; a caller can only handle what is
//! documented. Every `pub fn` in `core`/`sim` whose signature returns a
//! `Result` (any `*Result` alias counts) must carry an `# Errors` section
//! in the doc block sitting directly above the item (attributes between
//! the docs and the signature are fine). Trait methods and test code are
//! exempt; a deliberate exception is annotated `// lint: allow(error-docs)`
//! on or above the `fn` line.

use super::Run;
use crate::config::CrateScope;
use crate::report::Finding;

/// Runs the error-docs pass over one file.
pub fn check(run: &mut Run<'_>, u: usize, findings: &mut Vec<Finding>) {
    if !matches!(run.units[u].scope, CrateScope::Core | CrateScope::Sim) {
        return;
    }
    let candidates: Vec<(usize, usize, usize, usize, String)> = run.units[u]
        .tree
        .fn_nodes()
        .filter(|(_, n)| n.is_pub && !n.is_test && n.returns_result)
        .map(|(idx, n)| {
            (
                idx,
                n.anchor_line,
                n.name_line,
                n.name_column,
                n.name.clone(),
            )
        })
        .collect();
    for (idx, anchor_line, name_line, name_column, name) in candidates {
        // Collect the contiguous doc block directly above the item.
        let mut docs = String::new();
        let mut l = anchor_line.saturating_sub(1);
        while l >= 1 {
            match run.units[u].lexed.doc_lines.get(&l) {
                Some(text) => {
                    docs.push_str(text);
                    docs.push('\n');
                }
                None => break,
            }
            l -= 1;
        }
        if docs.contains("# Errors") {
            continue;
        }
        if run.allowed(u, "error-docs", name_line) {
            continue;
        }
        let scope_path = run.units[u].tree.path(idx);
        let message = format!(
            "pub fn `{name}` returns a Result but its doc comment has no `# Errors` \
             section; document when it fails (or annotate with \
             `// lint: allow(error-docs)`)"
        );
        findings.push(run.finding(u, "L9", name_line, name_column, scope_path, message));
    }
}
