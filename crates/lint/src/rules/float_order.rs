//! L7: float reductions on parallel merge paths must pin their order.
//!
//! Floating-point addition is not associative, so an `f64` reduction
//! whose iteration order can vary with the thread count produces
//! run-dependent bits — exactly the failure mode the byte-identical
//! replay contract exists to prevent, and one a lexical pass per line
//! cannot see. This pass works tree-wide:
//!
//! 1. index every `fn` in the scope forest;
//! 2. build a conservative name-based call graph (an identifier followed
//!    by `(`, or preceded by `::`, is a potential callee — an
//!    over-approximation, which for a reachability *screen* is the safe
//!    direction);
//! 3. seed reachability with the merge paths: every function defined in
//!    `thrifty_bench::parallel` / `thrifty_bench::sharded`, plus every
//!    function whose body invokes `par_map` / `par_join2` /
//!    `two_step_grouping_sharded`;
//! 4. flag `f32`/`f64` reductions — `.sum::<f64>()`, `.product::<f64>()`,
//!    `.fold(float, ..)`, and manual float accumulators
//!    (`let mut acc = 0.0; .. acc += ..`) — in any reachable function.
//!
//! A surviving reduction must carry `// lint: allow(float-merge)` with a
//! justification of why its iteration order is pinned (e.g. the iterator
//! walks a `BTreeMap`, or `par_map` preserves input order).

use super::Run;
use crate::report::Finding;
use crate::tokenizer::{TokKind, Token};
use crate::tree::ScopeKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Function names that start a parallel merge path when referenced.
const MERGE_ENTRY_CALLS: [&str; 3] = ["par_map", "par_join2", "two_step_grouping_sharded"];

/// Modules whose every function is a merge path by definition.
const MERGE_MODULES: [&str; 2] = [
    "crates/bench/src/parallel.rs",
    "crates/bench/src/sharded.rs",
];

/// Runs the float-order pass over the whole file set.
pub fn check(run: &mut Run<'_>, findings: &mut Vec<Finding>) {
    // Index every non-test fn by name.
    let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    let mut all_fns: Vec<(usize, usize)> = Vec::new();
    for (u, unit) in run.units.iter().enumerate() {
        for (idx, node) in unit.tree.fn_nodes() {
            if node.is_test {
                continue;
            }
            by_name.entry(node.name.clone()).or_default().push((u, idx));
            all_fns.push((u, idx));
        }
    }

    // Seeds: merge-module fns + fns that invoke a merge entry point.
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut reachable: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(u, idx) in &all_fns {
        let unit = &run.units[u];
        let in_merge_module = MERGE_MODULES.iter().any(|m| unit.path.ends_with(m));
        let node = &unit.tree.nodes[idx];
        let calls_entry = tokens_in(unit, node.tokens)
            .any(|(_, t)| t.kind == TokKind::Ident && MERGE_ENTRY_CALLS.contains(&t.text.as_str()));
        if (in_merge_module || calls_entry) && reachable.insert((u, idx)) {
            queue.push_back((u, idx));
        }
    }

    // BFS over the name-based call graph.
    while let Some((u, idx)) = queue.pop_front() {
        let unit = &run.units[u];
        let node = &unit.tree.nodes[idx];
        let toks = &unit.lexed.tokens;
        for (i, t) in tokens_in(unit, node.tokens) {
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = toks.get(i + 1).map(|t| t.text.as_str());
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            let callish = next == Some("(") || prev.map(|t| t.text.as_str()) == Some("::");
            if !callish {
                continue;
            }
            if let Some(defs) = by_name.get(&t.text) {
                for &target in defs {
                    if reachable.insert(target) {
                        queue.push_back(target);
                    }
                }
            }
        }
    }

    // Flag float reductions in reachable fns. Tokens belonging to nested
    // named scopes are skipped — the nested item is flagged on its own if
    // it is itself reachable.
    for &(u, idx) in &all_fns {
        if !reachable.contains(&(u, idx)) {
            continue;
        }
        let sites = reduction_sites(&run.units[u], idx);
        for (line, column, what) in sites {
            if run.units[u].lexed.tokens.is_empty() {
                continue;
            }
            if run.allowed(u, "float-merge", line) {
                continue;
            }
            let scope_path = run.units[u].tree.path(idx);
            let message = format!(
                "{what} on a parallel merge path: float addition is not associative, so \
                 the iteration order must be pinned — restructure, or annotate with \
                 `// lint: allow(float-merge)` and a note stating why the order is pinned"
            );
            findings.push(run.finding(u, "L7", line, column, scope_path, message));
        }
    }
}

/// Iterates `(index, token)` over a node's direct token range.
fn tokens_in<'a>(
    unit: &'a super::FileUnit<'_>,
    range: (usize, usize),
) -> impl Iterator<Item = (usize, &'a Token)> {
    let (start, end) = range;
    unit.lexed
        .tokens
        .iter()
        .enumerate()
        .skip(start)
        .take_while(move |(i, _)| *i <= end)
}

/// Finds float-reduction sites directly inside fn node `idx` (nested
/// named scopes excluded): `(line, column, description)`.
fn reduction_sites(unit: &super::FileUnit<'_>, idx: usize) -> Vec<(usize, usize, String)> {
    let node = &unit.tree.nodes[idx];
    debug_assert_eq!(node.kind, ScopeKind::Fn);
    let toks = &unit.lexed.tokens;
    let (start, end) = node.tokens;
    let direct = |i: usize| unit.tree.scope_of(i) == idx;

    // Pass 1: manual float accumulators declared in this fn.
    let mut accumulators: BTreeSet<&str> = BTreeSet::new();
    let mut i = start;
    while i + 3 <= end {
        if !direct(i) || toks[i].text != "let" || toks[i + 1].text != "mut" {
            i += 1;
            continue;
        }
        let name_tok = &toks[i + 2];
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // `let mut x = <float>` or `let mut x: f64 = ..`.
        let mut j = i + 3;
        let typed_float = toks.get(j).map(|t| t.text.as_str()) == Some(":")
            && toks.get(j + 1).map(|t| t.text == "f64" || t.text == "f32") == Some(true);
        if typed_float {
            accumulators.insert(name_tok.text.as_str());
            i += 1;
            continue;
        }
        if toks.get(j).map(|t| t.text.as_str()) == Some("=") {
            j += 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("-") {
                j += 1;
            }
            if toks.get(j).map(|t| t.is_float_literal()) == Some(true) {
                accumulators.insert(name_tok.text.as_str());
            }
        }
        i += 1;
    }

    // Pass 2: reduction sites.
    let mut sites = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        if !direct(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        // `.sum::<f64>()` / `.product::<f32>()`.
        if (t.text == "sum" || t.text == "product")
            && prev == Some(".")
            && next == Some("::")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("<")
            && toks.get(i + 3).map(|t| t.text == "f64" || t.text == "f32") == Some(true)
        {
            let ty = &toks[i + 3].text;
            sites.push((
                t.line,
                t.column,
                format!("`.{}::<{}>()` reduction", t.text, ty),
            ));
            continue;
        }
        // `.fold(<float literal or f64::CONST>, ..)`.
        if t.text == "fold" && prev == Some(".") && next == Some("(") {
            let mut depth = 0usize;
            let mut float_init = false;
            for tok in &toks[(i + 1)..=end.min(toks.len().saturating_sub(1))] {
                match tok.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    "," if depth == 1 => break,
                    _ => {
                        if tok.is_float_literal() || tok.text == "f64" || tok.text == "f32" {
                            float_init = true;
                        }
                    }
                }
            }
            if float_init {
                sites.push((t.line, t.column, "`.fold(..)` float reduction".to_string()));
            }
            continue;
        }
        // Compound assignment to a manual float accumulator.
        if accumulators.contains(t.text.as_str())
            && matches!(next, Some("+") | Some("-") | Some("*") | Some("/"))
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("=")
        {
            sites.push((
                t.line,
                t.column,
                format!("manual float accumulation into `{}`", t.text),
            ));
        }
    }
    sites
}
