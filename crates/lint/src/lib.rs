//! `thrifty-lint`: the determinism & robustness static-analysis pass.
//!
//! The Thrifty reproduction rests on a byte-identical determinism contract
//! (same inputs, same report, bit for bit — see ARCHITECTURE.md) and on the
//! PR 2 error-hardening discipline (library code reports failures through
//! `ThriftyError`/`SimError` instead of panicking). Neither contract is
//! visible to the compiler, so this crate machine-checks both on every
//! commit — no network, no rustc plumbing. Since PR 9 it is a scope-aware
//! multi-pass analyzer: a comment/string-aware tokenizer
//! ([`tokenizer`]) feeds a lightweight brace-tree parser ([`tree`]) that
//! assigns every token a scope path (crate → module → `impl`/`fn`) and
//! exempts `#[cfg(test)]`/`#[test]` **subtrees** structurally; the rule
//! passes ([`rules`]) then run over one shared analysis per file:
//!
//! | rule | scope                       | what it rejects                                    |
//! |------|-----------------------------|----------------------------------------------------|
//! | L1   | all workspace crates        | `HashMap`/`HashSet` (iteration order is random)    |
//! | L2   | `core`,`sim`,`workload`     | `Instant`/`SystemTime`/`thread_rng` ambient state (the `daemon` clock adapter is the sanctioned exception) |
//! | L3   | all but `bench::parallel`   | `spawn` (ad-hoc threading)                         |
//! | L4   | `core`,`sim`,`workload`     | `.unwrap()`/`.expect()`/`panic!`/`unreachable!`    |
//! | L5   | `sim`                       | bare `as` casts to integer types                   |
//! | L6   | tree-wide                   | crate edges outside the layering contract; cycles  |
//! | L7   | parallel merge paths        | unpinned `f32`/`f64` reductions                    |
//! | L8   | all workspace crates        | `lint: allow(..)` that suppresses nothing          |
//! | L9   | `core`,`sim`                | `pub fn -> Result` without an `# Errors` section   |
//!
//! Legitimate exceptions are annotated in the source with
//! `// lint: allow(<key>)` (keys: `unordered`, `ambient`, `thread-spawn`,
//! `panic`, `cast`, `layering`, `float-merge`, `stale-allow`,
//! `error-docs`). An annotation covers its own line and the next line, so
//! it can trail the offending expression or sit on the line above it —
//! and rule L8 audits the escape hatches themselves: an annotation that
//! suppresses nothing is a finding, so the hatches cannot rot.
//! `thrifty-lint --explain <rule>` prints each rule's rationale.
//!
//! The pass is wired in three places so it cannot rot: the
//! `tests/lint_clean.rs` integration test (tier-1 `cargo test` fails on any
//! finding), a dedicated CI job (`cargo run -p thrifty-lint -- crates
//! --format json`, plus the `lint_scale` wall-time guard), and fixture
//! tests under `crates/lint/fixtures/` that prove each rule fires on
//! known-bad snippets, stays quiet on clean ones, and honors its allow key.

pub mod config;
pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod tree;

pub use config::{explain, rule_info, CrateScope, LayeringContract, RuleInfo, RULES};
pub use report::{render_json, render_text, Finding, LintReport};
pub use rules::layering::{dep_graph as build_dep_graph, DepGraph, EdgeSite};

use std::fs;
use std::io;
use std::path::Path;

/// Lints a set of files as one tree: per-file rules plus the tree-wide
/// layering, float-order, and allow-audit passes. Paths are used both for
/// reporting and for rule scoping, so callers can pass synthetic paths
/// like `crates/core/src/example.rs`.
pub fn lint_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    rules::run_all(files, &LayeringContract::default())
}

/// [`lint_sources`] with a caller-supplied layering contract.
pub fn lint_sources_with(files: &[(&str, &str)], contract: &LayeringContract) -> Vec<Finding> {
    rules::run_all(files, contract)
}

/// Lints one file's source text (a one-file tree; the tree-wide passes
/// still run, scoped to what a single file can show).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_sources(&[(path, source)])
}

/// Builds the inter-crate / inter-module dependency graph for a file set
/// without running the rules (test subtrees excluded).
pub fn dep_graph(files: &[(&str, &str)]) -> DepGraph {
    let run = rules::Run::new(files);
    rules::layering::dep_graph(&run.units)
}

/// Per-token scope assignment for one file — the tokenizer↔tree seam,
/// exposed for the property tests: `(token text, line, scope path,
/// is_test)` in token order.
pub fn token_scopes(path: &str, source: &str) -> Vec<(String, usize, String, bool)> {
    let lexed = tokenizer::lex(source);
    let module = config::module_path(path);
    let tree = tree::build(&lexed.tokens, &module);
    lexed
        .tokens
        .iter()
        .enumerate()
        .map(|(i, t)| {
            (
                t.text.clone(),
                t.line,
                tree.path_of_token(i),
                tree.is_test_token(i),
            )
        })
        .collect()
}

/// Directory names never descended into: generated output, fixtures with
/// intentionally-bad code, and test/bench trees (exempt by policy).
const SKIP_DIRS: [&str; 5] = ["target", "fixtures", "tests", "benches", "examples"];

/// Recursively lints every `.rs` file under `root` that lives in a `src`
/// tree. Files are visited in sorted order so reports are deterministic.
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &files {
        let display = f.to_string_lossy().replace('\\', "/");
        if !display.split('/').any(|c| c == "src") {
            continue;
        }
        sources.push((display, fs::read_to_string(f)?));
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let findings = lint_sources(&refs);
    Ok(LintReport {
        files_scanned: refs.len(),
        findings,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if dir.is_file() {
        if dir.extension().map(|e| e == "rs") == Some(true) {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn strings_and_comments_are_not_flagged() {
        let src = r##"
            // A comment mentioning HashMap and unwrap() and panic! freely.
            /* Block comment: HashSet, Instant::now(), thread::spawn. */
            fn f() -> &'static str {
                let s = "HashMap::new().unwrap() as u64 panic!";
                let r = r#"HashSet spawn Instant"#;
                let c = '"';
                let _ = (s, r, c);
                "expect(\"nothing\")"
            }
        "##;
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = r#"
            pub fn ok() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let m: HashMap<u32, u32> = HashMap::new();
                    assert_eq!(m.len(), 0);
                    let _ = "x".parse::<u32>().unwrap();
                    panic!("fine in tests");
                }
            }
        "#;
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn annotations_cover_same_and_next_line() {
        let trailing = "use std::collections::HashMap; // lint: allow(unordered)\n";
        assert!(lint_source("crates/core/src/x.rs", trailing).is_empty());
        let above = "// lint: allow(unordered)\nuse std::collections::HashMap;\n";
        assert!(lint_source("crates/core/src/x.rs", above).is_empty());
        // Too far away: the L1 finding survives, and the stranded
        // annotation is itself an L8 finding.
        let too_far = "// lint: allow(unordered)\n\nuse std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", too_far)),
            vec!["L8", "L1"]
        );
    }

    #[test]
    fn rule_scoping_follows_the_crate() {
        let cast = "fn f(x: usize) -> u32 { x as u32 }\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", cast).len(), 1);
        assert!(lint_source("crates/core/src/x.rs", cast).is_empty());

        let instant = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", instant).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", instant).is_empty());

        let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", unwrap).len(), 1);
        // PR 7 extends the no-panic posture into the workload crate.
        assert_eq!(lint_source("crates/workload/src/x.rs", unwrap).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", unwrap).is_empty());
    }

    #[test]
    fn spawn_is_allowed_only_in_the_parallel_module() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_source("crates/bench/src/pipeline.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/parallel.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_position_snippet_and_scope() {
        let src = "impl Widget {\n    fn f(&self, x: usize) -> u32 {\n        x as u32\n    }\n}\n";
        let fs = lint_source("crates/sim/src/widget.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "L5");
        assert_eq!(fs[0].line, 3);
        assert_eq!(fs[0].snippet, "x as u32");
        assert_eq!(fs[0].scope, "sim::widget::Widget::f");
    }

    #[test]
    fn layering_violations_fire_across_a_file_set() {
        let core_bad = "use thrifty_bench::parallel::par_map;\npub fn f() {}\n";
        let findings = lint_sources(&[("crates/core/src/x.rs", core_bad)]);
        assert_eq!(rules_of(&findings), vec!["L6"]);

        // bench -> core is a permitted edge.
        let bench_ok = "use thrifty::prelude::*;\npub fn f() {}\n";
        assert!(lint_sources(&[("crates/bench/src/x.rs", bench_ok)]).is_empty());
    }

    #[test]
    fn float_merges_fire_only_on_merge_paths() {
        let on_path = "pub fn merge(xs: &[Vec<f64>]) -> f64 {\n\
                       let per = crate::parallel::par_map(\"s\", xs, |v| v.len());\n\
                       xs[0].iter().sum::<f64>() + per.len() as f64\n}\n";
        let findings = lint_source("crates/bench/src/x.rs", on_path);
        assert_eq!(rules_of(&findings), vec!["L7"]);

        // The same reduction with no parallel entry point in sight is not
        // a merge path.
        let off_path = "pub fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert!(lint_source("crates/bench/src/x.rs", off_path).is_empty());
    }

    #[test]
    fn error_docs_required_in_core_and_sim_only() {
        let undocumented = "pub fn f() -> Result<u32, String> { Ok(1) }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", undocumented)),
            vec!["L9"]
        );
        assert!(lint_source("crates/bench/src/x.rs", undocumented).is_empty());

        let documented =
            "/// Does a thing.\n///\n/// # Errors\n/// Fails when unlucky.\npub fn f() -> Result<u32, String> { Ok(1) }\n";
        assert!(lint_source("crates/core/src/x.rs", documented).is_empty());
    }
}
