//! `thrifty-lint`: the determinism & robustness static-analysis pass.
//!
//! The Thrifty reproduction rests on a byte-identical determinism contract
//! (same inputs, same report, bit for bit — see ARCHITECTURE.md) and on the
//! PR 2 error-hardening discipline (library code reports failures through
//! `ThriftyError`/`SimError` instead of panicking). Neither contract is
//! visible to the compiler, so this crate machine-checks both on every
//! commit with a small, self-contained lexical analysis — no network, no
//! rustc plumbing, just a comment/string-aware tokenizer and five rules:
//!
//! | rule | scope                  | what it rejects                                   |
//! |------|------------------------|---------------------------------------------------|
//! | L1   | all workspace crates   | `HashMap`/`HashSet` (iteration order is random)   |
//! | L2   | `core`,`sim`,`workload`| `Instant`/`SystemTime`/`thread_rng` ambient state |
//! | L3   | all but `bench::parallel` | `spawn` (ad-hoc threading)                     |
//! | L4   | `core`,`sim`,`workload` non-test | `.unwrap()`/`.expect()`/`panic!`/`unreachable!` |
//! | L5   | `sim`                  | bare `as` casts to integer types                  |
//!
//! Legitimate exceptions are annotated in the source with
//! `// lint: allow(<key>)` (keys: `unordered`, `ambient`, `thread-spawn`,
//! `panic`, `cast`). An annotation covers its own line and the next line,
//! so it can trail the offending expression or sit on the line above it.
//! Code under `#[cfg(test)]` (and `#[test]` items) is exempt from every
//! rule: tests may unwrap and may time themselves.
//!
//! The pass is wired in three places so it cannot rot: the
//! `tests/lint_clean.rs` integration test (tier-1 `cargo test` fails on any
//! finding), a dedicated CI job (`cargo run -p thrifty-lint -- crates
//! --format json`), and fixture tests under `crates/lint/fixtures/` that
//! prove each rule still fires on known-bad snippets.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One rule violation at a precise source location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (`"L1"` … `"L5"`).
    pub rule: String,
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (in characters) of the offending token.
    pub column: usize,
    /// Human-readable explanation of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.column, self.rule, self.message, self.snippet
        )
    }
}

/// A whole lint run, serializable for the CI `--format json` mode.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Every violation found, in (file, line, column) order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Token kinds the rules care about. Literals and comments are consumed by
/// the lexer and never become tokens, which is exactly what makes the pass
/// safe against `"HashMap"` appearing in a string or a doc comment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokKind {
    Ident,
    Punct,
}

#[derive(Clone, Debug)]
struct Token {
    kind: TokKind,
    /// Byte range into the source (identifiers) or the punctuation string.
    text: String,
    line: usize,
    column: usize,
}

/// Lexed file: significant tokens plus the `lint: allow(...)` annotations
/// harvested from comments, keyed by the line the comment starts on.
struct Lexed {
    tokens: Vec<Token>,
    /// `(line, key)` pairs: annotation on `line` suppresses findings on
    /// `line` and `line + 1`.
    allows: BTreeSet<(usize, String)>,
}

/// Parses `lint: allow(key1, key2)` out of a comment body.
fn harvest_allows(comment: &str, line: usize, allows: &mut BTreeSet<(usize, String)>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for key in rest[..end].split(',') {
            allows.insert((line, key.trim().to_string()));
        }
        rest = &rest[end..];
    }
}

/// A comment/string-aware Rust lexer. Handles line comments, nested block
/// comments, string/char/byte literals, raw strings with `#` fences, and
/// lifetimes. Everything it does not understand becomes single-character
/// punctuation, which is all the rules need.
fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut allows = BTreeSet::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment (also doc comments `///` and `//!`).
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut body = String::new();
            while i < chars.len() && chars[i] != '\n' {
                body.push(chars[i]);
                bump!();
            }
            harvest_allows(&body, start_line, &mut allows);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut body = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    body.push('/');
                    bump!();
                    body.push('*');
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    body.push('*');
                    bump!();
                    body.push('/');
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    body.push(chars[i]);
                    bump!();
                }
            }
            harvest_allows(&body, start_line, &mut allows);
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# with any fence width.
        if (c == 'r' || (c == 'b' && next == Some('r')))
            && matches!(
                chars.get(i + if c == 'b' { 2 } else { 1 }),
                Some('"') | Some('#')
            )
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut fence = 0usize;
            while chars.get(j) == Some(&'#') {
                fence += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Consume up to and including the opening quote.
                while i <= j {
                    bump!();
                }
                // Scan for `"` followed by `fence` hashes.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..fence {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=fence {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
                continue;
            }
            // `r` not starting a raw string: fall through as identifier.
        }
        // String literal (also byte strings b"...").
        if c == '"' || (c == 'b' && next == Some('"')) {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // `'\x'`-style or `'c'` is a char literal; `'ident` is a
            // lifetime (or a loop label) and has no closing quote.
            let is_char_lit = match next {
                Some('\\') => true,
                Some(ch) => chars.get(i + 2) == Some(&'\'') && ch != '\'',
                None => false,
            };
            if is_char_lit {
                bump!(); // '
                if chars[i] == '\\' {
                    bump!();
                    while i < chars.len() && chars[i] != '\'' {
                        bump!();
                    }
                    bump!(); // closing '
                } else {
                    bump!(); // the char
                    bump!(); // closing '
                }
            } else {
                bump!(); // '
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
            }
            continue;
        }
        // Identifier or keyword.
        if c.is_alphabetic() || c == '_' {
            let (l, co) = (line, col);
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                bump!();
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line: l,
                column: co,
            });
            continue;
        }
        // Number literal: consume so `0usize` suffixes don't become idents.
        if c.is_ascii_digit() {
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                // Stop at `..` range punctuation.
                if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                    break;
                }
                bump!();
            }
            continue;
        }
        // `::` as one token (used by rule patterns); all else single chars.
        if c == ':' && next == Some(':') {
            tokens.push(Token {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
                column: col,
            });
            bump!();
            bump!();
            continue;
        }
        if !c.is_whitespace() {
            tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                column: col,
            });
        }
        bump!();
    }

    Lexed { tokens, allows }
}

// ---------------------------------------------------------------------------
// Test-code masking
// ---------------------------------------------------------------------------

/// Marks tokens covered by `#[cfg(test)]` or `#[test]` attributes — the
/// attribute itself, and the following item through its closing brace (or
/// terminating semicolon). Returns a bool per token: `true` = test code.
fn mask_test_code(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            let attr_end = close_bracket(tokens, i + 1);
            // Cover the attribute, any stacked attributes, and the item.
            let mut j = attr_end + 1;
            // Skip further attributes (e.g. `#[should_panic]`).
            while j < tokens.len() && tokens[j].text == "#" {
                j = close_bracket(tokens, j + 1) + 1;
            }
            // Find the item's opening brace or terminating semicolon.
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => {
                        depth += 1;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let end = j.min(tokens.len().saturating_sub(1));
            for m in masked.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    masked
}

/// Does `#` at index `i` start `#[cfg(test)]` or `#[test]`?
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    match tokens.get(i + 2).map(|t| t.text.as_str()) {
        Some("test") => tokens.get(i + 3).map(|t| t.text.as_str()) == Some("]"),
        Some("cfg") => {
            tokens.get(i + 3).map(|t| t.text.as_str()) == Some("(")
                && tokens.get(i + 4).map(|t| t.text.as_str()) == Some("test")
                && tokens.get(i + 5).map(|t| t.text.as_str()) == Some(")")
        }
        _ => false,
    }
}

/// Given index of `[`, returns index of its matching `]`.
fn close_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Which workspace crate a file belongs to, parsed from its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrateScope {
    Core,
    Sim,
    Workload,
    Bench,
    Lint,
    Other,
}

fn crate_scope(path: &str) -> CrateScope {
    let norm = path.replace('\\', "/");
    let mut parts = norm.split('/').peekable();
    while let Some(p) = parts.next() {
        if p == "crates" {
            return match parts.peek().copied() {
                Some("core") => CrateScope::Core,
                Some("sim") => CrateScope::Sim,
                Some("workload") => CrateScope::Workload,
                Some("bench") => CrateScope::Bench,
                Some("lint") => CrateScope::Lint,
                _ => CrateScope::Other,
            };
        }
    }
    CrateScope::Other
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

struct RuleCtx<'a> {
    path: &'a str,
    scope: CrateScope,
    lines: Vec<&'a str>,
    allows: &'a BTreeSet<(usize, String)>,
}

impl RuleCtx<'_> {
    fn allowed(&self, key: &str, line: usize) -> bool {
        self.allows.contains(&(line, key.to_string()))
            || (line > 1 && self.allows.contains(&(line - 1, key.to_string())))
    }

    fn finding(&self, rule: &str, tok: &Token, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: self.path.to_string(),
            line: tok.line,
            column: tok.column,
            message,
            snippet: self
                .lines
                .get(tok.line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }
}

/// Lints one file's source text. `path` is used both for reporting and for
/// rule scoping (which crate the file belongs to), so fixture tests can
/// pass synthetic paths like `crates/core/src/example.rs`.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let masked = mask_test_code(&lexed.tokens);
    let scope = crate_scope(path);
    let norm = path.replace('\\', "/");
    let is_parallel_module =
        norm.ends_with("crates/bench/src/parallel.rs") || norm == "crates/bench/src/parallel.rs";
    let ctx = RuleCtx {
        path,
        scope,
        lines: source.lines().collect(),
        allows: &lexed.allows,
    };
    let mut findings = Vec::new();
    let toks = &lexed.tokens;

    for (i, tok) in toks.iter().enumerate() {
        if masked[i] || tok.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);
        let name = tok.text.as_str();

        // L1: randomized iteration order.
        if (name == "HashMap" || name == "HashSet") && !ctx.allowed("unordered", tok.line) {
            findings.push(ctx.finding(
                "L1",
                tok,
                format!(
                    "{name} has a randomized iteration order that breaks replay determinism; \
                     use BTreeMap/BTreeSet (or annotate membership-only use with \
                     `// lint: allow(unordered)`)"
                ),
            ));
        }

        // L2: ambient nondeterminism in deterministic crates.
        if matches!(
            ctx.scope,
            CrateScope::Core | CrateScope::Sim | CrateScope::Workload
        ) && matches!(
            name,
            "Instant" | "SystemTime" | "thread_rng" | "from_entropy"
        ) && !ctx.allowed("ambient", tok.line)
        {
            findings.push(ctx.finding(
                "L2",
                tok,
                format!(
                    "{name} reads ambient wall-clock/entropy state; deterministic crates must \
                     take time from SimTime and randomness from seeded DetRng"
                ),
            ));
        }

        // L3: ad-hoc threading outside the blessed executor.
        if name == "spawn" && !is_parallel_module && !ctx.allowed("thread-spawn", tok.line) {
            findings.push(
                ctx.finding(
                    "L3",
                    tok,
                    "thread spawning outside thrifty_bench::parallel bypasses the deterministic \
                 fork-join executor"
                        .to_string(),
                ),
            );
        }

        // L4: panicking APIs in core/sim/workload library code.
        if matches!(
            ctx.scope,
            CrateScope::Core | CrateScope::Sim | CrateScope::Workload
        ) && !ctx.allowed("panic", tok.line)
        {
            let method_call = |m: &str| {
                name == m
                    && prev.map(|t| t.text.as_str()) == Some(".")
                    && next.map(|t| t.text.as_str()) == Some("(")
            };
            let macro_call = |m: &str| name == m && next.map(|t| t.text.as_str()) == Some("!");
            if method_call("unwrap") || method_call("expect") {
                findings.push(ctx.finding(
                    "L4",
                    tok,
                    format!(
                        ".{name}() can panic in library code; route the failure through \
                         ThriftyError/SimError instead"
                    ),
                ));
            } else if macro_call("panic") || macro_call("unreachable") || macro_call("todo") {
                findings.push(ctx.finding(
                    "L4",
                    tok,
                    format!(
                        "{name}! aborts the caller; library code must return \
                         ThriftyError/SimError instead"
                    ),
                ));
            }
        }

        // L5: bare integer casts in the simulator.
        if ctx.scope == CrateScope::Sim
            && name == "as"
            && next.map(|t| INT_TYPES.contains(&t.text.as_str())) == Some(true)
            && !ctx.allowed("cast", tok.line)
        {
            findings.push(ctx.finding(
                "L5",
                tok,
                format!(
                    "bare `as {}` cast can truncate silently; use the checked helpers in \
                     mppdb_sim::convert (or annotate with `// lint: allow(cast)`)",
                    next.map(|t| t.text.clone()).unwrap_or_default()
                ),
            ));
        }
    }

    findings
}

// ---------------------------------------------------------------------------
// Directory walking
// ---------------------------------------------------------------------------

/// Directory names never descended into: generated output, fixtures with
/// intentionally-bad code, and test/bench trees (exempt by policy).
const SKIP_DIRS: [&str; 5] = ["target", "fixtures", "tests", "benches", "examples"];

/// Recursively lints every `.rs` file under `root` that lives in a `src`
/// tree. Files are visited in sorted order so reports are deterministic.
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for f in &files {
        let display = f.to_string_lossy().replace('\\', "/");
        if !display.split('/').any(|c| c == "src") {
            continue;
        }
        let source = fs::read_to_string(f)?;
        scanned += 1;
        findings.extend(lint_source(&display, &source));
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, &a.rule).cmp(&(&b.file, b.line, b.column, &b.rule))
    });
    Ok(LintReport {
        files_scanned: scanned,
        findings,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if dir.is_file() {
        if dir.extension().map(|e| e == "rs") == Some(true) {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Human-readable report.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "thrifty-lint: {} finding(s) in {} file(s)\n",
        report.findings.len(),
        report.files_scanned
    ));
    out
}

/// Machine-readable report for CI (`--format json`).
pub fn render_json(report: &LintReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_flagged() {
        let src = r##"
            // A comment mentioning HashMap and unwrap() and panic! freely.
            /* Block comment: HashSet, Instant::now(), thread::spawn. */
            fn f() -> &'static str {
                let s = "HashMap::new().unwrap() as u64 panic!";
                let r = r#"HashSet spawn Instant"#;
                let c = '"';
                let _ = (s, r, c);
                "expect(\"nothing\")"
            }
        "##;
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = r#"
            pub fn ok() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let m: HashMap<u32, u32> = HashMap::new();
                    assert_eq!(m.len(), 0);
                    let _ = "x".parse::<u32>().unwrap();
                    panic!("fine in tests");
                }
            }
        "#;
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn annotations_cover_same_and_next_line() {
        let trailing = "use std::collections::HashMap; // lint: allow(unordered)\n";
        assert!(lint_source("crates/core/src/x.rs", trailing).is_empty());
        let above = "// lint: allow(unordered)\nuse std::collections::HashMap;\n";
        assert!(lint_source("crates/core/src/x.rs", above).is_empty());
        let too_far = "// lint: allow(unordered)\n\nuse std::collections::HashMap;\n";
        assert_eq!(lint_source("crates/core/src/x.rs", too_far).len(), 1);
    }

    #[test]
    fn rule_scoping_follows_the_crate() {
        let cast = "fn f(x: usize) -> u32 { x as u32 }\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", cast).len(), 1);
        assert!(lint_source("crates/core/src/x.rs", cast).is_empty());

        let instant = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", instant).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", instant).is_empty());

        let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", unwrap).len(), 1);
        // PR 7 extends the no-panic posture into the workload crate.
        assert_eq!(lint_source("crates/workload/src/x.rs", unwrap).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", unwrap).is_empty());
    }

    #[test]
    fn spawn_is_allowed_only_in_the_parallel_module() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_source("crates/bench/src/pipeline.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/parallel.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_position_and_snippet() {
        let src = "fn f(x: usize) -> u32 {\n    x as u32\n}\n";
        let fs = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "L5");
        assert_eq!(fs[0].line, 2);
        assert_eq!(fs[0].column, 7);
        assert_eq!(fs[0].snippet, "x as u32");
    }
}
