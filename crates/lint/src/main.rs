//! `thrifty-lint` CLI: walk source trees and report determinism/robustness
//! rule violations.
//!
//! ```text
//! cargo run -p thrifty-lint -- crates                # human-readable
//! cargo run -p thrifty-lint -- crates --format json  # machine-readable
//! cargo run -p thrifty-lint -- --explain L7          # rule rationale
//! ```
//!
//! Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.
//! `--explain` takes a rule id (`L7`) or its allow key (`float-merge`)
//! and prints the rule's rationale and escape hatch.

use std::path::Path;
use std::process::ExitCode;
use thrifty_lint::{explain, lint_tree, render_json, render_text, LintReport};

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut roots: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!("thrifty-lint: unknown format {other:?} (use text|json)");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                let Some(query) = args.next() else {
                    eprintln!(
                        "thrifty-lint: --explain expects a rule id (L7) or allow key (float-merge)"
                    );
                    return ExitCode::from(2);
                };
                return match explain(&query) {
                    Some(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "thrifty-lint: unknown rule {query:?} (use L1..L9 or an allow key)"
                        );
                        ExitCode::from(2)
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: thrifty-lint [PATH ...] [--format text|json]\n       thrifty-lint --explain <rule>"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("thrifty-lint: unknown option {other}");
                return ExitCode::from(2);
            }
            path => roots.push(path.to_string()),
        }
    }
    if roots.is_empty() {
        roots.push("crates".to_string());
    }

    let mut report = LintReport {
        files_scanned: 0,
        findings: Vec::new(),
    };
    for root in &roots {
        match lint_tree(Path::new(root)) {
            Ok(part) => {
                report.files_scanned += part.files_scanned;
                report.findings.extend(part.findings);
            }
            Err(e) => {
                eprintln!("thrifty-lint: cannot scan {root}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match format {
        Format::Text => print!("{}", render_text(&report)),
        Format::Json => println!("{}", render_json(&report)),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}
