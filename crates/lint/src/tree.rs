//! Lightweight brace-tree parser: assigns every token a scope path.
//!
//! The tree is built from the token stream alone — no rustc, no syn. A
//! scope is opened by a named item (`mod`, `fn`, `impl`, `struct`, `enum`,
//! `union`, `trait`) whose body is a brace block; anonymous braces
//! (blocks, match arms, struct literals, closures) only adjust depth.
//! Every token is assigned the innermost enclosing scope, so a finding can
//! report `core::reconsolidation::Reconsolidator::measure_error` instead
//! of a bare line number, and the rules can exempt `#[cfg(test)]` /
//! `#[test]` **subtrees** structurally instead of guessing from line
//! heuristics.
//!
//! Per scope node the parser also records what the rules need downstream:
//! test-subtree membership (inherited), `pub` visibility, and — for `fn`
//! items — whether the signature's return type mentions a `Result` (the
//! L9 error-docs pass) plus the anchor line above which its doc comment
//! block must sit.

use crate::tokenizer::{TokKind, Token};

/// What kind of item opened a scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeKind {
    /// The file itself (named after its module path).
    Root,
    /// `mod name { .. }`
    Module,
    /// `impl Type { .. }` / `impl Trait for Type { .. }` (named after the
    /// implementing type).
    Impl,
    /// `fn name(..) { .. }`
    Fn,
    /// `struct` / `enum` / `union` body.
    Type,
    /// `trait Name { .. }`
    Trait,
}

/// One node of the scope tree.
#[derive(Clone, Debug)]
pub struct ScopeNode {
    /// Item kind.
    pub kind: ScopeKind,
    /// Item name (implementing type for `impl` blocks).
    pub name: String,
    /// Parent node index; the root is its own parent.
    pub parent: usize,
    /// True when this node or any ancestor carries `#[cfg(test)]` /
    /// `#[test]`.
    pub is_test: bool,
    /// True when the item is declared `pub` (any restriction counts).
    pub is_pub: bool,
    /// For `fn` nodes: the return type mentions `Result` /
    /// `ThriftyResult` / `SimResult` / any `*Result` alias.
    pub returns_result: bool,
    /// First line of the item (its first attribute or keyword): the line
    /// a doc comment block must sit directly above.
    pub anchor_line: usize,
    /// Line / column of the item's name token, for findings.
    pub name_line: usize,
    /// See [`ScopeNode::name_line`].
    pub name_column: usize,
    /// Token index range `[start, end]` spanned by the item (header
    /// included; `end` is the closing brace, or the last token for the
    /// root).
    pub tokens: (usize, usize),
}

/// The scope tree for one file.
pub struct ScopeTree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<ScopeNode>,
    /// Innermost scope per token index.
    token_scope: Vec<usize>,
    /// Statement-level test mask: `#[cfg(test)]` attached to a brace-less
    /// item (`use`, `mod x;`, …) masks through its semicolon.
    stmt_test: Vec<bool>,
}

impl ScopeTree {
    /// Innermost scope node index for a token.
    pub fn scope_of(&self, tok: usize) -> usize {
        self.token_scope.get(tok).copied().unwrap_or(0)
    }

    /// True when the token lives in test code: a `#[cfg(test)]`/`#[test]`
    /// subtree or a test-gated brace-less statement.
    pub fn is_test_token(&self, tok: usize) -> bool {
        self.stmt_test.get(tok).copied().unwrap_or(false) || self.nodes[self.scope_of(tok)].is_test
    }

    /// `::`-joined path of a node, root name included.
    pub fn path(&self, mut node: usize) -> String {
        let mut parts = Vec::new();
        loop {
            parts.push(self.nodes[node].name.as_str());
            if node == 0 {
                break;
            }
            node = self.nodes[node].parent;
        }
        parts.reverse();
        parts.join("::")
    }

    /// Path of the scope enclosing a token.
    pub fn path_of_token(&self, tok: usize) -> String {
        self.path(self.scope_of(tok))
    }

    /// Iterates `fn` nodes (index + node).
    pub fn fn_nodes(&self) -> impl Iterator<Item = (usize, &ScopeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == ScopeKind::Fn)
    }
}

/// Does `#` at index `i` start `#[cfg(test)]` or `#[test]`?
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    match tokens.get(i + 2).map(|t| t.text.as_str()) {
        Some("test") => tokens.get(i + 3).map(|t| t.text.as_str()) == Some("]"),
        Some("cfg") => {
            tokens.get(i + 3).map(|t| t.text.as_str()) == Some("(")
                && tokens.get(i + 4).map(|t| t.text.as_str()) == Some("test")
                && tokens.get(i + 5).map(|t| t.text.as_str()) == Some(")")
        }
        _ => false,
    }
}

/// Given the index of an opening delimiter, returns the index of its
/// matching closer (falls back to the last token on imbalance).
fn close_delim(tokens: &[Token], open: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = tokens[j].text.as_str();
        if t == open_s {
            depth += 1;
        } else if t == close_s {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Item-header scan result: where the body starts (if any) and what the
/// signature said.
struct Header {
    /// Index of the opening `{`, or `None` for brace-less items
    /// (`mod x;`, trait method declarations, tuple structs).
    body_open: Option<usize>,
    /// Index just past the header (past `{` or past `;`).
    resume: usize,
    /// Scope name derived from the header.
    name: String,
    /// Name token index (for finding positions).
    name_tok: Option<usize>,
    /// `fn` only: return type mentions a Result alias.
    returns_result: bool,
}

/// Scans an item header from the keyword at `kw` to its body `{` or
/// terminating `;`, tracking paren/bracket depth so parameter-position
/// braces or semicolons cannot fool it.
fn scan_header(tokens: &[Token], kw: usize) -> Header {
    let kind = tokens[kw].text.as_str();
    let mut name = String::new();
    let mut name_tok = None;
    let mut returns_result = false;

    // `mod` / `fn` / `struct` / `enum` / `union` / `trait`: the name is
    // the next identifier. `impl` derives its name below.
    if kind != "impl" {
        if let Some(t) = tokens.get(kw + 1) {
            if t.kind == TokKind::Ident {
                name = t.text.clone();
                name_tok = Some(kw + 1);
            }
        }
    }

    let mut paren = 0usize;
    let mut bracket = 0usize;
    let mut angle = 0usize;
    let mut in_return = false;
    let mut saw_for = false;
    let mut impl_name: Option<(String, usize)> = None;
    let mut impl_name_after_for: Option<(String, usize)> = None;
    let mut j = kw + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren = paren.saturating_sub(1),
            "[" => bracket += 1,
            "]" => bracket = bracket.saturating_sub(1),
            "<" => angle += 1,
            ">" => {
                // `->` is a return arrow, not an angle close.
                if j > 0 && tokens[j - 1].text == "-" {
                    if paren == 0 && bracket == 0 {
                        in_return = true;
                    }
                } else {
                    angle = angle.saturating_sub(1);
                }
            }
            "{" if paren == 0 && bracket == 0 => {
                return Header {
                    body_open: Some(j),
                    resume: j + 1,
                    name: finish_name(kind, name, &mut impl_name, &mut impl_name_after_for),
                    name_tok,
                    returns_result,
                };
            }
            ";" if paren == 0 && bracket == 0 => {
                return Header {
                    body_open: None,
                    resume: j + 1,
                    name: finish_name(kind, name, &mut impl_name, &mut impl_name_after_for),
                    name_tok,
                    returns_result,
                };
            }
            "for" if kind == "impl" && angle == 0 => saw_for = true,
            _ => {
                if t.kind == TokKind::Ident {
                    if in_return && (t.text == "Result" || t.text.ends_with("Result")) {
                        returns_result = true;
                    }
                    if kind == "impl" && angle == 0 && t.text != "dyn" {
                        if saw_for {
                            impl_name_after_for.get_or_insert((t.text.clone(), j));
                        } else {
                            impl_name.get_or_insert((t.text.clone(), j));
                        }
                    }
                }
            }
        }
        j += 1;
    }
    Header {
        body_open: None,
        resume: tokens.len(),
        name: finish_name(kind, name, &mut impl_name, &mut impl_name_after_for),
        name_tok,
        returns_result,
    }
}

fn finish_name(
    kind: &str,
    name: String,
    impl_name: &mut Option<(String, usize)>,
    impl_name_after_for: &mut Option<(String, usize)>,
) -> String {
    if kind == "impl" {
        if let Some((n, _)) = impl_name_after_for.take() {
            return n;
        }
        if let Some((n, _)) = impl_name.take() {
            return n;
        }
        return "impl".to_string();
    }
    if name.is_empty() {
        kind.to_string()
    } else {
        name
    }
}

/// Tokens that keep the parser in item position (modifiers that may
/// precede an item keyword).
fn keeps_item_position(text: &str) -> bool {
    matches!(
        text,
        "pub" | "unsafe" | "const" | "async" | "extern" | "default"
    )
}

/// Builds the scope tree for one file. `root_name` is the file's module
/// path (e.g. `core::reconsolidation`).
pub fn build(tokens: &[Token], root_name: &str) -> ScopeTree {
    let mut nodes = vec![ScopeNode {
        kind: ScopeKind::Root,
        name: root_name.to_string(),
        parent: 0,
        is_test: false,
        is_pub: true,
        returns_result: false,
        anchor_line: 1,
        name_line: 1,
        name_column: 1,
        tokens: (0, tokens.len().saturating_sub(1)),
    }];
    let mut token_scope = vec![0usize; tokens.len()];
    let mut stmt_test = vec![false; tokens.len()];
    // (node index, brace depth at which the node's body opened)
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;

    let mut item_pos = true;
    let mut pending_test = false;
    let mut pending_pub = false;
    let mut pending_anchor: Option<usize> = None;
    let mut pending_attr_range: Option<(usize, usize)> = None;
    let mut masking_stmt = false;

    macro_rules! clear_pending {
        () => {{
            pending_test = false;
            pending_pub = false;
            pending_anchor = None;
            pending_attr_range = None;
        }};
    }

    let mut i = 0;
    while i < tokens.len() {
        let cur = stack.last().map(|&(n, _)| n).unwrap_or(0);
        token_scope[i] = cur;
        if masking_stmt {
            stmt_test[i] = true;
        }
        let text = tokens[i].text.as_str();

        // Attributes: outer `#[..]` at item position collect into the
        // pending set; inner `#![..]` are skipped wholesale.
        if text == "#" {
            if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") && item_pos {
                if pending_anchor.is_none() {
                    pending_anchor = Some(tokens[i].line);
                }
                if is_test_attr(tokens, i) {
                    pending_test = true;
                }
                let end = close_delim(tokens, i + 1, "[", "]");
                let start = pending_attr_range.map(|(s, _)| s).unwrap_or(i);
                pending_attr_range = Some((start, end));
                for j in i..=end {
                    token_scope[j] = cur;
                    if masking_stmt {
                        stmt_test[j] = true;
                    }
                }
                i = end + 1;
                continue;
            }
            if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("!")
                && tokens.get(i + 2).map(|t| t.text.as_str()) == Some("[")
            {
                let end = close_delim(tokens, i + 2, "[", "]");
                token_scope[i..=end].fill(cur);
                i = end + 1;
                continue;
            }
        }

        match text {
            "pub" if item_pos => {
                if pending_anchor.is_none() {
                    pending_anchor = Some(tokens[i].line);
                }
                pending_pub = true;
                // Skip a `pub(crate)` / `pub(in ..)` restriction.
                if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
                    let end = close_delim(tokens, i + 1, "(", ")");
                    token_scope[i..=end].fill(cur);
                    i = end + 1;
                } else {
                    i += 1;
                }
            }
            _ if item_pos && keeps_item_position(text) => {
                if pending_anchor.is_none() {
                    pending_anchor = Some(tokens[i].line);
                }
                i += 1;
            }
            "mod" | "fn" | "impl" | "struct" | "enum" | "union" | "trait" if item_pos => {
                let header = scan_header(tokens, i);
                let kind = match text {
                    "mod" => ScopeKind::Module,
                    "fn" => ScopeKind::Fn,
                    "impl" => ScopeKind::Impl,
                    "trait" => ScopeKind::Trait,
                    _ => ScopeKind::Type,
                };
                let is_test = pending_test || nodes[cur].is_test;
                let (name_line, name_column) = header
                    .name_tok
                    .map(|t| (tokens[t].line, tokens[t].column))
                    .unwrap_or((tokens[i].line, tokens[i].column));
                match header.body_open {
                    Some(open) => {
                        let node = nodes.len();
                        nodes.push(ScopeNode {
                            kind,
                            name: header.name,
                            parent: cur,
                            is_test,
                            is_pub: pending_pub,
                            returns_result: header.returns_result,
                            anchor_line: pending_anchor.unwrap_or(tokens[i].line),
                            name_line,
                            name_column,
                            tokens: (pending_attr_range.map(|(s, _)| s).unwrap_or(i), open),
                        });
                        // Header tokens (attributes included) belong to
                        // the new scope.
                        let hdr_start = pending_attr_range.map(|(s, _)| s).unwrap_or(i);
                        token_scope[hdr_start..=open].fill(node);
                        stack.push((node, depth));
                        depth += 1;
                        i = header.resume;
                    }
                    None => {
                        // Brace-less item (`mod x;`, trait method decl,
                        // tuple struct): no scope, but a pending test
                        // attribute masks it.
                        if is_test {
                            let start = pending_attr_range.map(|(s, _)| s).unwrap_or(i);
                            for j in start..header.resume.min(stmt_test.len()) {
                                stmt_test[j] = true;
                            }
                        }
                        i = header.resume;
                    }
                }
                clear_pending!();
                item_pos = true;
            }
            "{" => {
                depth += 1;
                item_pos = true;
                clear_pending!();
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                if let Some(&(node, open_depth)) = stack.last() {
                    if open_depth == depth {
                        nodes[node].tokens.1 = i;
                        stack.pop();
                    }
                }
                item_pos = true;
                clear_pending!();
                i += 1;
            }
            ";" => {
                item_pos = true;
                masking_stmt = false;
                clear_pending!();
                i += 1;
            }
            _ => {
                // A test attribute attached to a brace-less statement
                // (`#[cfg(test)] use ..;`) masks through the semicolon.
                if pending_test {
                    masking_stmt = true;
                    if let Some((s, e)) = pending_attr_range {
                        stmt_test[s..=e].fill(true);
                    }
                    stmt_test[i] = true;
                }
                item_pos = false;
                clear_pending!();
                i += 1;
            }
        }
    }

    ScopeTree {
        nodes,
        token_scope,
        stmt_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::lex;

    fn tree_of(src: &str) -> (Vec<crate::tokenizer::Token>, ScopeTree) {
        let lexed = lex(src);
        let tree = build(&lexed.tokens, "core::example");
        (lexed.tokens, tree)
    }

    fn scope_at(tokens: &[crate::tokenizer::Token], tree: &ScopeTree, ident: &str) -> String {
        let idx = tokens
            .iter()
            .position(|t| t.text == ident)
            .expect("marker present");
        tree.path_of_token(idx)
    }

    #[test]
    fn scopes_nest_through_mod_impl_fn() {
        let src = r#"
            mod inner {
                struct Widget { count: u32 }
                impl Widget {
                    pub fn observe(&self) -> u32 { marker_a }
                }
                fn helper() { marker_b }
            }
            fn top() { marker_c }
        "#;
        let (tokens, tree) = tree_of(src);
        assert_eq!(
            scope_at(&tokens, &tree, "marker_a"),
            "core::example::inner::Widget::observe"
        );
        assert_eq!(
            scope_at(&tokens, &tree, "marker_b"),
            "core::example::inner::helper"
        );
        assert_eq!(scope_at(&tokens, &tree, "marker_c"), "core::example::top");
    }

    #[test]
    fn impl_trait_for_type_is_named_after_the_type() {
        let src = "impl Iterator for Wakeup { fn next(&mut self) { marker } }";
        let (tokens, tree) = tree_of(src);
        assert_eq!(
            scope_at(&tokens, &tree, "marker"),
            "core::example::Wakeup::next"
        );
    }

    #[test]
    fn cfg_test_subtrees_are_marked() {
        let src = r#"
            fn lib_code() { real }
            #[cfg(test)]
            mod tests {
                fn util() { masked_a }
                #[test]
                fn t() { masked_b }
            }
        "#;
        let (tokens, tree) = tree_of(src);
        for (i, t) in tokens.iter().enumerate() {
            match t.text.as_str() {
                "real" => assert!(!tree.is_test_token(i)),
                "masked_a" | "masked_b" => assert!(tree.is_test_token(i), "{}", t.text),
                _ => {}
            }
        }
    }

    #[test]
    fn test_gated_braceless_statements_are_masked() {
        let src = "#[cfg(test)]\nuse other_crate::Thing;\nuse kept::Path;\n";
        let (tokens, tree) = tree_of(src);
        let masked = tokens
            .iter()
            .position(|t| t.text == "other_crate")
            .expect("present");
        let kept = tokens
            .iter()
            .position(|t| t.text == "kept")
            .expect("present");
        assert!(tree.is_test_token(masked));
        assert!(!tree.is_test_token(kept));
    }

    #[test]
    fn fn_signatures_record_pub_and_result() {
        let src = r#"
            /// Docs.
            pub fn fallible() -> Result<u32, String> { Ok(1) }
            pub fn multi_line(
                a: u32,
            ) -> ThriftyResult<()> { Ok(()) }
            fn private_ok() -> Result<(), ()> { Ok(()) }
            pub fn infallible(cb: impl Fn() -> Result<u8, u8>) -> u32 { 0 }
        "#;
        let (_, tree) = tree_of(src);
        let by_name = |n: &str| {
            tree.fn_nodes()
                .find(|(_, node)| node.name == n)
                .map(|(_, node)| node.clone())
                .expect("fn present")
        };
        assert!(by_name("fallible").is_pub && by_name("fallible").returns_result);
        assert!(by_name("multi_line").returns_result);
        assert!(!by_name("private_ok").is_pub);
        assert!(
            !by_name("infallible").returns_result,
            "a Result in parameter position is not a Result return"
        );
    }

    #[test]
    fn anonymous_braces_do_not_open_scopes() {
        let src = r#"
            fn f() {
                let s = Widget { count: 1 };
                match s.count {
                    1 => { marker_arm }
                    _ => {}
                }
                { marker_block }
            }
        "#;
        let (tokens, tree) = tree_of(src);
        assert_eq!(scope_at(&tokens, &tree, "marker_arm"), "core::example::f");
        assert_eq!(scope_at(&tokens, &tree, "marker_block"), "core::example::f");
    }
}
