//! Comment/string-aware Rust lexer.
//!
//! Produces the significant token stream the scope tree and the rules
//! operate on, plus two side channels harvested while lexing:
//!
//! * `lint: allow(key)` annotations from **regular** comments (doc
//!   comments are prose about the escape hatch, not uses of it, so they
//!   are deliberately not harvested — otherwise every rule that documents
//!   its own allow key would plant a phantom annotation for L8 to audit);
//! * doc-comment lines (`///`, `//!`, `/** */`, `/*! */`) keyed by line,
//!   which the L9 error-docs pass scans for `# Errors` sections.
//!
//! Literals and comments never become tokens, which is what makes the
//! pass safe against `"HashMap"` appearing in a string or a doc comment.
//! The lexer handles line comments, nested block comments, string / char /
//! byte literals, raw strings with `#` fences, lifetimes, and numeric
//! literals (emitted as [`TokKind::Number`] tokens so the float-order pass
//! can recognize `0.0` accumulator seeds and `fold(0.0, ..)` inits).

use std::collections::BTreeMap;

/// Token kinds the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; `::` is one token, everything else single characters.
    Punct,
    /// Numeric literal, suffix included (`0.0`, `42u64`, `1_000.5`).
    Number,
}

/// One significant token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub column: usize,
}

impl Token {
    /// True for numeric literals that are floating-point: a decimal point
    /// or an explicit `f32`/`f64` suffix.
    pub fn is_float_literal(&self) -> bool {
        self.kind == TokKind::Number
            && (self.text.contains('.') || self.text.ends_with("f32") || self.text.ends_with("f64"))
    }
}

/// A `lint: allow(key)` annotation site harvested from a regular comment.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowSite {
    /// 1-based line the comment starts on. The annotation suppresses
    /// findings on this line and the next.
    pub line: usize,
    /// 1-based column of the comment start.
    pub column: usize,
    /// The allow key, e.g. `unordered` or `float-merge`.
    pub key: String,
}

/// Lexed file: token stream plus the comment side channels.
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow annotations, in source order.
    pub allows: Vec<AllowSite>,
    /// Doc-comment text per source line (used by the L9 error-docs pass).
    pub doc_lines: BTreeMap<usize, String>,
}

/// Parses `lint: allow(key1, key2)` out of a comment body.
fn harvest_allows(comment: &str, line: usize, column: usize, allows: &mut Vec<AllowSite>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for key in rest[..end].split(',') {
            allows.push(AllowSite {
                line,
                column,
                key: key.trim().to_string(),
            });
        }
        rest = &rest[end..];
    }
}

/// Records every line a doc comment spans into the doc-line map.
fn record_doc(body: &str, start_line: usize, doc_lines: &mut BTreeMap<usize, String>) {
    for (offset, text) in body.lines().enumerate() {
        doc_lines
            .entry(start_line + offset)
            .or_default()
            .push_str(text);
    }
}

/// Lexes a Rust source file into significant tokens and comment side
/// channels. Everything the lexer does not understand becomes
/// single-character punctuation, which is all the rules need.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut doc_lines = BTreeMap::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment; `///` and `//!` are doc comments.
        if c == '/' && next == Some('/') {
            let (start_line, start_col) = (line, col);
            let mut body = String::new();
            while i < chars.len() && chars[i] != '\n' {
                body.push(chars[i]);
                bump!();
            }
            let is_doc = body.starts_with("///") || body.starts_with("//!");
            if is_doc {
                record_doc(&body, start_line, &mut doc_lines);
            } else {
                harvest_allows(&body, start_line, start_col, &mut allows);
            }
            continue;
        }
        // Block comment, possibly nested; `/**` and `/*!` are doc comments.
        if c == '/' && next == Some('*') {
            let (start_line, start_col) = (line, col);
            let mut body = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    body.push('/');
                    bump!();
                    body.push('*');
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    body.push('*');
                    bump!();
                    body.push('/');
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    body.push(chars[i]);
                    bump!();
                }
            }
            let is_doc =
                (body.starts_with("/**") && !body.starts_with("/**/")) || body.starts_with("/*!");
            if is_doc {
                record_doc(&body, start_line, &mut doc_lines);
            } else {
                harvest_allows(&body, start_line, start_col, &mut allows);
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# with any fence width.
        if (c == 'r' || (c == 'b' && next == Some('r')))
            && matches!(
                chars.get(i + if c == 'b' { 2 } else { 1 }),
                Some('"') | Some('#')
            )
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut fence = 0usize;
            while chars.get(j) == Some(&'#') {
                fence += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Consume up to and including the opening quote.
                while i <= j {
                    bump!();
                }
                // Scan for `"` followed by `fence` hashes.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..fence {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=fence {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
                continue;
            }
            // `r` not starting a raw string: fall through as identifier.
        }
        // String literal (also byte strings b"...").
        if c == '"' || (c == 'b' && next == Some('"')) {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char_lit = match next {
                Some('\\') => true,
                Some(ch) => chars.get(i + 2) == Some(&'\'') && ch != '\'',
                None => false,
            };
            if is_char_lit {
                bump!(); // '
                if chars[i] == '\\' {
                    bump!();
                    while i < chars.len() && chars[i] != '\'' {
                        bump!();
                    }
                    bump!(); // closing '
                } else {
                    bump!(); // the char
                    bump!(); // closing '
                }
            } else {
                bump!(); // '
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
            }
            continue;
        }
        // Identifier or keyword.
        if c.is_alphabetic() || c == '_' {
            let (l, co) = (line, col);
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                bump!();
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line: l,
                column: co,
            });
            continue;
        }
        // Number literal, suffix and all (`0usize`, `1_000.5`, `0xFF`).
        if c.is_ascii_digit() {
            let (l, co) = (line, col);
            let mut text = String::new();
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                // Stop at `..` range punctuation.
                if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                    break;
                }
                text.push(chars[i]);
                bump!();
            }
            tokens.push(Token {
                kind: TokKind::Number,
                text,
                line: l,
                column: co,
            });
            continue;
        }
        // `::` as one token (used by rule patterns); all else single chars.
        if c == ':' && next == Some(':') {
            tokens.push(Token {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
                column: col,
            });
            bump!();
            bump!();
            continue;
        }
        if !c.is_whitespace() {
            tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                column: col,
            });
        }
        bump!();
    }

    Lexed {
        tokens,
        allows,
        doc_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_become_tokens_with_suffixes() {
        let lexed = lex("let x = 0.5f64 + 1_000 - 0xFF; let r = 0..10;");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0.5f64", "1_000", "0xFF", "0", "10"]);
        assert!(lexed.tokens[3].is_float_literal());
    }

    #[test]
    fn allows_come_from_regular_comments_only() {
        let src = "\
/// Doc prose about `// lint: allow(panic)` is not an annotation.
//! Nor is module prose: lint: allow(cast)
// A real one though: lint: allow(unordered)
/* and in blocks: lint: allow(ambient) */
fn f() {}
";
        let lexed = lex(src);
        let keys: Vec<&str> = lexed.allows.iter().map(|a| a.key.as_str()).collect();
        assert_eq!(keys, vec!["unordered", "ambient"]);
        assert_eq!(lexed.allows[0].line, 3);
    }

    #[test]
    fn doc_lines_are_recorded_per_line() {
        let src = "/// # Errors\n/// Never.\nfn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.doc_lines[&1].contains("# Errors"));
        assert!(lexed.doc_lines[&2].contains("Never"));
        assert!(!lexed.doc_lines.contains_key(&3));
    }
}
