//! Rule metadata and the declarative layering contract.
//!
//! Everything policy-shaped lives here: which workspace crate a path
//! belongs to, which crate-level dependency edges the architecture
//! permits, and the per-rule metadata (allow key, rationale) that backs
//! `thrifty-lint --explain <rule>`.

use std::collections::BTreeSet;

/// Which workspace crate a file belongs to, parsed from its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrateScope {
    /// `crates/core` — the Thrifty service library (`thrifty`).
    Core,
    /// `crates/sim` — the discrete-event simulator (`mppdb-sim`).
    Sim,
    /// `crates/workload` — log generation (`thrifty-workload`).
    Workload,
    /// `crates/bench` — the experiment harness (`thrifty-bench`).
    Bench,
    /// `crates/daemon` — the `thriftyd` control plane (`thrifty-daemon`),
    /// the sole crate permitted to read the ambient wall clock.
    Daemon,
    /// `crates/lint` — this crate.
    Lint,
    /// Anything else.
    Other,
}

impl CrateScope {
    /// Short display name, used as the first scope-path segment.
    pub fn short_name(self) -> &'static str {
        match self {
            CrateScope::Core => "core",
            CrateScope::Sim => "sim",
            CrateScope::Workload => "workload",
            CrateScope::Bench => "bench",
            CrateScope::Daemon => "daemon",
            CrateScope::Lint => "lint",
            CrateScope::Other => "other",
        }
    }

    /// Maps a crate identifier as it appears in `use` paths to a scope.
    pub fn from_crate_ident(ident: &str) -> Option<CrateScope> {
        match ident {
            "thrifty" => Some(CrateScope::Core),
            "mppdb_sim" => Some(CrateScope::Sim),
            "thrifty_workload" => Some(CrateScope::Workload),
            "thrifty_bench" => Some(CrateScope::Bench),
            "thrifty_daemon" => Some(CrateScope::Daemon),
            "thrifty_lint" => Some(CrateScope::Lint),
            _ => None,
        }
    }
}

/// Parses the owning crate out of a workspace-relative path.
pub fn crate_scope(path: &str) -> CrateScope {
    let norm = path.replace('\\', "/");
    let mut parts = norm.split('/').peekable();
    while let Some(p) = parts.next() {
        if p == "crates" {
            return match parts.peek().copied() {
                Some("core") => CrateScope::Core,
                Some("sim") => CrateScope::Sim,
                Some("workload") => CrateScope::Workload,
                Some("bench") => CrateScope::Bench,
                Some("daemon") => CrateScope::Daemon,
                Some("lint") => CrateScope::Lint,
                _ => CrateScope::Other,
            };
        }
    }
    CrateScope::Other
}

/// Module path of a file, e.g. `crates/core/src/grouping/two_step.rs` →
/// `core::grouping::two_step` (`lib.rs` / `main.rs` / `mod.rs` collapse
/// into their parent).
pub fn module_path(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let scope = crate_scope(&norm);
    let mut segments: Vec<String> = vec![scope.short_name().to_string()];
    if let Some(pos) = norm.find("/src/") {
        let rel = &norm[pos + "/src/".len()..];
        for part in rel.split('/') {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if matches!(stem, "lib" | "main" | "mod") || stem.is_empty() {
                continue;
            }
            segments.push(stem.to_string());
        }
    }
    segments.join("::")
}

/// The declarative inter-crate layering contract enforced by rule L6.
///
/// An observed dependency edge that is not in `allowed` is a violation,
/// and so is any cycle among observed edges. The default contract encodes
/// the workspace architecture (see ARCHITECTURE.md "Static analysis"):
///
/// ```text
/// bench ──▶ daemon ──▶ core ──▶ sim ◀── workload
///   │          │                 ▲
///   └──────────┴─────────────────┘      lint depends on nothing
/// ```
///
/// In particular: `core`/`sim`/`workload` must not depend on `bench` or
/// `daemon` (the harness and the control plane sit on top), `sim` must
/// not depend on `core` (the simulator is the substrate, not a
/// consumer), and `daemon` must not depend on `bench` (the fuzz harness
/// drives the daemon, never the reverse).
#[derive(Clone, Debug)]
pub struct LayeringContract {
    /// Permitted `(from, to)` crate edges.
    pub allowed: BTreeSet<(CrateScope, CrateScope)>,
}

impl Default for LayeringContract {
    fn default() -> Self {
        let allowed = [
            (CrateScope::Core, CrateScope::Sim),
            (CrateScope::Workload, CrateScope::Sim),
            (CrateScope::Bench, CrateScope::Core),
            (CrateScope::Bench, CrateScope::Sim),
            (CrateScope::Bench, CrateScope::Workload),
            (CrateScope::Bench, CrateScope::Daemon),
            (CrateScope::Daemon, CrateScope::Core),
            (CrateScope::Daemon, CrateScope::Sim),
            (CrateScope::Daemon, CrateScope::Workload),
        ]
        .into_iter()
        .collect();
        LayeringContract { allowed }
    }
}

impl LayeringContract {
    /// Is the edge permitted?
    pub fn permits(&self, from: CrateScope, to: CrateScope) -> bool {
        from == to || self.allowed.contains(&(from, to))
    }
}

/// Static metadata for one rule, backing `--explain` and the reports.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Rule identifier (`"L1"` … `"L9"`).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The `// lint: allow(<key>)` key that suppresses it.
    pub allow_key: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
}

/// The nine rules, in order.
pub const RULES: [RuleInfo; 9] = [
    RuleInfo {
        id: "L1",
        title: "no randomized-order containers",
        allow_key: "unordered",
        scope: "all workspace crates",
        rationale: "HashMap/HashSet iterate in RandomState order, which differs per process \
                    and per map instance. Any iteration that feeds a report, a plan, or an \
                    event stream breaks the byte-identical replay contract weeks later, in a \
                    way no test run reproduces. Use BTreeMap/BTreeSet; membership-only \
                    containers that are provably never iterated may be annotated.",
    },
    RuleInfo {
        id: "L2",
        title: "no ambient clock or entropy",
        allow_key: "ambient",
        scope: "core, sim, workload (daemon is the sanctioned wall-clock adapter)",
        rationale: "Instant::now(), SystemTime, thread_rng() and from_entropy() read state \
                    that differs per run. Deterministic crates take time from SimTime and \
                    randomness from seeded DetRng streams. Ambient wall-clock reads are \
                    permitted solely in crates/daemon (the thriftyd ClockSource adapter) \
                    and in the bench harness's edge timers; the service core they host \
                    stays clock-free so the daemon path replays byte-identically under \
                    --sim-clock.",
    },
    RuleInfo {
        id: "L3",
        title: "no ad-hoc thread spawning",
        allow_key: "thread-spawn",
        scope: "everything except thrifty_bench::parallel",
        rationale: "Threads spawned outside the deterministic fork-join executor have no \
                    ordered join point, so their side effects interleave nondeterministically. \
                    All parallelism goes through thrifty_bench::parallel, whose par_map \
                    preserves input order at any thread count.",
    },
    RuleInfo {
        id: "L4",
        title: "no panicking APIs in library code",
        allow_key: "panic",
        scope: "core, sim, workload (non-test)",
        rationale: ".unwrap()/.expect()/panic!/unreachable!/todo! abort the caller; a \
                    million-tenant service must degrade, not die. Library failures route \
                    through ThriftyError/SimError so callers decide. Tests are exempt.",
    },
    RuleInfo {
        id: "L5",
        title: "no bare integer casts in the simulator",
        allow_key: "cast",
        scope: "sim",
        rationale: "Bare `as` casts to integer types truncate and saturate silently, and the \
                    simulator's tick arithmetic is exactly where a silent wrap corrupts a \
                    replay. Use the checked helpers in mppdb_sim::convert, which make the \
                    saturation policy explicit and audited.",
    },
    RuleInfo {
        id: "L6",
        title: "crate layering contract",
        allow_key: "layering",
        scope: "all workspace crates (use/path tokens, tree-wide)",
        rationale: "The architecture is a DAG: bench -> {daemon, core, workload} -> sim and \
                    daemon -> {core, sim, workload}, with lint standalone. \
                    core/sim/workload must not depend on bench or daemon (the harness and \
                    the control plane sit on top, not underneath), sim must not depend on \
                    core (the simulator is the substrate), daemon must not depend on bench \
                    (the fuzz harness drives the daemon, never the reverse), and no \
                    dependency cycle may form. The pass parses use/path tokens tree-wide, \
                    builds the inter-crate and inter-module dependency graph, and rejects \
                    any edge outside the declared contract.",
    },
    RuleInfo {
        id: "L7",
        title: "float reductions on parallel merge paths must pin their order",
        allow_key: "float-merge",
        scope: "functions reachable from thrifty_bench::parallel / sharded merge paths",
        rationale: "Floating-point addition is not associative: summing shard results in a \
                    thread-dependent order produces run-dependent bits. Any f32/f64 \
                    reduction (sum, fold, product, manual accumulator) reachable from the \
                    parallel merge paths must either be restructured or carry an \
                    allow(float-merge) note stating why its iteration order is pinned \
                    (e.g. par_map preserves input order; the source is a BTreeMap walk).",
    },
    RuleInfo {
        id: "L8",
        title: "allow annotations must suppress something",
        allow_key: "stale-allow",
        scope: "all workspace crates",
        rationale: "An escape hatch that suppresses nothing is a rotted decision: the code \
                    it justified was refactored away, and the stale annotation will silently \
                    excuse the next real violation typed near it. Every lint: allow(..) must \
                    suppress at least one finding of its rule, or be removed. A deliberate \
                    tombstone may be kept with allow(stale-allow).",
    },
    RuleInfo {
        id: "L9",
        title: "public fallible APIs document their errors",
        allow_key: "error-docs",
        scope: "core, sim (pub fn returning Result)",
        rationale: "The PR 2 error-hardening discipline routes library failures through \
                    ThriftyError/SimError; a caller can only handle what is documented. \
                    Every pub fn in core/sim returning a Result carries an `# Errors` doc \
                    section stating when it fails.",
    },
];

/// Looks up a rule by id (`"L1"`…`"L9"`, case-insensitive) or by allow key.
pub fn rule_info(query: &str) -> Option<&'static RuleInfo> {
    let q = query.trim();
    RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(q) || r.allow_key == q)
}

/// Renders the `--explain` text for a rule.
pub fn explain(query: &str) -> Option<String> {
    let r = rule_info(query)?;
    Some(format!(
        "{id}: {title}\n  applies to: {scope}\n  allow key:  // lint: allow({key})\n\n{rationale}\n",
        id = r.id,
        title = r.title,
        scope = r.scope,
        key = r.allow_key,
        rationale = r.rationale,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_collapse_lib_and_mod() {
        assert_eq!(module_path("crates/core/src/lib.rs"), "core");
        assert_eq!(
            module_path("crates/core/src/grouping/mod.rs"),
            "core::grouping"
        );
        assert_eq!(
            module_path("crates/core/src/grouping/two_step.rs"),
            "core::grouping::two_step"
        );
        assert_eq!(module_path("crates/sim/src/cluster.rs"), "sim::cluster");
    }

    #[test]
    fn the_default_contract_is_the_architecture_dag() {
        let c = LayeringContract::default();
        assert!(c.permits(CrateScope::Bench, CrateScope::Core));
        assert!(c.permits(CrateScope::Core, CrateScope::Sim));
        assert!(c.permits(CrateScope::Workload, CrateScope::Sim));
        assert!(!c.permits(CrateScope::Core, CrateScope::Bench));
        assert!(!c.permits(CrateScope::Sim, CrateScope::Core));
        assert!(!c.permits(CrateScope::Workload, CrateScope::Bench));
        assert!(!c.permits(CrateScope::Lint, CrateScope::Core));
        // The control plane sits beside bench: it may use the libraries,
        // the libraries may not use it, and it may not reach into bench.
        assert!(c.permits(CrateScope::Daemon, CrateScope::Core));
        assert!(c.permits(CrateScope::Daemon, CrateScope::Sim));
        assert!(c.permits(CrateScope::Daemon, CrateScope::Workload));
        assert!(c.permits(CrateScope::Bench, CrateScope::Daemon));
        assert!(!c.permits(CrateScope::Daemon, CrateScope::Bench));
        assert!(!c.permits(CrateScope::Core, CrateScope::Daemon));
        assert!(!c.permits(CrateScope::Sim, CrateScope::Daemon));
    }

    #[test]
    fn every_rule_explains_itself() {
        for r in &RULES {
            let text = explain(r.id).expect("rule is explainable");
            assert!(text.contains(r.allow_key));
            assert!(text.contains(r.id));
        }
        assert!(explain("L10").is_none());
    }
}
