//! Findings and report rendering.
//!
//! The JSON schema is backward-compatible with the PR 4 format: `rule`,
//! `file`, `line`, `column`, `message`, `snippet` are unchanged, and the
//! PR 9 `scope` field (the brace-tree scope path of the offending token)
//! defaults to empty on deserialization so pre-PR-9 artifacts still parse.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One rule violation at a precise source location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Rule identifier (`"L1"` … `"L9"`).
    pub rule: String,
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (in characters) of the offending token.
    pub column: usize,
    /// Scope path of the offending token (e.g.
    /// `core::reconsolidation::Reconsolidator::measure_error`). Empty for
    /// whole-tree findings with no single scope (layering cycles).
    pub scope: String,
    /// Human-readable explanation of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

// Hand-written so `scope` defaults to empty: pre-PR-9 JSON artifacts (which
// lack the field) must keep parsing, and the serde shim's derive has no
// `#[serde(default)]`.
impl Deserialize for Finding {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let req = |key: &str| {
            v.get(key)
                .ok_or_else(|| serde::Error::msg(format!("Finding: missing field `{key}`")))
        };
        Ok(Finding {
            rule: String::from_value(req("rule")?)?,
            file: String::from_value(req("file")?)?,
            line: usize::from_value(req("line")?)?,
            column: usize::from_value(req("column")?)?,
            scope: match v.get("scope") {
                Some(s) => String::from_value(s)?,
                None => String::new(),
            },
            message: String::from_value(req("message")?)?,
            snippet: String::from_value(req("snippet")?)?,
        })
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.column, self.rule, self.message
        )?;
        if !self.scope.is_empty() {
            write!(f, "\n    in {}", self.scope)?;
        }
        write!(f, "\n    {}", self.snippet)
    }
}

/// A whole lint run, serializable for the CI `--format json` mode.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Every violation found, in (file, line, column, rule) order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Human-readable report.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "thrifty-lint: {} finding(s) in {} file(s)\n",
        report.findings.len(),
        report.files_scanned
    ));
    out
}

/// Machine-readable report for CI (`--format json`).
pub fn render_json(report: &LintReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization is infallible")
}

/// Sorts findings into the canonical (file, line, column, rule) order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, &a.rule).cmp(&(&b.file, b.line, b.column, &b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_scope_json_still_deserializes() {
        let legacy = r#"{
            "files_scanned": 1,
            "findings": [{
                "rule": "L1", "file": "crates/core/src/x.rs",
                "line": 3, "column": 7,
                "message": "m", "snippet": "s"
            }]
        }"#;
        let report: LintReport = serde_json::from_str(legacy).expect("legacy format parses");
        assert_eq!(report.findings[0].scope, "");
    }
}
