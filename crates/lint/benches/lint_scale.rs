//! `lint_scale`: wall-time of a full-tree lint run.
//!
//! The nine-pass analyzer runs on every `cargo test` (the root
//! `lint_clean` integration test) and in CI, so it must stay cheap: the
//! budget is **250 ms** for the whole workspace `crates/` tree, enforced
//! by the guard after the criterion measurement. If the brace-tree
//! parser or the L7 reachability sweep regresses past the budget, this
//! bench fails the CI lint job rather than silently taxing every build.

use criterion::{criterion_group, Criterion};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn workspace_crates() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../crates")
}

fn bench_full_tree(c: &mut Criterion) {
    let root = workspace_crates();
    let mut group = c.benchmark_group("lint_scale");
    group.sample_size(10);
    group.bench_function("full_tree", |b| {
        b.iter(|| {
            let report = thrifty_lint::lint_tree(&root).expect("tree readable");
            assert!(report.files_scanned > 50);
            report.findings.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_tree);

const BUDGET_MS: u128 = 250;

fn main() {
    benches();

    // The guard: one cold full-tree run must fit the budget.
    let root = workspace_crates();
    let start = Instant::now();
    let report = thrifty_lint::lint_tree(&root).expect("tree readable");
    let elapsed = start.elapsed().as_millis();
    assert!(report.files_scanned > 50);
    assert!(
        elapsed < BUDGET_MS,
        "full-tree lint took {elapsed} ms, budget is {BUDGET_MS} ms"
    );
    println!(
        "lint_scale guard: {elapsed} ms for {} files (budget {BUDGET_MS} ms)",
        report.files_scanned
    );
}
