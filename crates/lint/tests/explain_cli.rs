//! Integration test for `thrifty-lint --explain`: every rule explains
//! itself (by id and by allow key), and an unknown rule is a usage error.

use std::process::Command;

fn explain(query: &str) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_thrifty-lint"))
        .args(["--explain", query])
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn every_rule_explains_itself_by_id_and_allow_key() {
    let rules = [
        ("L1", "unordered"),
        ("L2", "ambient"),
        ("L3", "thread-spawn"),
        ("L4", "panic"),
        ("L5", "cast"),
        ("L6", "layering"),
        ("L7", "float-merge"),
        ("L8", "stale-allow"),
        ("L9", "error-docs"),
    ];
    for (id, key) in rules {
        let (ok, stdout, stderr) = explain(id);
        assert!(ok, "--explain {id} failed: {stderr}");
        assert!(stdout.contains(id), "{id}: missing rule id\n{stdout}");
        assert!(
            stdout.contains(key),
            "{id}: rationale must name the allow key {key}\n{stdout}"
        );

        // The allow key is an equivalent query, case-insensitively.
        let (ok, by_key, _) = explain(key);
        assert!(ok, "--explain {key} failed");
        assert_eq!(by_key, stdout, "{id} vs {key}");
        let (ok, by_lower, _) = explain(&id.to_lowercase());
        assert!(ok, "--explain {} failed", id.to_lowercase());
        assert_eq!(by_lower, stdout);
    }
}

#[test]
fn unknown_rules_are_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_thrifty-lint"))
        .args(["--explain", "L42"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));

    let out = Command::new(env!("CARGO_BIN_EXE_thrifty-lint"))
        .arg("--explain")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "--explain with no operand");
}
