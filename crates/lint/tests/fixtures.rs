//! Fixture proofs: every rule fires on its known-bad snippet, stays quiet
//! on the clean variant, and respects the `// lint: allow(...)` escape
//! hatch. The fixtures live under `crates/lint/fixtures/` (a directory the
//! tree walker never descends into, so the deliberately-bad code cannot
//! pollute a real lint run).

use thrifty_lint::{lint_source, render_json, Finding, LintReport};

/// Lints a fixture as if it lived at the given synthetic path (rule
/// scoping derives from the path's crate component).
fn lint_fixture(source: &str, synthetic_path: &str) -> Vec<Finding> {
    lint_source(synthetic_path, source)
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn l1_fires_on_hash_containers_and_not_on_btree() {
    let fired = lint_fixture(
        include_str!("../fixtures/l1_fires.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(!fired.is_empty(), "L1 must fire");
    assert!(rules(&fired).iter().all(|r| *r == "L1"), "{fired:?}");

    let clean = lint_fixture(
        include_str!("../fixtures/l1_clean.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l1_allowed.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l2_fires_on_ambient_state_in_deterministic_crates_only() {
    let src = include_str!("../fixtures/l2_fires.rs");
    let fired = lint_fixture(src, "crates/sim/src/fixture.rs");
    assert!(!fired.is_empty(), "L2 must fire");
    assert!(rules(&fired).iter().all(|r| *r == "L2"), "{fired:?}");

    // The same source is legal in the bench harness, which is allowed to
    // read the wall clock.
    assert!(lint_fixture(src, "crates/bench/src/fixture.rs").is_empty());

    let clean = lint_fixture(
        include_str!("../fixtures/l2_clean.rs"),
        "crates/workload/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l2_allowed.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l2_permits_the_daemon_clock_adapter() {
    // The exact source that fires in every deterministic crate is legal
    // in crates/daemon — the sanctioned ClockSource adapter is the one
    // library place allowed to read ambient time.
    let src = include_str!("../fixtures/l2_fires.rs");
    assert!(!lint_fixture(src, "crates/core/src/fixture.rs").is_empty());
    assert!(lint_fixture(src, "crates/daemon/src/fixture.rs").is_empty());
    assert!(lint_fixture(src, "crates/daemon/src/clock.rs").is_empty());
}

#[test]
fn l3_fires_on_spawn_everywhere_but_the_parallel_module() {
    let src = include_str!("../fixtures/l3_fires.rs");
    let fired = lint_fixture(src, "crates/workload/src/fixture.rs");
    assert_eq!(rules(&fired), vec!["L3"]);

    // The deterministic fork-join executor is the one blessed home.
    assert!(lint_fixture(src, "crates/bench/src/parallel.rs").is_empty());

    let clean = lint_fixture(
        include_str!("../fixtures/l3_clean.rs"),
        "crates/bench/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l3_allowed.rs"),
        "crates/bench/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l4_fires_on_each_panicking_api() {
    let fired = lint_fixture(
        include_str!("../fixtures/l4_fires.rs"),
        "crates/core/src/fixture.rs",
    );
    assert_eq!(rules(&fired), vec!["L4"; 4], "{fired:?}");
    let messages: Vec<&str> = fired.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains(".unwrap()")));
    assert!(messages.iter().any(|m| m.contains(".expect()")));
    assert!(messages.iter().any(|m| m.contains("panic!")));
    assert!(messages.iter().any(|m| m.contains("unreachable!")));

    // Bench/workload code may panic (experiment harness policy).
    assert!(lint_fixture(
        include_str!("../fixtures/l4_fires.rs"),
        "crates/bench/src/fixture.rs"
    )
    .is_empty());

    let clean = lint_fixture(
        include_str!("../fixtures/l4_clean.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l4_allowed.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l5_fires_on_bare_integer_casts_in_sim_only() {
    let src = include_str!("../fixtures/l5_fires.rs");
    let fired = lint_fixture(src, "crates/sim/src/fixture.rs");
    assert_eq!(rules(&fired), vec!["L5", "L5"], "{fired:?}");

    // Integer casts elsewhere are the other crates' business.
    assert!(lint_fixture(src, "crates/core/src/fixture.rs").is_empty());

    let clean = lint_fixture(
        include_str!("../fixtures/l5_clean.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l5_allowed.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l6_rejects_a_core_to_bench_edge() {
    let fired = lint_fixture(
        include_str!("../fixtures/l6_fires.rs"),
        "crates/core/src/fixture.rs",
    );
    assert_eq!(rules(&fired), vec!["L6"], "{fired:?}");
    assert!(fired[0].message.contains("must not depend on `bench`"));

    // The same import is legal from the bench crate itself (self-edge).
    assert!(lint_fixture(
        include_str!("../fixtures/l6_fires.rs"),
        "crates/bench/src/fixture.rs"
    )
    .is_empty());

    let clean = lint_fixture(
        include_str!("../fixtures/l6_clean.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l6_allowed.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l6_places_the_daemon_between_bench_and_the_libraries() {
    // daemon -> bench inverts the harness-on-top architecture.
    let fired = lint_fixture(
        include_str!("../fixtures/l6_daemon_fires.rs"),
        "crates/daemon/src/fixture.rs",
    );
    assert_eq!(rules(&fired), vec!["L6"], "{fired:?}");
    assert!(fired[0].message.contains("must not depend on `bench`"));

    // The same import is the blessed direction from bench itself.
    assert!(lint_fixture(
        include_str!("../fixtures/l6_daemon_fires.rs"),
        "crates/bench/src/fixture.rs"
    )
    .is_empty());

    // daemon -> {core, sim, workload} are all contract edges.
    let clean = lint_fixture(
        include_str!("../fixtures/l6_daemon_clean.rs"),
        "crates/daemon/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    // The libraries must not reach up into the control plane: the same
    // clean source re-homed into core gains a core -> daemon edge via a
    // daemon import.
    let core_to_daemon = "use thrifty_daemon::client::DaemonClient;\npub fn f() {}\n";
    let fired = lint_fixture(core_to_daemon, "crates/core/src/fixture.rs");
    assert_eq!(rules(&fired), vec!["L6"], "{fired:?}");
    assert!(fired[0].message.contains("must not depend on `daemon`"));

    // bench -> daemon is allowed (the fuzz harness drives thriftyd).
    assert!(lint_fixture(core_to_daemon, "crates/bench/src/fixture.rs").is_empty());
}

#[test]
fn l6_rejects_a_crate_cycle() {
    // A two-file set whose imports form sim -> workload -> sim. The
    // workload -> sim edge is in the contract; the sim -> workload edge is
    // annotated away — the cycle must still be called out, because a
    // per-edge exception cannot waive graph acyclicity.
    let sim =
        "// lint: allow(layering)\nuse thrifty_workload::library::QueryLibrary;\npub fn f() {}\n";
    let workload = "use mppdb_sim::time::SimTime;\npub fn g() {}\n";
    let findings = thrifty_lint::lint_sources(&[
        ("crates/sim/src/fixture.rs", sim),
        ("crates/workload/src/fixture.rs", workload),
    ]);
    assert_eq!(rules(&findings), vec!["L6"], "{findings:?}");
    assert!(
        findings[0].message.contains("cycle"),
        "{}",
        findings[0].message
    );
}

#[test]
fn l7_fires_on_unpinned_float_merges() {
    let fired = lint_fixture(
        include_str!("../fixtures/l7_fires.rs"),
        "crates/bench/src/fixture.rs",
    );
    assert!(fired.len() >= 2, "sum + manual accumulator: {fired:?}");
    assert!(rules(&fired).iter().all(|r| *r == "L7"), "{fired:?}");

    let clean = lint_fixture(
        include_str!("../fixtures/l7_clean.rs"),
        "crates/bench/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l7_allowed.rs"),
        "crates/bench/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l8_fires_on_annotations_that_suppress_nothing() {
    let fired = lint_fixture(
        include_str!("../fixtures/l8_fires.rs"),
        "crates/core/src/fixture.rs",
    );
    assert_eq!(rules(&fired), vec!["L8", "L8"], "{fired:?}");
    assert!(fired
        .iter()
        .any(|f| f.message.contains("suppresses nothing")));
    assert!(fired.iter().any(|f| f.message.contains("names no rule")));

    let clean = lint_fixture(
        include_str!("../fixtures/l8_clean.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l8_allowed.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn l9_fires_on_undocumented_fallible_apis() {
    let src = include_str!("../fixtures/l9_fires.rs");
    let fired = lint_fixture(src, "crates/core/src/fixture.rs");
    assert_eq!(rules(&fired), vec!["L9"], "{fired:?}");
    assert!(fired[0].message.contains("# Errors"));

    // Bench/workload code is outside the error-docs contract.
    assert!(lint_fixture(src, "crates/bench/src/fixture.rs").is_empty());

    let clean = lint_fixture(
        include_str!("../fixtures/l9_clean.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");

    let allowed = lint_fixture(
        include_str!("../fixtures/l9_allowed.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn findings_round_trip_through_json() {
    let findings = lint_fixture(
        include_str!("../fixtures/l5_fires.rs"),
        "crates/sim/src/fixture.rs",
    );
    let report = LintReport {
        files_scanned: 1,
        findings,
    };
    let json = render_json(&report);
    let back: LintReport = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(back, report);
    // The machine format carries everything the text format prints,
    // including the PR 9 scope path.
    for f in &report.findings {
        assert!(json.contains(&f.rule));
        assert!(json.contains(&f.snippet));
        assert!(!f.scope.is_empty());
        assert!(json.contains(&f.scope));
    }
}

#[test]
fn every_rule_has_a_firing_fixture() {
    // Belt and braces for the acceptance criterion: enumerate the firing
    // fixtures and check the union of rules is exactly L1..L9.
    let cases = [
        (
            include_str!("../fixtures/l1_fires.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/l2_fires.rs"),
            "crates/sim/src/f.rs",
        ),
        (
            include_str!("../fixtures/l3_fires.rs"),
            "crates/workload/src/f.rs",
        ),
        (
            include_str!("../fixtures/l4_fires.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/l5_fires.rs"),
            "crates/sim/src/f.rs",
        ),
        (
            include_str!("../fixtures/l6_fires.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/l7_fires.rs"),
            "crates/bench/src/f.rs",
        ),
        (
            include_str!("../fixtures/l8_fires.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/l9_fires.rs"),
            "crates/core/src/f.rs",
        ),
    ];
    let mut seen = std::collections::BTreeSet::new();
    for (src, path) in cases {
        for f in lint_source(path, src) {
            seen.insert(f.rule);
        }
    }
    let want: std::collections::BTreeSet<String> =
        ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    assert_eq!(seen, want);
}
