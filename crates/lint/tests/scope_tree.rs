//! Property test for the tokenizer↔tree seam: generate random nested
//! item streams from a seeded LCG, tracking the expected scope path and
//! test-subtree membership of a marker planted in every function body,
//! then assert the built tree assigns exactly those paths. The generator
//! exercises the shapes the brace-tree parser must not confuse: nested
//! modules, `impl` blocks, anonymous braces inside bodies, brace-less
//! items (`struct X;`), and `#[cfg(test)]` subtrees.

use thrifty_lint::token_scopes;

/// Deterministic 64-bit LCG (same constants as the workspace's DetRng
/// lineage); the suite must not depend on ambient entropy.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One planted marker: its unique identifier text, the expected scope
/// segments below the file root, and expected test-subtree membership.
struct Expected {
    marker: String,
    segments: Vec<String>,
    is_test: bool,
}

struct Gen {
    src: String,
    expected: Vec<Expected>,
    counter: usize,
}

impl Gen {
    fn plant_marker(&mut self, stack: &[String], is_test: bool) {
        self.counter += 1;
        let marker = format!("mk_{}", self.counter);
        self.src.push_str(&format!("let {marker} = 0;\n"));
        self.expected.push(Expected {
            marker,
            segments: stack.to_vec(),
            is_test,
        });
    }

    fn items(&mut self, rng: &mut Lcg, stack: &mut Vec<String>, is_test: bool, depth: usize) {
        let count = 2 + rng.pick(3) as usize;
        for _ in 0..count {
            // At the depth limit only plain functions remain, so the
            // recursion terminates.
            let choice = if depth >= 3 { 1 } else { rng.pick(5) };
            self.counter += 1;
            let k = self.counter;
            match choice {
                0 => {
                    self.src.push_str(&format!("mod m{k} {{\n"));
                    stack.push(format!("m{k}"));
                    self.items(rng, stack, is_test, depth + 1);
                    stack.pop();
                    self.src.push_str("}\n");
                }
                1 => {
                    self.src
                        .push_str(&format!("pub fn f{k}(x: u32) -> u32 {{\n"));
                    stack.push(format!("f{k}"));
                    self.plant_marker(stack, is_test);
                    // Anonymous block: must not open a scope.
                    self.src.push_str("{\n");
                    self.plant_marker(stack, is_test);
                    self.src.push_str("}\nx\n");
                    stack.pop();
                    self.src.push_str("}\n");
                }
                2 => {
                    // A brace-less item between siblings must not derail
                    // item-position tracking, and the impl scope is named
                    // after the type.
                    self.src
                        .push_str(&format!("struct T{k};\nimpl T{k} {{\nfn g{k}(&self) {{\n"));
                    stack.push(format!("T{k}"));
                    stack.push(format!("g{k}"));
                    self.plant_marker(stack, is_test);
                    stack.pop();
                    stack.pop();
                    self.src.push_str("}\n}\n");
                }
                3 => {
                    self.src.push_str(&format!("#[cfg(test)]\nmod t{k} {{\n"));
                    stack.push(format!("t{k}"));
                    self.items(rng, stack, true, depth + 1);
                    stack.pop();
                    self.src.push_str("}\n");
                }
                _ => {
                    self.src
                        .push_str(&format!("trait Tr{k} {{\nfn h{k}(&self) {{\n"));
                    stack.push(format!("Tr{k}"));
                    stack.push(format!("h{k}"));
                    self.plant_marker(stack, is_test);
                    stack.pop();
                    stack.pop();
                    self.src.push_str("}\n}\n");
                }
            }
        }
    }
}

#[test]
fn random_nested_item_streams_get_correct_scope_paths() {
    for seed in [1u64, 7, 42, 99, 1234, 0xDEADBEEF] {
        let mut rng = Lcg(seed);
        let mut gen = Gen {
            src: String::new(),
            expected: Vec::new(),
            counter: 0,
        };
        let mut stack = Vec::new();
        gen.items(&mut rng, &mut stack, false, 0);
        assert!(stack.is_empty());

        let scopes = token_scopes("crates/core/src/fixture.rs", &gen.src);
        assert!(
            gen.expected.len() >= 2,
            "seed {seed} generated too little structure"
        );
        for want in &gen.expected {
            let (_, _, path, is_test) = scopes
                .iter()
                .find(|(text, ..)| *text == want.marker)
                .unwrap_or_else(|| panic!("seed {seed}: marker {} missing", want.marker));
            let mut expect = String::from("core::fixture");
            for seg in &want.segments {
                expect.push_str("::");
                expect.push_str(seg);
            }
            assert_eq!(
                path, &expect,
                "seed {seed}, marker {}:\n{}",
                want.marker, gen.src
            );
            assert_eq!(
                *is_test, want.is_test,
                "seed {seed}, marker {}: test membership",
                want.marker
            );
        }

        // Nesting invariant: every token's path extends the file root,
        // and sibling scopes never leak into one another (each marker's
        // path was matched exactly above; here we check the global root).
        for (text, line, path, _) in &scopes {
            assert!(
                path == "core::fixture" || path.starts_with("core::fixture::"),
                "seed {seed}: token {text:?} at line {line} escaped the root: {path}"
            );
        }
    }
}
