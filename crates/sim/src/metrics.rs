//! Latency statistics helpers.
//!
//! Small, allocation-light summaries used by both the Thrifty SLA accounting
//! layer and the experiment harness (e.g. the normalized query performance
//! plots of Figure 7.7).

use crate::convert;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Streaming summary of a latency (or any nonnegative duration) sample.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples_ms: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ms.push(d.as_ms());
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples_ms.len()
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples_ms.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples_ms.iter().map(|&x| u128::from(x)).sum();
        let count = u128::from(convert::count_u64(self.samples_ms.len()));
        SimDuration::from_ms(convert::ms_from_u128(sum / count))
    }

    /// Maximum, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ms(self.samples_ms.iter().copied().max().unwrap_or(0))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method, or zero if
    /// empty.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.samples_ms.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples_ms.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples_ms.len();
        let rank = convert::ceil_rank_f64(q * n as f64).clamp(1, n);
        SimDuration::from_ms(self.samples_ms[rank - 1])
    }
}

/// Summary of normalized performance values (achieved / baseline latency;
/// 1.0 means "as fast as on a dedicated MPPDB").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NormalizedPerf {
    values: Vec<f64>,
}

impl NormalizedPerf {
    /// Creates an empty summary.
    pub fn new() -> Self {
        NormalizedPerf::default()
    }

    /// Records one normalized performance observation.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite() && value >= 0.0);
        self.values.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Fraction of observations at or below `threshold` (e.g. the fraction
    /// of queries that met the SLA with threshold 1.0 plus tolerance).
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        self.values.iter().filter(|v| **v <= threshold).count() as f64 / self.values.len() as f64
    }

    /// Worst observed slowdown, or 1.0 if empty.
    pub fn worst(&self) -> f64 {
        self.values.iter().copied().fold(1.0, f64::max)
    }

    /// The raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_summarize() {
        let mut s = LatencyStats::new();
        for ms in [100, 200, 300, 400, 1000] {
            s.record(SimDuration::from_ms(ms));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean().as_ms(), 400);
        assert_eq!(s.max().as_ms(), 1000);
        assert_eq!(s.quantile(0.5).as_ms(), 300);
        assert_eq!(s.quantile(1.0).as_ms(), 1000);
        assert_eq!(s.quantile(0.0).as_ms(), 100);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.quantile(0.9), SimDuration::ZERO);
    }

    #[test]
    fn normalized_perf_fractions() {
        let mut p = NormalizedPerf::new();
        for v in [1.0, 1.0, 1.2, 1.5, 1.8] {
            p.record(v);
        }
        assert_eq!(p.count(), 5);
        assert!((p.fraction_at_most(1.05) - 0.4).abs() < 1e-12);
        assert!((p.worst() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn empty_normalized_perf_is_fully_compliant() {
        let p = NormalizedPerf::new();
        assert_eq!(p.fraction_at_most(1.0), 1.0);
        assert_eq!(p.worst(), 1.0);
    }
}
