//! Machine nodes.
//!
//! Thrifty assumes all nodes in the cluster are identical in configuration
//! (Chapter 3 of the paper), so a node carries no capacity vector — only an
//! identity and a lifecycle state. Nodes that the deployment plan does not use
//! are hibernated (switched off) to realize the cost saving.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical machine node in the shared cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's slot in the cluster's node table (lossless).
    pub fn index(self) -> usize {
        crate::convert::index_u32(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Lifecycle state of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeState {
    /// Switched off; not consuming resources. The default for nodes that the
    /// deployment plan does not use.
    Hibernated,
    /// Booting / joining an MPPDB instance.
    Starting,
    /// Running as part of an MPPDB instance.
    Running,
    /// Failed; awaiting replacement.
    Failed,
}

/// A physical node in the cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    state: NodeState,
}

impl Node {
    /// Creates a hibernated node.
    pub fn new(id: NodeId) -> Self {
        Node {
            id,
            state: NodeState::Hibernated,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current lifecycle state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: NodeState) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_start_hibernated() {
        let n = Node::new(NodeId(7));
        assert_eq!(n.id(), NodeId(7));
        assert_eq!(n.state(), NodeState::Hibernated);
        assert_eq!(n.id().to_string(), "node7");
    }
}
