//! The query latency cost model.
//!
//! Latency of one query running **alone** on an MPPDB with `nodes` nodes over
//! `data_gb` of data:
//!
//! ```text
//! latency = cost_ms_per_gb · data_gb · (f + (1 − f) / nodes)
//! ```
//!
//! where `f` is the template's Amdahl serial fraction. This reproduces the two
//! empirical regularities of Figure 1.1 that Thrifty's design depends on:
//!
//! * With `f = 0` (TPC-H Q1 in the paper's setting) the query scales out
//!   linearly: doubling the nodes halves the latency (Figure 1.1a line `1T`).
//! * With `f > 0` (TPC-H Q19) the speedup saturates (Figure 1.1c), so merging
//!   tenants onto a bigger shared MPPDB does *not* in general compensate for
//!   concurrent execution — the motivation for routing active tenants to
//!   dedicated instances rather than relying on over-provisioned parallelism.
//!
//! The effect of *concurrency* (lines `xT-CON`: `x` concurrent queries run
//! `x`-fold slower on an I/O-bound MPPDB) is not part of this formula; it is
//! produced by the processor-sharing discipline of the engine
//! ([`crate::instance`]).

use crate::query::QueryTemplate;

/// Dedicated (isolated) latency in milliseconds of one query over `data_gb`
/// of data on an MPPDB of `nodes` nodes, assuming no concurrent queries.
///
/// # Panics
/// Panics if `nodes` is zero.
pub fn isolated_latency_ms(template: &QueryTemplate, data_gb: f64, nodes: usize) -> f64 {
    assert!(nodes > 0, "an MPPDB instance needs at least one node");
    let f = template.serial_fraction;
    template.cost_ms_per_gb * data_gb * (f + (1.0 - f) / nodes as f64)
}

/// Speedup of a template on `nodes` nodes relative to a single node, data
/// size held constant (the y-axis of Figures 1.1a/1.1c).
pub fn speedup(template: &QueryTemplate, nodes: usize) -> f64 {
    isolated_latency_ms(template, 1.0, 1) / isolated_latency_ms(template, 1.0, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::TemplateId;

    fn linear() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn nonlinear() -> QueryTemplate {
        QueryTemplate::new(TemplateId(19), 600.0, 0.3)
    }

    #[test]
    fn linear_template_scales_linearly() {
        let t = linear();
        for n in 1..=32 {
            let s = speedup(&t, n);
            assert!((s - n as f64).abs() < 1e-9, "speedup at {n} nodes was {s}");
        }
    }

    #[test]
    fn nonlinear_template_saturates() {
        let t = nonlinear();
        // Amdahl bound: speedup < 1/f.
        assert!(speedup(&t, 1024) < 1.0 / t.serial_fraction);
        // ... and is monotone increasing.
        let mut prev = 0.0;
        for n in 1..=64 {
            let s = speedup(&t, n);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn latency_scales_with_data_size() {
        let t = linear();
        let l1 = isolated_latency_ms(&t, 100.0, 4);
        let l2 = isolated_latency_ms(&t, 200.0, 4);
        assert!((l2 / l1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equal_data_per_node_keeps_latency_flat_for_linear_queries() {
        // A tenant with n nodes holds 100 GB per node; for a linear query the
        // latency is then independent of n — which is why the SLA baseline of
        // a larger tenant is not automatically worse.
        let t = linear();
        let l2 = isolated_latency_ms(&t, 200.0, 2);
        let l8 = isolated_latency_ms(&t, 800.0, 8);
        assert!((l2 - l8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = isolated_latency_ms(&linear(), 1.0, 0);
    }
}
