//! The cluster: node inventory, instance lifecycle, and the discrete-event
//! engine.
//!
//! [`Cluster`] is a deterministic single-threaded discrete-event simulator.
//! Drivers interleave their own timeline (e.g. a tenant query log) with the
//! simulator's by calling [`Cluster::run_until`] up to each external event
//! time, reacting to the returned [`SimEvent`]s, and then mutating the
//! cluster (submit a query, provision an instance, ...). Determinism is
//! total: same inputs, same event sequence, bit for bit.

use crate::convert;
use crate::cost::isolated_latency_ms;
use crate::error::{SimError, SimResult};
use crate::instance::{InstanceId, InstanceState, MppdbInstance, RunningQuery};
use crate::loading::ProvisioningModel;
use crate::node::{Node, NodeId, NodeState};
use crate::query::{QueryId, QuerySpec, SimTenantId, TemplateId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Static cluster configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Total physical nodes owned by the service provider.
    pub total_nodes: usize,
    /// Provisioning-time model (node start-up + bulk load).
    pub provisioning: ProvisioningModel,
}

impl ClusterConfig {
    /// A cluster with `total_nodes` nodes and the Table 5.1 calibrated
    /// provisioning model.
    pub fn new(total_nodes: usize) -> Self {
        ClusterConfig {
            total_nodes,
            provisioning: ProvisioningModel::paper_calibrated(),
        }
    }

    /// A cluster whose provisioning is instantaneous (for tests and for
    /// experiments that study steady-state behaviour only).
    pub fn with_instant_provisioning(total_nodes: usize) -> Self {
        ClusterConfig {
            total_nodes,
            provisioning: ProvisioningModel::instant(),
        }
    }
}

/// A completed query, reported by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryCompletion {
    /// The query.
    pub query: QueryId,
    /// Submitting tenant.
    pub tenant: SimTenantId,
    /// Template the query instantiated.
    pub template: TemplateId,
    /// Instance that executed it.
    pub instance: InstanceId,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// Achieved latency (`finished - submitted`).
    pub latency: SimDuration,
    /// Latency this query would have achieved running *alone* on the same
    /// instance (at the instance's parallelism when the query was submitted).
    pub dedicated_latency: SimDuration,
}

impl QueryCompletion {
    /// Slowdown relative to dedicated execution on the same instance
    /// (1.0 = no multi-tenancy interference).
    pub fn slowdown_vs_dedicated(&self) -> f64 {
        if self.dedicated_latency == SimDuration::ZERO {
            return 1.0;
        }
        self.latency.as_ms() as f64 / self.dedicated_latency.as_ms() as f64
    }
}

/// Observable events produced by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// An instance finished provisioning and can now serve queries.
    InstanceReady {
        /// The instance.
        instance: InstanceId,
        /// When it became ready.
        at: SimTime,
    },
    /// A query finished.
    QueryCompleted(QueryCompletion),
    /// A tenant's data finished bulk loading onto an already-running
    /// instance.
    TenantLoaded {
        /// Target instance.
        instance: InstanceId,
        /// The tenant whose data is now available.
        tenant: SimTenantId,
        /// When loading completed.
        at: SimTime,
    },
    /// A node failed.
    NodeFailed {
        /// The failed node.
        node: NodeId,
        /// The instance it belonged to, if any.
        instance: Option<InstanceId>,
        /// When it failed.
        at: SimTime,
    },
    /// A replacement node joined an instance, restoring its parallelism.
    NodeReplaced {
        /// The instance whose parallelism was restored.
        instance: InstanceId,
        /// The replacement node.
        node: NodeId,
        /// When the replacement became active.
        at: SimTime,
    },
    /// A node failed while the free pool was empty: no replacement could be
    /// started. The repair is queued and retried whenever the pool refills
    /// (e.g. after a decommission returns nodes).
    ReplacementDeferred {
        /// The degraded instance awaiting a spare.
        instance: InstanceId,
        /// The failed node still awaiting replacement.
        node: NodeId,
        /// When the deferral happened.
        at: SimTime,
    },
    /// A previously deferred (or interrupted) replacement was re-attempted:
    /// a spare node began starting up for the degraded instance.
    ReplacementRetried {
        /// The instance being repaired.
        instance: InstanceId,
        /// The spare node now starting as the replacement.
        node: NodeId,
        /// When the retry was scheduled.
        at: SimTime,
    },
}

impl SimEvent {
    /// The instant at which the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            SimEvent::InstanceReady { at, .. }
            | SimEvent::TenantLoaded { at, .. }
            | SimEvent::NodeFailed { at, .. }
            | SimEvent::NodeReplaced { at, .. }
            | SimEvent::ReplacementDeferred { at, .. }
            | SimEvent::ReplacementRetried { at, .. } => *at,
            SimEvent::QueryCompleted(c) => c.finished,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum PendingKind {
    CompletionCheck {
        instance: InstanceId,
        version: u64,
    },
    InstanceReady(InstanceId),
    TenantLoaded {
        instance: InstanceId,
        tenant: SimTenantId,
        gb_bits: u64,
    },
    NodeFailure(NodeId),
    NodeReplacement {
        instance: InstanceId,
        failed: NodeId,
        replacement: NodeId,
    },
    /// Drain the deferred-replacement queue against the free pool. Pushed
    /// at the current instant whenever the pool gains nodes.
    DeferredReplacementRetry,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    at: SimTime,
    seq: u64,
    kind: PendingKind,
}

/// The simulated shared cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    config: ClusterConfig,
    now: SimTime,
    nodes: Vec<Node>,
    /// Hibernated nodes available for provisioning (LIFO for determinism).
    free: Vec<NodeId>,
    instances: Vec<MppdbInstance>,
    heap: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    next_query: u64,
    /// Failures that found the free pool empty: `(instance, failed node)`
    /// pairs awaiting a spare, drained FIFO whenever the pool refills.
    deferred: VecDeque<(InstanceId, NodeId)>,
}

impl Cluster {
    /// Creates a cluster with all nodes hibernated.
    pub fn new(config: ClusterConfig) -> Self {
        let nodes: Vec<Node> = (0..convert::count_u32(config.total_nodes))
            .map(|i| Node::new(NodeId(i)))
            .collect();
        // Pop from the back => nodes are handed out in ascending id order.
        let free: Vec<NodeId> = nodes.iter().rev().map(Node::id).collect();
        Cluster {
            config,
            now: SimTime::ZERO,
            nodes,
            free,
            instances: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            next_query: 0,
            deferred: VecDeque::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of hibernated nodes available for provisioning.
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Number of nodes currently in the failed state.
    pub fn failed_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state() == NodeState::Failed)
            .count()
    }

    /// Number of node replacements waiting for the free pool to refill.
    pub fn deferred_replacements(&self) -> usize {
        self.deferred.len()
    }

    /// Number of nodes currently powered (starting or running).
    pub fn powered_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.state(), NodeState::Starting | NodeState::Running))
            .count()
    }

    /// Looks up an instance.
    ///
    /// # Errors
    /// [`SimError::UnknownInstance`] when `id` was never provisioned.
    pub fn instance(&self, id: InstanceId) -> SimResult<&MppdbInstance> {
        self.instances
            .get(id.index())
            .ok_or(SimError::UnknownInstance(id))
    }

    /// Iterates over all instances ever created (including decommissioned).
    pub fn instances(&self) -> impl Iterator<Item = &MppdbInstance> {
        self.instances.iter()
    }

    fn instance_mut(&mut self, id: InstanceId) -> SimResult<&mut MppdbInstance> {
        self.instances
            .get_mut(id.index())
            .ok_or(SimError::UnknownInstance(id))
    }

    fn push_event(&mut self, at: SimTime, kind: PendingKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Pending { at, seq, kind }));
    }

    /// Provisions a new MPPDB instance on `node_count` nodes, bulk loading
    /// the given `(tenant, data GB)` datasets. Returns the instance id; an
    /// [`SimEvent::InstanceReady`] event fires when start-up and loading
    /// complete (per the Table 5.1 model).
    ///
    /// # Errors
    /// [`SimError::InsufficientNodes`] when `node_count` is zero or
    /// exceeds the hibernated free pool.
    pub fn provision_instance(
        &mut self,
        node_count: usize,
        tenants: &[(SimTenantId, f64)],
    ) -> SimResult<InstanceId> {
        if node_count == 0 || node_count > self.free.len() {
            return Err(SimError::InsufficientNodes {
                requested: node_count,
                available: self.free.len(),
            });
        }
        // Detach the tail of the LIFO pool and reverse it so the group keeps
        // the historical hand-out order (ascending node id).
        let mut group = self.free.split_off(self.free.len() - node_count);
        group.reverse();
        for id in &group {
            self.nodes[id.index()].set_state(NodeState::Starting);
        }
        let total_gb: f64 = tenants.iter().map(|(_, gb)| gb).sum();
        let ready_at = self.now
            + self
                .config
                .provisioning
                .provision_time(node_count, total_gb);
        let id = InstanceId(convert::count_u32(self.instances.len()));
        let hosted: BTreeMap<SimTenantId, f64> = tenants.iter().copied().collect();
        self.instances
            .push(MppdbInstance::new(id, group, hosted, ready_at, self.now));
        if ready_at > self.now {
            self.push_event(ready_at, PendingKind::InstanceReady(id));
        } else {
            // Instant provisioning: mark nodes running immediately.
            self.mark_instance_ready(id);
        }
        Ok(id)
    }

    fn mark_instance_ready(&mut self, id: InstanceId) {
        let nodes: Vec<NodeId> = self.instances[id.index()].nodes().to_vec();
        for n in nodes {
            if self.nodes[n.index()].state() == NodeState::Starting {
                self.nodes[n.index()].set_state(NodeState::Running);
            }
        }
        self.instances[id.index()].set_state(InstanceState::Ready);
    }

    /// Decommissions an instance, returning its nodes to the hibernated
    /// pool. Any running queries are aborted; their count is returned.
    ///
    /// # Errors
    /// [`SimError::UnknownInstance`] for an unknown instance;
    /// [`SimError::InstanceDecommissioned`] when it was already retired.
    pub fn decommission(&mut self, id: InstanceId) -> SimResult<usize> {
        let now = self.now;
        let inst = self.instance_mut(id)?;
        if inst.state() == InstanceState::Decommissioned {
            return Err(SimError::InstanceDecommissioned(id));
        }
        inst.advance(now); // settle busy/degraded accounting up to now
        inst.set_state(InstanceState::Decommissioned);
        inst.version += 1; // invalidate pending completion checks
        let aborted = inst.drain_running().len();
        inst.stats.cancelled += convert::count_u64(aborted);
        let nodes: Vec<NodeId> = inst.nodes().to_vec();
        let mut freed = false;
        for n in nodes {
            if self.nodes[n.index()].state() != NodeState::Failed {
                self.nodes[n.index()].set_state(NodeState::Hibernated);
                self.free.push(n);
                freed = true;
            }
        }
        if freed && !self.deferred.is_empty() {
            // The pool just refilled: retry queued replacements. Going
            // through the heap keeps all event emission inside `process`.
            self.push_event(now, PendingKind::DeferredReplacementRetry);
        }
        Ok(aborted)
    }

    /// Submits a query to a ready instance hosting the tenant's data.
    /// Execution follows processor sharing; a
    /// [`SimEvent::QueryCompleted`] fires when it finishes.
    ///
    /// # Errors
    /// [`SimError::UnknownInstance`] / [`SimError::InstanceNotReady`] /
    /// [`SimError::InstanceDecommissioned`] for an unusable instance, and
    /// [`SimError::TenantNotHosted`] when the querying tenant's data is
    /// not loaded there.
    pub fn submit(&mut self, instance: InstanceId, spec: QuerySpec) -> SimResult<QueryId> {
        let now = self.now;
        let id = QueryId(self.next_query);
        let inst = self.instance_mut(instance)?;
        match inst.state() {
            InstanceState::Ready => {}
            InstanceState::Provisioning { .. } => return Err(SimError::InstanceNotReady(instance)),
            InstanceState::Decommissioned => {
                return Err(SimError::InstanceDecommissioned(instance))
            }
        }
        if !inst.hosts(spec.tenant) {
            return Err(SimError::TenantNotHosted {
                instance,
                tenant: spec.tenant,
            });
        }
        // Work is bookkept at full parallelism and paid down at the
        // instance's degradation factor, so a failure (or recovery) mid-query
        // changes the rate without rewriting `remaining_ms`. The dedicated
        // baseline reflects the degraded rate at submission time.
        let work_ms = isolated_latency_ms(&spec.template, spec.data_gb, inst.nodes().len());
        let dedicated_ms = work_ms / inst.degradation_factor();
        inst.advance(now);
        inst.push_running(RunningQuery {
            id,
            spec,
            submitted: now,
            remaining_ms: work_ms,
            dedicated_ms,
        });
        inst.version += 1;
        let version = inst.version;
        let next_check = inst.next_completion_time(now);
        self.next_query += 1;
        if let Some(at) = next_check {
            self.push_event(at, PendingKind::CompletionCheck { instance, version });
        }
        Ok(id)
    }

    /// Bulk loads an additional tenant's data onto a ready instance. The
    /// tenant becomes queryable when [`SimEvent::TenantLoaded`] fires.
    ///
    /// # Errors
    /// [`SimError::UnknownInstance`] / [`SimError::InstanceNotReady`] /
    /// [`SimError::InstanceDecommissioned`] when the instance cannot
    /// accept a bulk load.
    pub fn load_tenant(
        &mut self,
        instance: InstanceId,
        tenant: SimTenantId,
        gb: f64,
    ) -> SimResult<()> {
        let load = self.config.provisioning.bulk_load_time(gb);
        let now = self.now;
        let inst = self.instance_mut(instance)?;
        match inst.state() {
            InstanceState::Ready => {}
            InstanceState::Provisioning { .. } => return Err(SimError::InstanceNotReady(instance)),
            InstanceState::Decommissioned => {
                return Err(SimError::InstanceDecommissioned(instance))
            }
        }
        if load == SimDuration::ZERO {
            inst.add_hosted(tenant, gb);
            return Ok(());
        }
        self.push_event(
            now + load,
            PendingKind::TenantLoaded {
                instance,
                tenant,
                gb_bits: gb.to_bits(),
            },
        );
        Ok(())
    }

    /// Drops a tenant's replica data from an instance and returns the freed
    /// GB (used by re-consolidation: stale replicas are dropped after the
    /// routing cutover, and departed tenants' data is reclaimed in place).
    /// Running queries are unaffected — hosting is only checked at submit.
    ///
    /// # Errors
    /// [`SimError::UnknownInstance`] for an unknown instance and
    /// [`SimError::TenantNotHosted`] when the tenant has no data here (so a
    /// repeated drop of the same replica is an error, not a silent no-op).
    pub fn drop_tenant(&mut self, instance: InstanceId, tenant: SimTenantId) -> SimResult<f64> {
        let inst = self.instance_mut(instance)?;
        inst.remove_hosted(tenant)
            .ok_or(SimError::TenantNotHosted { instance, tenant })
    }

    /// Cancels a running query, returning its spec and original submission
    /// time so the caller can re-route it (e.g. to a freshly scaled-out
    /// MPPDB). No completion event will fire for the cancelled query.
    ///
    /// # Errors
    /// [`SimError::UnknownInstance`] for an unknown instance and
    /// [`SimError::UnknownQuery`] when the query is not running there
    /// (it may already have completed).
    pub fn cancel_query(
        &mut self,
        instance: InstanceId,
        query: QueryId,
    ) -> SimResult<(QuerySpec, SimTime)> {
        let now = self.now;
        let inst = self.instance_mut(instance)?;
        inst.advance(now);
        let pos = inst
            .running
            .iter()
            .position(|q| q.id == query)
            .ok_or(SimError::UnknownQuery(query))?;
        let q = inst.running.remove(pos);
        inst.stats.cancelled += 1;
        inst.version += 1;
        let version = inst.version;
        let next_check = inst.next_completion_time(now);
        if let Some(at) = next_check {
            self.push_event(at, PendingKind::CompletionCheck { instance, version });
        }
        Ok((q.spec, q.submitted))
    }

    /// Schedules a node failure at absolute time `at`.
    ///
    /// # Errors
    /// [`SimError::UnknownNode`] when `node` does not exist.
    pub fn inject_node_failure(&mut self, node: NodeId, at: SimTime) -> SimResult<()> {
        if node.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(node));
        }
        if at < self.now {
            return Err(SimError::TimeInPast);
        }
        self.push_event(at, PendingKind::NodeFailure(node));
        Ok(())
    }

    /// The instant of the next pending internal event, if any.
    pub fn peek_next_event_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(p)| p.at)
    }

    /// The instant of the *last* pending internal event, if any — the
    /// target a batched drain can jump to in one [`run_until`] call.
    ///
    /// [`run_until`]: Cluster::run_until
    pub fn latest_pending_event_time(&self) -> Option<SimTime> {
        self.heap.iter().map(|Reverse(p)| p.at).max()
    }

    /// Whether any lifecycle event — an MPPDB instance coming online or a
    /// tenant bulk-load finishing — is still pending. Callers that react
    /// to these per instant (the service's scale-out activation and
    /// re-consolidation cutover paths) must step event by event while this
    /// holds; pure completion traffic can be drained in one batch.
    pub fn has_pending_lifecycle_events(&self) -> bool {
        self.heap.iter().any(|Reverse(p)| {
            matches!(
                p.kind,
                PendingKind::InstanceReady(_) | PendingKind::TenantLoaded { .. }
            )
        })
    }

    /// Advances simulated time to `until`, processing every internal event
    /// scheduled at or before it, and returns the observable events in
    /// chronological order.
    pub fn run_until(&mut self, until: SimTime) -> Vec<SimEvent> {
        let mut out = Vec::new();
        loop {
            match self.heap.peek() {
                Some(Reverse(p)) if p.at <= until => {}
                _ => break,
            }
            let Some(Reverse(p)) = self.heap.pop() else {
                break;
            };
            self.now = self.now.max(p.at);
            self.process(p, &mut out);
        }
        self.now = self.now.max(until);
        out
    }

    /// Runs every remaining internal event to quiescence and returns the
    /// observable events.
    pub fn run_to_quiescence(&mut self) -> Vec<SimEvent> {
        let mut out = Vec::new();
        while let Some(Reverse(p)) = self.heap.pop() {
            self.now = self.now.max(p.at);
            self.process(p, &mut out);
        }
        out
    }

    fn process(&mut self, p: Pending, out: &mut Vec<SimEvent>) {
        match p.kind {
            PendingKind::InstanceReady(id) => {
                if self.instances[id.index()].state() == InstanceState::Decommissioned {
                    return;
                }
                self.mark_instance_ready(id);
                out.push(SimEvent::InstanceReady {
                    instance: id,
                    at: p.at,
                });
            }
            PendingKind::CompletionCheck { instance, version } => {
                let now = self.now;
                let inst = &mut self.instances[instance.index()];
                if inst.version != version || inst.state() == InstanceState::Decommissioned {
                    return; // stale: concurrency changed since scheduling
                }
                inst.advance(now);
                let finished = inst.take_finished();
                for q in &finished {
                    inst.stats.completed += 1;
                    let latency_ms = now.saturating_since(q.submitted).as_ms() as f64;
                    let slowdown = if q.dedicated_ms <= 0.0 {
                        1.0
                    } else {
                        latency_ms / q.dedicated_ms
                    };
                    inst.stats.slowdown_sum += slowdown;
                    inst.stats.slowdown_max = inst.stats.slowdown_max.max(slowdown);
                }
                inst.version += 1;
                let version = inst.version;
                if let Some(at) = inst.next_completion_time(now) {
                    self.push_event(at, PendingKind::CompletionCheck { instance, version });
                }
                for q in finished {
                    out.push(SimEvent::QueryCompleted(QueryCompletion {
                        query: q.id,
                        tenant: q.spec.tenant,
                        template: q.spec.template.id,
                        instance,
                        submitted: q.submitted,
                        finished: now,
                        latency: now.saturating_since(q.submitted),
                        dedicated_latency: SimDuration::from_ms_f64(q.dedicated_ms),
                    }));
                }
            }
            PendingKind::TenantLoaded {
                instance,
                tenant,
                gb_bits,
            } => {
                let inst = &mut self.instances[instance.index()];
                if inst.state() == InstanceState::Decommissioned {
                    return;
                }
                inst.add_hosted(tenant, f64::from_bits(gb_bits));
                out.push(SimEvent::TenantLoaded {
                    instance,
                    tenant,
                    at: p.at,
                });
            }
            PendingKind::NodeFailure(node) => {
                let state = self.nodes[node.index()].state();
                if state == NodeState::Failed {
                    return; // already failed
                }
                self.nodes[node.index()].set_state(NodeState::Failed);
                // Remove from the free pool if hibernated.
                if state == NodeState::Hibernated {
                    self.free.retain(|n| *n != node);
                    out.push(SimEvent::NodeFailed {
                        node,
                        instance: None,
                        at: p.at,
                    });
                    return;
                }
                let owner = self
                    .instances
                    .iter()
                    .find(|i| {
                        i.state() != InstanceState::Decommissioned && i.nodes().contains(&node)
                    })
                    .map(MppdbInstance::id);
                out.push(SimEvent::NodeFailed {
                    node,
                    instance: owner,
                    at: p.at,
                });
                if let Some(owner_id) = owner {
                    let now = p.at;
                    let inst = &mut self.instances[owner_id.index()];
                    // Settle progress at the healthy rate, then degrade: every
                    // in-flight query slows to effective/total from this
                    // instant, so the pending completion check is stale.
                    inst.advance(now);
                    inst.mark_node_failed();
                    inst.version += 1;
                    let version = inst.version;
                    let next_check = inst.next_completion_time(now);
                    if let Some(at) = next_check {
                        self.push_event(
                            at,
                            PendingKind::CompletionCheck {
                                instance: owner_id,
                                version,
                            },
                        );
                    }
                    // Thrifty replaces a failed node by starting a fresh one
                    // (Chapter 4.4). With the pool empty the repair is queued
                    // and retried once nodes return (e.g. decommission).
                    if let Some(replacement) = self.free.pop() {
                        self.nodes[replacement.index()].set_state(NodeState::Starting);
                        let ready = p.at + self.config.provisioning.startup_time(1);
                        self.push_event(
                            ready,
                            PendingKind::NodeReplacement {
                                instance: owner_id,
                                failed: node,
                                replacement,
                            },
                        );
                    } else {
                        self.deferred.push_back((owner_id, node));
                        out.push(SimEvent::ReplacementDeferred {
                            instance: owner_id,
                            node,
                            at: p.at,
                        });
                    }
                }
            }
            PendingKind::NodeReplacement {
                instance,
                failed,
                replacement,
            } => {
                let now = p.at;
                // The replacement itself may have been killed while starting.
                let replacement_ok = self.nodes[replacement.index()].state() != NodeState::Failed;
                if self.instances[instance.index()].state() == InstanceState::Decommissioned {
                    if replacement_ok {
                        self.nodes[replacement.index()].set_state(NodeState::Hibernated);
                        self.free.push(replacement);
                        if !self.deferred.is_empty() {
                            self.push_event(now, PendingKind::DeferredReplacementRetry);
                        }
                    }
                    return;
                }
                if !replacement_ok {
                    // Start over with another spare — or queue if none left.
                    if let Some(next) = self.free.pop() {
                        self.nodes[next.index()].set_state(NodeState::Starting);
                        let ready = now + self.config.provisioning.startup_time(1);
                        self.push_event(
                            ready,
                            PendingKind::NodeReplacement {
                                instance,
                                failed,
                                replacement: next,
                            },
                        );
                        out.push(SimEvent::ReplacementRetried {
                            instance,
                            node: next,
                            at: now,
                        });
                    } else {
                        self.deferred.push_back((instance, failed));
                        out.push(SimEvent::ReplacementDeferred {
                            instance,
                            node: failed,
                            at: now,
                        });
                    }
                    return;
                }
                self.nodes[replacement.index()].set_state(NodeState::Running);
                let inst = &mut self.instances[instance.index()];
                // Settle progress at the degraded rate, then restore
                // parallelism: in-flight queries speed back up from here.
                inst.advance(now);
                inst.replace_failed_node(failed, replacement);
                inst.version += 1;
                let version = inst.version;
                let next_check = inst.next_completion_time(now);
                if let Some(at) = next_check {
                    self.push_event(at, PendingKind::CompletionCheck { instance, version });
                }
                out.push(SimEvent::NodeReplaced {
                    instance,
                    node: replacement,
                    at: p.at,
                });
            }
            PendingKind::DeferredReplacementRetry => {
                while !self.free.is_empty() {
                    let Some((instance, failed)) = self.deferred.pop_front() else {
                        break;
                    };
                    let inst = &self.instances[instance.index()];
                    if inst.state() == InstanceState::Decommissioned
                        || inst.failed_node_count() == 0
                    {
                        continue; // stale entry: nothing left to repair
                    }
                    let Some(replacement) = self.free.pop() else {
                        // Unreachable (the loop condition holds the pool
                        // non-empty); requeue the entry rather than drop it.
                        self.deferred.push_front((instance, failed));
                        break;
                    };
                    self.nodes[replacement.index()].set_state(NodeState::Starting);
                    let ready = p.at + self.config.provisioning.startup_time(1);
                    self.push_event(
                        ready,
                        PendingKind::NodeReplacement {
                            instance,
                            failed,
                            replacement,
                        },
                    );
                    out.push(SimEvent::ReplacementRetried {
                        instance,
                        node: replacement,
                        at: p.at,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryTemplate;

    fn linear_template() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn ready_cluster(nodes: usize) -> (Cluster, InstanceId) {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(nodes));
        let id = c
            .provision_instance(nodes, &[(SimTenantId(0), 100.0), (SimTenantId(1), 100.0)])
            .unwrap();
        (c, id)
    }

    #[test]
    fn instant_provisioning_is_immediately_ready() {
        let (c, id) = ready_cluster(4);
        assert_eq!(c.instance(id).unwrap().state(), InstanceState::Ready);
        assert_eq!(c.free_nodes(), 0);
        assert_eq!(c.powered_nodes(), 4);
    }

    #[test]
    fn single_query_finishes_at_dedicated_latency() {
        let (mut c, id) = ready_cluster(4);
        let spec = QuerySpec::new(linear_template(), 100.0, SimTenantId(0));
        c.submit(id, spec).unwrap();
        // 600 ms/GB * 100 GB / 4 nodes = 15 000 ms.
        let events = c.run_until(SimTime::from_secs(100));
        assert_eq!(events.len(), 1);
        match events[0] {
            SimEvent::QueryCompleted(comp) => {
                assert_eq!(comp.latency, SimDuration::from_ms(15_000));
                assert!((comp.slowdown_vs_dedicated() - 1.0).abs() < 1e-6);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn two_concurrent_queries_run_twice_as_slow() {
        // Reproduces the 2T-CON observation of Figure 1.1a.
        let (mut c, id) = ready_cluster(4);
        let spec0 = QuerySpec::new(linear_template(), 100.0, SimTenantId(0));
        let spec1 = QuerySpec::new(linear_template(), 100.0, SimTenantId(1));
        c.submit(id, spec0).unwrap();
        c.submit(id, spec1).unwrap();
        let events = c.run_until(SimTime::from_secs(100));
        assert_eq!(events.len(), 2);
        for e in &events {
            match e {
                SimEvent::QueryCompleted(comp) => {
                    assert_eq!(comp.latency, SimDuration::from_ms(30_000));
                    assert!((comp.slowdown_vs_dedicated() - 2.0).abs() < 1e-6);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn sequential_queries_see_no_interference() {
        // Reproduces the 2T-SEQ observation of Figure 1.1a.
        let (mut c, id) = ready_cluster(4);
        let spec0 = QuerySpec::new(linear_template(), 100.0, SimTenantId(0));
        c.submit(id, spec0).unwrap();
        let e1 = c.run_until(SimTime::from_secs(100));
        let spec1 = QuerySpec::new(linear_template(), 100.0, SimTenantId(1));
        c.submit(id, spec1).unwrap();
        let e2 = c.run_until(SimTime::from_secs(200));
        for e in e1.iter().chain(e2.iter()) {
            if let SimEvent::QueryCompleted(comp) = e {
                assert_eq!(comp.latency, SimDuration::from_ms(15_000));
            }
        }
    }

    #[test]
    fn late_arrival_shares_fairly() {
        // q0 runs alone for 5 s, then shares with q1: piecewise PS schedule.
        let (mut c, id) = ready_cluster(4);
        let t = linear_template();
        c.submit(id, QuerySpec::new(t, 100.0, SimTenantId(0)))
            .unwrap(); // 15 s work
        c.run_until(SimTime::from_secs(5));
        c.submit(id, QuerySpec::new(t, 100.0, SimTenantId(1)))
            .unwrap(); // 15 s work
        let events = c.run_to_quiescence();
        let mut latencies: Vec<(SimTenantId, u64)> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::QueryCompleted(comp) => Some((comp.tenant, comp.latency.as_ms())),
                _ => None,
            })
            .collect();
        latencies.sort();
        // q0: 5 s solo (10 s work left) + 20 s shared = 25 s total.
        // q1: shares until q0 finishes at t=25 (has done 10 s of its 15 s),
        //     then 5 s solo: finishes at t=30, latency 25 s.
        assert_eq!(
            latencies,
            vec![(SimTenantId(0), 25_000), (SimTenantId(1), 25_000)]
        );
    }

    #[test]
    fn provisioning_delay_follows_the_model() {
        let mut c = Cluster::new(ClusterConfig::new(4));
        let id = c.provision_instance(2, &[(SimTenantId(0), 200.0)]).unwrap();
        assert!(matches!(
            c.instance(id).unwrap().state(),
            InstanceState::Provisioning { .. }
        ));
        let spec = QuerySpec::new(linear_template(), 200.0, SimTenantId(0));
        assert_eq!(c.submit(id, spec), Err(SimError::InstanceNotReady(id)));
        let events = c.run_until(SimTime::from_secs(40_000));
        assert_eq!(events.len(), 1);
        if let SimEvent::InstanceReady { at, .. } = events[0] {
            let expected = ClusterConfig::new(4).provisioning.provision_time(2, 200.0);
            assert_eq!(at, SimTime::ZERO + expected);
        } else {
            panic!("expected readiness event");
        }
        assert!(c.submit(id, spec).is_ok());
    }

    #[test]
    fn decommission_returns_nodes_and_aborts_queries() {
        let (mut c, id) = ready_cluster(4);
        c.submit(id, QuerySpec::new(linear_template(), 100.0, SimTenantId(0)))
            .unwrap();
        let aborted = c.decommission(id).unwrap();
        assert_eq!(aborted, 1);
        assert_eq!(c.free_nodes(), 4);
        assert!(c.run_to_quiescence().is_empty());
        assert_eq!(
            c.decommission(id),
            Err(SimError::InstanceDecommissioned(id))
        );
    }

    #[test]
    fn node_failure_degrades_then_replacement_restores() {
        // Replacement takes 60 s per node so we can observe the degraded
        // window; instance provisioning itself loads no data (0 GB) and
        // completes after the node start-up time.
        let provisioning = ProvisioningModel {
            startup_base_secs: 0.0,
            startup_secs_per_node: 60.0,
            load_base_secs: 0.0,
            load_secs_per_gb: 0.0,
        };
        let mut c = Cluster::new(ClusterConfig {
            total_nodes: 5,
            provisioning,
        });
        let id = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        c.run_to_quiescence();
        let victim = c.instance(id).unwrap().nodes()[0];
        c.inject_node_failure(victim, SimTime::from_secs(400))
            .unwrap();
        let events = c.run_until(SimTime::from_secs(400));
        assert!(matches!(
            events[0],
            SimEvent::NodeFailed { instance: Some(i), .. } if i == id
        ));
        // Degraded until the replacement node starts (60 s later).
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 3);
        let events = c.run_until(SimTime::from_secs(460));
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::NodeReplaced { instance, .. } if *instance == id)));
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 4);
    }

    #[test]
    fn failure_without_spare_defers_the_replacement() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(4));
        let id = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        let victim = c.instance(id).unwrap().nodes()[2];
        c.inject_node_failure(victim, SimTime::from_secs(1))
            .unwrap();
        let events = c.run_to_quiescence();
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 3);
        assert!(
            events.iter().any(|e| matches!(
                e,
                SimEvent::ReplacementDeferred { instance, node, .. }
                    if *instance == id && *node == victim
            )),
            "an empty pool must surface the deferral: {events:?}"
        );
        assert_eq!(c.deferred_replacements(), 1);
    }

    #[test]
    fn mid_query_failure_slows_the_query_in_flight() {
        // A solo 15 s query loses one of four nodes halfway through. The
        // remaining 7.5 s of full-parallelism work is paid down at 3/4
        // speed (10 s of wall time): latency 17.5 s — strictly between the
        // healthy 15 s and the fully degraded 20 s.
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(4));
        let id = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        c.submit(id, QuerySpec::new(linear_template(), 100.0, SimTenantId(0)))
            .unwrap();
        let victim = c.instance(id).unwrap().nodes()[0];
        c.inject_node_failure(victim, SimTime::from_ms(7_500))
            .unwrap();
        let events = c.run_to_quiescence();
        let comp = events
            .iter()
            .find_map(|e| match e {
                SimEvent::QueryCompleted(comp) => Some(*comp),
                _ => None,
            })
            .expect("the query must still complete");
        assert_eq!(comp.latency, SimDuration::from_ms(17_500));
        assert_eq!(comp.dedicated_latency, SimDuration::from_ms(15_000));
        assert_eq!(c.instance(id).unwrap().stats().degraded_ms, 10_000);
    }

    #[test]
    fn replacement_speeds_the_query_back_up() {
        // Same mid-flight failure, but a spare exists and joins 2 s later:
        // 7.5 s healthy + 2 s at 3/4 speed (1.5 s of work) + 6 s healthy
        // = 15.5 s latency.
        let provisioning = ProvisioningModel {
            startup_base_secs: 0.0,
            startup_secs_per_node: 2.0,
            load_base_secs: 0.0,
            load_secs_per_gb: 0.0,
        };
        let mut c = Cluster::new(ClusterConfig {
            total_nodes: 5,
            provisioning,
        });
        let id = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        c.run_to_quiescence();
        let t0 = c.now();
        c.submit(id, QuerySpec::new(linear_template(), 100.0, SimTenantId(0)))
            .unwrap();
        let victim = c.instance(id).unwrap().nodes()[0];
        c.inject_node_failure(victim, t0 + SimDuration::from_ms(7_500))
            .unwrap();
        let events = c.run_to_quiescence();
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::NodeReplaced { instance, .. } if *instance == id)));
        let comp = events
            .iter()
            .find_map(|e| match e {
                SimEvent::QueryCompleted(comp) => Some(*comp),
                _ => None,
            })
            .expect("the query must complete");
        assert_eq!(comp.latency, SimDuration::from_ms(15_500));
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 4);
        assert_eq!(c.instance(id).unwrap().stats().degraded_ms, 2_000);
    }

    #[test]
    fn deferred_replacement_drains_when_the_pool_refills() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(6));
        let a = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        let b = c.provision_instance(2, &[(SimTenantId(1), 50.0)]).unwrap();
        assert_eq!(c.free_nodes(), 0);
        let victim = c.instance(a).unwrap().nodes()[1];
        c.inject_node_failure(victim, SimTime::from_secs(1))
            .unwrap();
        c.run_until(SimTime::from_secs(2));
        assert_eq!(c.instance(a).unwrap().effective_nodes(), 3);
        assert_eq!(c.deferred_replacements(), 1);
        // Decommissioning B returns nodes to the pool; the queued repair
        // must now run (instantly, under the instant provisioning model).
        c.decommission(b).unwrap();
        let events = c.run_to_quiescence();
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::ReplacementRetried { instance, .. } if *instance == a)));
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::NodeReplaced { instance, .. } if *instance == a)));
        assert_eq!(c.instance(a).unwrap().effective_nodes(), 4);
        assert_eq!(c.deferred_replacements(), 0);
    }

    #[test]
    fn failed_starting_replacement_is_not_resurrected() {
        // The first replacement dies while still starting; the cluster must
        // notice at join time and start a second spare instead of waving the
        // dead node through.
        let provisioning = ProvisioningModel {
            startup_base_secs: 0.0,
            startup_secs_per_node: 60.0,
            load_base_secs: 0.0,
            load_secs_per_gb: 0.0,
        };
        let mut c = Cluster::new(ClusterConfig {
            total_nodes: 6,
            provisioning,
        });
        let id = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        c.run_to_quiescence();
        let victim = c.instance(id).unwrap().nodes()[0];
        c.inject_node_failure(victim, SimTime::from_secs(300))
            .unwrap();
        // First replacement (node 4) starts at t=300, would join at t=360;
        // kill it at t=330 while it is still starting.
        c.inject_node_failure(NodeId(4), SimTime::from_secs(330))
            .unwrap();
        let events = c.run_to_quiescence();
        assert!(events.iter().any(|e| matches!(
            e,
            SimEvent::ReplacementRetried { instance, node, .. }
                if *instance == id && *node == NodeId(5)
        )));
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 4);
        assert_eq!(c.failed_nodes(), 2);
        assert!(!c.instance(id).unwrap().nodes().contains(&NodeId(4)));
    }

    #[test]
    fn submit_requires_hosted_tenant() {
        let (mut c, id) = ready_cluster(4);
        let spec = QuerySpec::new(linear_template(), 100.0, SimTenantId(42));
        assert_eq!(
            c.submit(id, spec),
            Err(SimError::TenantNotHosted {
                instance: id,
                tenant: SimTenantId(42)
            })
        );
    }

    #[test]
    fn load_tenant_makes_tenant_queryable_after_delay() {
        let mut c = Cluster::new(ClusterConfig::new(8));
        let id = c.provision_instance(2, &[(SimTenantId(0), 100.0)]).unwrap();
        c.run_to_quiescence();
        let spec = QuerySpec::new(linear_template(), 100.0, SimTenantId(7));
        assert!(c.submit(id, spec).is_err());
        c.load_tenant(id, SimTenantId(7), 100.0).unwrap();
        let events = c.run_to_quiescence();
        assert!(events.iter().any(
            |e| matches!(e, SimEvent::TenantLoaded { tenant, .. } if *tenant == SimTenantId(7))
        ));
        assert!(c.submit(id, spec).is_ok());
    }

    #[test]
    fn drop_tenant_reclaims_replica_space() {
        let (mut c, id) = ready_cluster(4);
        assert!((c.instance(id).unwrap().total_data_gb() - 200.0).abs() < 1e-9);
        let freed = c.drop_tenant(id, SimTenantId(1)).unwrap();
        assert!((freed - 100.0).abs() < 1e-9);
        let inst = c.instance(id).unwrap();
        assert!(!inst.hosts(SimTenantId(1)));
        assert!(inst.hosts(SimTenantId(0)));
        assert!((inst.total_data_gb() - 100.0).abs() < 1e-9);
        // The dropped tenant can no longer submit here...
        let spec = QuerySpec::new(linear_template(), 100.0, SimTenantId(1));
        assert_eq!(
            c.submit(id, spec),
            Err(SimError::TenantNotHosted {
                instance: id,
                tenant: SimTenantId(1)
            })
        );
        // ...but the remaining tenant can.
        let spec = QuerySpec::new(linear_template(), 100.0, SimTenantId(0));
        assert!(c.submit(id, spec).is_ok());
    }

    #[test]
    fn drop_tenant_rejects_unknown_targets() {
        let (mut c, id) = ready_cluster(4);
        assert_eq!(
            c.drop_tenant(InstanceId(9), SimTenantId(0)),
            Err(SimError::UnknownInstance(InstanceId(9)))
        );
        assert_eq!(
            c.drop_tenant(id, SimTenantId(42)),
            Err(SimError::TenantNotHosted {
                instance: id,
                tenant: SimTenantId(42)
            })
        );
    }

    #[test]
    fn drop_tenant_twice_is_an_error_not_a_noop() {
        let (mut c, id) = ready_cluster(4);
        assert!(c.drop_tenant(id, SimTenantId(1)).is_ok());
        assert_eq!(
            c.drop_tenant(id, SimTenantId(1)),
            Err(SimError::TenantNotHosted {
                instance: id,
                tenant: SimTenantId(1)
            })
        );
        // The double drop did not disturb the surviving replica accounting.
        assert!((c.instance(id).unwrap().total_data_gb() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn drop_tenant_leaves_running_queries_alone() {
        let (mut c, id) = ready_cluster(4);
        let spec = QuerySpec::new(linear_template(), 100.0, SimTenantId(1));
        c.submit(id, spec).unwrap();
        c.drop_tenant(id, SimTenantId(1)).unwrap();
        // The in-flight query still completes (hosting is a submit-time
        // check; the cutover discipline relies on this).
        let events = c.run_to_quiescence();
        assert!(events
            .iter()
            .any(|e| matches!(e, SimEvent::QueryCompleted(q) if q.tenant == SimTenantId(1))));
    }

    #[test]
    fn hibernated_node_failure_shrinks_the_pool() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(3));
        c.inject_node_failure(NodeId(2), SimTime::from_secs(1))
            .unwrap();
        let events = c.run_to_quiescence();
        assert!(matches!(
            events[0],
            SimEvent::NodeFailed { instance: None, .. }
        ));
        assert_eq!(c.free_nodes(), 2);
        // The failed node can no longer be provisioned.
        let id = c.provision_instance(2, &[(SimTenantId(0), 1.0)]).unwrap();
        assert!(!c.instance(id).unwrap().nodes().contains(&NodeId(2)));
    }

    #[test]
    fn double_failure_of_one_node_is_idempotent() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(4));
        let id = c.provision_instance(2, &[(SimTenantId(0), 1.0)]).unwrap();
        let victim = c.instance(id).unwrap().nodes()[0];
        c.inject_node_failure(victim, SimTime::from_secs(1))
            .unwrap();
        c.inject_node_failure(victim, SimTime::from_secs(2))
            .unwrap();
        let events = c.run_to_quiescence();
        let failures = events
            .iter()
            .filter(|e| matches!(e, SimEvent::NodeFailed { .. }))
            .count();
        assert_eq!(failures, 1, "the second failure of a dead node is a no-op");
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 2, "replaced");
    }

    #[test]
    fn failures_cannot_be_scheduled_in_the_past() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(2));
        c.run_until(SimTime::from_secs(100));
        assert_eq!(
            c.inject_node_failure(NodeId(0), SimTime::from_secs(50)),
            Err(SimError::TimeInPast)
        );
        assert_eq!(
            c.inject_node_failure(NodeId(9), SimTime::from_secs(200)),
            Err(SimError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn insufficient_nodes_is_reported() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(2));
        assert_eq!(
            c.provision_instance(4, &[]),
            Err(SimError::InsufficientNodes {
                requested: 4,
                available: 2
            })
        );
    }

    #[test]
    fn cancelled_queries_never_complete() {
        let (mut c, id) = ready_cluster(2);
        let t = linear_template();
        let q0 = c
            .submit(id, QuerySpec::new(t, 10.0, SimTenantId(0)))
            .unwrap();
        let q1 = c
            .submit(id, QuerySpec::new(t, 10.0, SimTenantId(1)))
            .unwrap();
        c.run_until(SimTime::from_secs(1));
        let (spec, submitted) = c.cancel_query(id, q0).unwrap();
        assert_eq!(spec.tenant, SimTenantId(0));
        assert_eq!(submitted, SimTime::ZERO);
        let events = c.run_to_quiescence();
        let completed: Vec<QueryId> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::QueryCompleted(comp) => Some(comp.query),
                _ => None,
            })
            .collect();
        assert_eq!(completed, vec![q1], "only the surviving query completes");
        // The survivor speeds back up to full rate after the cancel:
        // 1 s shared (0.5 s of service) then solo for the rest.
        if let SimEvent::QueryCompleted(comp) = events[0] {
            // work = 600*10/2 nodes = 3 s; 0.5 s done at cancel (shared);
            // the remaining 2.5 s run solo: finishes at 3.5 s.
            assert_eq!(comp.finished, SimTime::from_ms(3_500));
        }
        assert_eq!(c.cancel_query(id, q0), Err(SimError::UnknownQuery(q0)));
    }

    #[test]
    fn instance_stats_track_busy_time_and_slowdowns() {
        let (mut c, id) = ready_cluster(4);
        let t = linear_template();
        // Two concurrent 15 s queries: busy 30 s, concurrency integral 60 s·q,
        // each with slowdown 2.0 vs dedicated.
        c.submit(id, QuerySpec::new(t, 100.0, SimTenantId(0)))
            .unwrap();
        c.submit(id, QuerySpec::new(t, 100.0, SimTenantId(1)))
            .unwrap();
        c.run_to_quiescence();
        let stats = c.instance(id).unwrap().stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.busy_ms, 30_000);
        assert_eq!(stats.concurrency_ms, 60_000);
        assert_eq!(stats.max_concurrency, 2);
        assert!((stats.mean_slowdown() - 2.0).abs() < 1e-6);
        assert!((stats.slowdown_max - 2.0).abs() < 1e-6);
    }

    #[test]
    fn instance_stats_count_cancellations() {
        let (mut c, id) = ready_cluster(2);
        let t = linear_template();
        let q0 = c
            .submit(id, QuerySpec::new(t, 10.0, SimTenantId(0)))
            .unwrap();
        c.submit(id, QuerySpec::new(t, 10.0, SimTenantId(1)))
            .unwrap();
        c.run_until(SimTime::from_secs(1));
        c.cancel_query(id, q0).unwrap();
        c.run_to_quiescence();
        let stats = c.instance(id).unwrap().stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(
            stats.submitted,
            stats.completed + stats.cancelled,
            "submissions reconcile with completions + cancellations"
        );
    }

    #[test]
    fn events_come_out_in_chronological_order() {
        let (mut c, id) = ready_cluster(2);
        let t = linear_template();
        // Three queries with distinct finish times.
        c.submit(id, QuerySpec::new(t, 10.0, SimTenantId(0)))
            .unwrap();
        c.submit(id, QuerySpec::new(t, 20.0, SimTenantId(1)))
            .unwrap();
        c.run_until(SimTime::from_secs(2));
        c.submit(id, QuerySpec::new(t, 5.0, SimTenantId(0)))
            .unwrap();
        let events = c.run_to_quiescence();
        let times: Vec<u64> = events.iter().map(|e| e.at().as_ms()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
