//! Simulated time.
//!
//! The simulator runs on a virtual clock with millisecond resolution. All
//! experiments in the paper span between a few seconds (a single query) and 30
//! days (a full tenant-log horizon), so a `u64` millisecond counter gives both
//! enough range (584 million years) and enough resolution for the 0.1 s epoch
//! sweep of Figure 7.1.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, measured in milliseconds since the
/// start of the simulation.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ms` milliseconds after the simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One millisecond.
    pub const MILLISECOND: SimDuration = SimDuration(1);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1_000);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60_000);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600_000);
    /// One (simulated) day.
    pub const DAY: SimDuration = SimDuration(86_400_000);

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a duration from a float second count, rounding to the nearest
    /// millisecond. Negative and non-finite inputs map to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(crate::convert::round_ms_f64(secs * 1000.0))
    }

    /// Creates a duration from a float millisecond count, rounding to the
    /// nearest millisecond. Negative and non-finite inputs map to zero.
    pub fn from_ms_f64(ms: f64) -> Self {
        SimDuration(crate::convert::round_ms_f64(ms))
    }

    /// Milliseconds in this duration.
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest millisecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_ms_f64(self.0 as f64 * factor)
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // Mirrors std::time::Duration: `-` on an underflow is a programmer
        // error and panics (there is a #[should_panic] test pinning this);
        // fallible call sites use `saturating_sub` instead.
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"), // lint: allow(panic)
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms < 1_000 {
            write!(f, "{ms}ms")
        } else if ms < 60_000 {
            write!(f, "{:.1}s", ms as f64 / 1000.0)
        } else if ms < 3_600_000 {
            write!(f, "{:.1}min", ms as f64 / 60_000.0)
        } else if ms < 86_400_000 {
            write!(f, "{:.2}h", ms as f64 / 3_600_000.0)
        } else {
            write!(f, "{:.2}d", ms as f64 / 86_400_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10) + SimDuration::from_ms(500);
        assert_eq!(t.as_ms(), 10_500);
        assert_eq!(t.saturating_since(SimTime::from_secs(10)).as_ms(), 500);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(20)),
            SimDuration::ZERO
        );
        assert_eq!(t.checked_since(SimTime::from_secs(20)), None);
    }

    #[test]
    fn duration_constants_are_consistent() {
        assert_eq!(SimDuration::SECOND.as_ms(), 1000);
        assert_eq!(SimDuration::MINUTE.as_ms(), 60 * 1000);
        assert_eq!(SimDuration::HOUR.as_ms(), 60 * 60 * 1000);
        assert_eq!(SimDuration::DAY.as_ms(), 24 * 60 * 60 * 1000);
    }

    #[test]
    fn float_construction_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.2345).as_ms(), 1235);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ms_f64(0.6).as_ms(), 1);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimDuration::from_secs(10).mul_f64(1.5).as_ms(), 15_000);
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_humane_units() {
        assert_eq!(SimDuration::from_ms(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.0s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.5min");
        assert_eq!(SimDuration::from_secs(7200).to_string(), "2.00h");
        assert_eq!((SimDuration::DAY + SimDuration::DAY).to_string(), "2.00d");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_ms(1) - SimDuration::from_ms(2);
    }
}
