//! Queries and query templates.
//!
//! The consolidation study never inspects query *answers* — only when queries
//! start and finish. A template therefore carries exactly the two parameters
//! that determine an analytical query's latency profile on an MPPDB:
//!
//! * `cost_ms_per_gb` — dedicated single-node processing cost per gigabyte of
//!   tenant data touched. Analytical workloads are I/O bound (Chapter 1), so
//!   cost scales linearly with data size.
//! * `serial_fraction` — the Amdahl serial fraction. Zero gives a
//!   linear-scale-out query like TPC-H Q1 in the paper's setting
//!   (Figure 1.1a); a positive fraction gives a non-linear-scale-out query
//!   like TPC-H Q19 (Figure 1.1c).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a query template (e.g. "TPC-H Q1" is one template).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TemplateId(pub u32);

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tmpl{}", self.0)
    }
}

/// Identifier of a submitted query instance, unique within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a tenant at the simulator level.
///
/// The simulator only needs tenant identity to account for which instance
/// hosts whose data; all tenant semantics (requested nodes, SLAs, grouping)
/// live in the `thrifty` crate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SimTenantId(pub u32);

impl fmt::Display for SimTenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The latency profile of one query template.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Template identity.
    pub id: TemplateId,
    /// Dedicated single-node cost per GB of data, in milliseconds.
    pub cost_ms_per_gb: f64,
    /// Amdahl serial fraction in `[0, 1]`. 0 = perfectly linear scale-out.
    pub serial_fraction: f64,
}

impl QueryTemplate {
    /// Creates a template, validating parameter ranges.
    ///
    /// # Panics
    /// Panics if `cost_ms_per_gb` is not finite and positive, or if
    /// `serial_fraction` lies outside `[0, 1]`.
    pub fn new(id: TemplateId, cost_ms_per_gb: f64, serial_fraction: f64) -> Self {
        assert!(
            cost_ms_per_gb.is_finite() && cost_ms_per_gb > 0.0,
            "cost_ms_per_gb must be finite and positive, got {cost_ms_per_gb}"
        );
        assert!(
            (0.0..=1.0).contains(&serial_fraction),
            "serial_fraction must lie in [0, 1], got {serial_fraction}"
        );
        QueryTemplate {
            id,
            cost_ms_per_gb,
            serial_fraction,
        }
    }

    /// Whether the template scales out (approximately) linearly.
    pub fn is_linear_scale_out(&self) -> bool {
        self.serial_fraction == 0.0
    }
}

/// A concrete query to execute: a template applied to a tenant's dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The latency profile.
    pub template: QueryTemplate,
    /// Total size of the data the query touches, in GB. In the paper's
    /// setting each tenant node holds a 100 GB partition, so a tenant that
    /// requested `n` nodes queries `100 n` GB.
    pub data_gb: f64,
    /// The submitting tenant.
    pub tenant: SimTenantId,
}

impl QuerySpec {
    /// Creates a query spec.
    ///
    /// # Panics
    /// Panics if `data_gb` is not finite and positive.
    pub fn new(template: QueryTemplate, data_gb: f64, tenant: SimTenantId) -> Self {
        assert!(
            data_gb.is_finite() && data_gb > 0.0,
            "data_gb must be finite and positive, got {data_gb}"
        );
        QuerySpec {
            template,
            data_gb,
            tenant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_construction_validates() {
        let t = QueryTemplate::new(TemplateId(1), 500.0, 0.0);
        assert!(t.is_linear_scale_out());
        let t2 = QueryTemplate::new(TemplateId(2), 500.0, 0.3);
        assert!(!t2.is_linear_scale_out());
    }

    #[test]
    #[should_panic(expected = "serial_fraction")]
    fn template_rejects_bad_fraction() {
        let _ = QueryTemplate::new(TemplateId(1), 500.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "cost_ms_per_gb")]
    fn template_rejects_bad_cost() {
        let _ = QueryTemplate::new(TemplateId(1), 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "data_gb")]
    fn spec_rejects_bad_data_size() {
        let t = QueryTemplate::new(TemplateId(1), 500.0, 0.0);
        let _ = QuerySpec::new(t, -1.0, SimTenantId(0));
    }
}
