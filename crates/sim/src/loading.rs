//! Provisioning model: node start-up, MPPDB initialization, and bulk loading.
//!
//! Calibrated to Table 5.1 of the paper, which measured a commercial MPPDB on
//! EC2 Extra-Large instances:
//!
//! | Tenant / data size | node start + MPPDB init | bulk load |
//! |---|---|---|
//! | 2-node / 200 GB  | 462 s  | 10 172 s |
//! | 4-node / 400 GB  | 850 s  | 20 302 s |
//! | 6-node / 600 GB  | 1248 s | 30 121 s |
//! | 8-node / 800 GB  | 1504 s | 40 853 s |
//! | 10-node / 1 TB   | 1779 s | 50 446 s |
//!
//! Linear fits over those five points give
//! `startup(n) ≈ 160 s + 165 s · n` and
//! `load(gb) ≈ 103.4 s + 50.3 s · gb` (≈ 1.2 GB/min, the rate the paper
//! quotes). Both are linear — the key property the lightweight elastic
//! scaling design exploits: loading *only the over-active tenant's* data is
//! proportionally cheaper than reloading the whole tenant-group.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Linear provisioning-time model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningModel {
    /// Fixed start-up overhead in seconds (cluster orchestration, MPPDB
    /// catalog initialization).
    pub startup_base_secs: f64,
    /// Additional start-up seconds per node.
    pub startup_secs_per_node: f64,
    /// Fixed bulk-load overhead in seconds.
    pub load_base_secs: f64,
    /// Bulk-load seconds per GB of tenant data.
    pub load_secs_per_gb: f64,
}

impl ProvisioningModel {
    /// The model fitted to Table 5.1.
    pub fn paper_calibrated() -> Self {
        ProvisioningModel {
            startup_base_secs: 160.0,
            startup_secs_per_node: 165.0,
            load_base_secs: 103.4,
            load_secs_per_gb: 50.3,
        }
    }

    /// An instantaneous model, useful in unit tests that do not study
    /// provisioning latency.
    pub fn instant() -> Self {
        ProvisioningModel {
            startup_base_secs: 0.0,
            startup_secs_per_node: 0.0,
            load_base_secs: 0.0,
            load_secs_per_gb: 0.0,
        }
    }

    /// Time to start `nodes` machines and initialize an MPPDB instance on
    /// them (column 2 of Table 5.1).
    pub fn startup_time(&self, nodes: usize) -> SimDuration {
        SimDuration::from_secs_f64(
            self.startup_base_secs + self.startup_secs_per_node * nodes as f64,
        )
    }

    /// Time to bulk load `gb` gigabytes of tenant data (column 3 of
    /// Table 5.1). Zero bytes load instantly (no fixed overhead is paid when
    /// there is nothing to load).
    pub fn bulk_load_time(&self, gb: f64) -> SimDuration {
        if gb <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.load_base_secs + self.load_secs_per_gb * gb)
    }

    /// Total time from "provision this MPPDB for these tenants" to "ready to
    /// serve queries": start-up followed by a bulk load of all tenants' data.
    pub fn provision_time(&self, nodes: usize, total_gb: f64) -> SimDuration {
        self.startup_time(nodes) + self.bulk_load_time(total_gb)
    }
}

impl Default for ProvisioningModel {
    fn default() -> Self {
        ProvisioningModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The five rows of Table 5.1.
    const TABLE_5_1: [(usize, f64, f64, f64); 5] = [
        (2, 200.0, 462.0, 10_172.0),
        (4, 400.0, 850.0, 20_302.0),
        (6, 600.0, 1_248.0, 30_121.0),
        (8, 800.0, 1_504.0, 40_853.0),
        (10, 1_000.0, 1_779.0, 50_446.0),
    ];

    #[test]
    fn startup_matches_table_5_1_within_10_percent() {
        let m = ProvisioningModel::paper_calibrated();
        for (nodes, _, startup_s, _) in TABLE_5_1 {
            let predicted = m.startup_time(nodes).as_secs_f64();
            let err = (predicted - startup_s).abs() / startup_s;
            assert!(
                err < 0.10,
                "{nodes}-node startup: predicted {predicted:.0}s, paper {startup_s:.0}s"
            );
        }
    }

    #[test]
    fn bulk_load_matches_table_5_1_within_5_percent() {
        let m = ProvisioningModel::paper_calibrated();
        for (_, gb, _, load_s) in TABLE_5_1 {
            let predicted = m.bulk_load_time(gb).as_secs_f64();
            let err = (predicted - load_s).abs() / load_s;
            assert!(
                err < 0.05,
                "{gb} GB load: predicted {predicted:.0}s, paper {load_s:.0}s"
            );
        }
    }

    #[test]
    fn loading_dominates_startup_as_in_the_paper() {
        // The paper's elastic-scaling argument: "data loading time dominates
        // the times of starting the machines".
        let m = ProvisioningModel::paper_calibrated();
        for (nodes, gb, _, _) in TABLE_5_1 {
            assert!(m.bulk_load_time(gb) > m.startup_time(nodes).mul_f64(5.0));
        }
    }

    #[test]
    fn load_rate_is_about_1_2_gb_per_minute() {
        let m = ProvisioningModel::paper_calibrated();
        let rate_gb_per_min = 1000.0 / (m.bulk_load_time(1000.0).as_secs_f64() / 60.0);
        assert!(
            (1.1..=1.3).contains(&rate_gb_per_min),
            "rate {rate_gb_per_min}"
        );
    }

    #[test]
    fn zero_bytes_load_instantly() {
        let m = ProvisioningModel::paper_calibrated();
        assert_eq!(m.bulk_load_time(0.0), SimDuration::ZERO);
    }

    #[test]
    fn instant_model_is_instant() {
        let m = ProvisioningModel::instant();
        assert_eq!(m.provision_time(32, 3200.0), SimDuration::ZERO);
    }
}
