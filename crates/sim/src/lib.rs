//! # mppdb-sim — a simulated shared-process MPPDB cluster
//!
//! The substrate of the Thrifty MPPDB-as-a-Service reproduction
//! (*Parallel Analytics as a Service*, SIGMOD 2013). The paper evaluated on a
//! commercial MPPDB running on Amazon EC2; this crate replaces that testbed
//! with a deterministic discrete-event simulator that reproduces the
//! empirical regularities every Thrifty mechanism depends on:
//!
//! * **Scale-out** (Figures 1.1a/1.1c): query latency follows an Amdahl
//!   model — linear-scale-out queries (TPC-H Q1 in the paper's setting)
//!   speed up proportionally with nodes; non-linear ones (Q19) saturate.
//!   See [`cost`].
//! * **Concurrency** (Figure 1.1a, `xT-CON` lines): analytical queries are
//!   I/O bound, so `k` concurrent queries on one shared-process instance
//!   each run `k`-fold slower. The engine implements this as processor
//!   sharing ([`instance`]).
//! * **Provisioning cost** (Table 5.1): node start-up grows linearly with
//!   node count, bulk loading linearly with data size (≈ 1.2 GB/min). This
//!   is what makes whole-group elastic scaling heavyweight and
//!   tenant-selective scaling "lightweight". See [`loading`].
//! * **High availability** (Chapter 4.4): instances stay online through node
//!   failure at reduced parallelism; replacements are started from the
//!   hibernated pool. See [`failure`].
//!
//! The top-level type is [`cluster::Cluster`]; drive it with
//! [`cluster::Cluster::run_until`] and react to [`cluster::SimEvent`]s.
//!
//! ```
//! use mppdb_sim::prelude::*;
//!
//! let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(4));
//! let tenant = SimTenantId(0);
//! let mppdb = cluster.provision_instance(4, &[(tenant, 100.0)]).unwrap();
//! let q1 = QueryTemplate::new(TemplateId(1), 600.0, 0.0); // linear scale-out
//! cluster.submit(mppdb, QuerySpec::new(q1, 100.0, tenant)).unwrap();
//! let events = cluster.run_to_quiescence();
//! assert!(matches!(events[0], SimEvent::QueryCompleted(_)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code reports failures through `SimError`; panicking escapes are
// caught twice — by thrifty-lint rule L4 and by clippy (tests are exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cluster;
pub mod convert;
pub mod cost;
pub mod error;
pub mod failure;
pub mod instance;
pub mod loading;
pub mod metrics;
pub mod node;
pub mod query;
pub mod time;

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterConfig, QueryCompletion, SimEvent};
    pub use crate::cost::{isolated_latency_ms, speedup};
    pub use crate::error::{SimError, SimResult};
    pub use crate::failure::FailurePlan;
    pub use crate::instance::{InstanceId, InstanceState, InstanceStats, MppdbInstance};
    pub use crate::loading::ProvisioningModel;
    pub use crate::metrics::{LatencyStats, NormalizedPerf};
    pub use crate::node::{Node, NodeId, NodeState};
    pub use crate::query::{QueryId, QuerySpec, QueryTemplate, SimTenantId, TemplateId};
    pub use crate::time::{SimDuration, SimTime};
}
