//! MPPDB instances and the processor-sharing execution discipline.
//!
//! An instance models one shared-process MPPDB running on a group of nodes.
//! Shared-process multi-tenancy incurs little per-tenant overhead (the paper
//! cites Relational Cloud for this), but analytical queries are I/O bound, so
//! `k` queries executing concurrently on the same instance each progress at
//! `1/k` of the dedicated rate — *processor sharing*. This reproduces the
//! `xT-CON` measurements of Figure 1.1a: two concurrent Q1 instances finish
//! 2× slower, four finish 4× slower, while sequential submissions (`xT-SEQ`)
//! are unaffected.
//!
//! Node failures degrade the whole discipline (Chapter 4.4): an instance
//! with failed nodes awaiting replacement delivers only
//! `effective_nodes / nodes` of its aggregate throughput, so every query —
//! including those already in flight — slows down the instant a node dies
//! and speeds back up when the replacement joins. Progress is bookkept as
//! *full-parallelism* work paid down at the current degradation factor.

use crate::convert;
use crate::node::NodeId;
use crate::query::{QueryId, QuerySpec, SimTenantId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an MPPDB instance within a [`crate::cluster::Cluster`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// The instance's slot in the cluster's instance table (lossless).
    pub fn index(self) -> usize {
        convert::index_u32(self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MPPDB{}", self.0)
    }
}

/// Lifecycle state of an MPPDB instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InstanceState {
    /// Nodes are starting and tenant data is being bulk loaded.
    Provisioning {
        /// When the instance becomes ready to serve queries.
        ready_at: SimTime,
    },
    /// Serving queries.
    Ready,
    /// Shut down; nodes returned to the hibernated pool.
    Decommissioned,
}

/// A query currently executing on an instance.
#[derive(Clone, Debug)]
pub(crate) struct RunningQuery {
    pub id: QueryId,
    pub spec: QuerySpec,
    pub submitted: SimTime,
    /// Milliseconds of *full-parallelism dedicated* work still owed to this
    /// query. Degradation never rewrites this figure; it slows the rate at
    /// which [`MppdbInstance::advance`] pays it down.
    pub remaining_ms: f64,
    /// Dedicated latency on this instance at submission time, at the
    /// degradation level in effect then (the slowdown baseline).
    pub dedicated_ms: f64,
}

/// Work remaining below this threshold counts as finished. Guards against
/// floating-point residue after repeated processor-sharing updates.
const FINISH_EPSILON_MS: f64 = 1e-6;

/// Always-on utilization accounting of one instance, accrued as the
/// processor-sharing clock advances. All values derive from simulated
/// time, so they are deterministic across replays; maintaining them is a
/// handful of integer additions per processor-sharing advance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Simulated ms during which at least one query was running.
    pub busy_ms: u64,
    /// Integral of concurrency over simulated time (ms · queries); divide
    /// by elapsed time for the time-averaged queue depth.
    pub concurrency_ms: u64,
    /// Queries submitted to this instance.
    pub submitted: u64,
    /// Queries that ran to completion here.
    pub completed: u64,
    /// Queries cancelled (migration or decommission) before completing.
    pub cancelled: u64,
    /// Highest concurrency ever observed.
    pub max_concurrency: u32,
    /// Simulated ms spent degraded (at least one failed node awaiting
    /// replacement), accrued as of the last processor-sharing advance; use
    /// [`MppdbInstance::degraded_ms_at`] for an up-to-the-instant figure.
    pub degraded_ms: u64,
    /// Sum over completed queries of `achieved / dedicated` latency.
    pub slowdown_sum: f64,
    /// Worst `achieved / dedicated` ratio among completed queries.
    pub slowdown_max: f64,
}

impl InstanceStats {
    /// Mean slowdown vs dedicated execution (1.0 when nothing completed).
    pub fn mean_slowdown(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slowdown_sum / self.completed as f64
        }
    }
}

/// One shared-process MPPDB running on a group of cluster nodes.
#[derive(Clone, Debug)]
pub struct MppdbInstance {
    id: InstanceId,
    nodes: Vec<NodeId>,
    failed_nodes: usize,
    state: InstanceState,
    /// Hosted tenants and the size (GB) of their loaded data.
    hosted: BTreeMap<SimTenantId, f64>,
    pub(crate) running: Vec<RunningQuery>,
    /// Last virtual instant at which `running[*].remaining_ms` was updated.
    last_advance: SimTime,
    /// When the instance was created (provisioning start).
    created: SimTime,
    /// Monotonic counter invalidating stale completion-check events.
    pub(crate) version: u64,
    /// Lifetime utilization accounting.
    pub(crate) stats: InstanceStats,
}

impl MppdbInstance {
    pub(crate) fn new(
        id: InstanceId,
        nodes: Vec<NodeId>,
        hosted: BTreeMap<SimTenantId, f64>,
        ready_at: SimTime,
        created: SimTime,
    ) -> Self {
        assert!(!nodes.is_empty(), "an instance needs at least one node");
        MppdbInstance {
            id,
            nodes,
            failed_nodes: 0,
            state: if ready_at <= created {
                InstanceState::Ready
            } else {
                InstanceState::Provisioning { ready_at }
            },
            hosted,
            running: Vec::new(),
            last_advance: created,
            created,
            version: 0,
            stats: InstanceStats::default(),
        }
    }

    /// The instance's identifier.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// Simulated instant at which the instance was created (provisioning
    /// start).
    pub fn created(&self) -> SimTime {
        self.created
    }

    /// Lifetime utilization accounting.
    pub fn stats(&self) -> &InstanceStats {
        &self.stats
    }

    /// The node group backing this instance.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Degree of parallelism currently delivered: total nodes minus failed
    /// nodes awaiting replacement. Commercial MPPDBs stay online through node
    /// failures (Chapter 4.4), at reduced parallelism.
    pub fn effective_nodes(&self) -> usize {
        self.nodes.len().saturating_sub(self.failed_nodes).max(1)
    }

    /// Number of failed nodes currently awaiting replacement.
    pub fn failed_node_count(&self) -> usize {
        self.failed_nodes
    }

    /// Fraction of the instance's full-parallelism throughput currently
    /// delivered: `effective_nodes / nodes` (1.0 when healthy, never 0).
    /// Analytical queries are I/O bound, so losing a node removes exactly
    /// that node's share of aggregate scan bandwidth.
    pub fn degradation_factor(&self) -> f64 {
        self.effective_nodes() as f64 / self.nodes.len() as f64
    }

    /// Degraded-mode time accrued by `now`, including the span since the
    /// last processor-sharing advance if the instance is degraded right
    /// now. A decommissioned instance stops accruing (its accounting was
    /// settled at decommission time).
    pub fn degraded_ms_at(&self, now: SimTime) -> u64 {
        let mut total = self.stats.degraded_ms;
        if self.failed_nodes > 0 && self.state != InstanceState::Decommissioned {
            total += now.saturating_since(self.last_advance).as_ms();
        }
        total
    }

    /// Current lifecycle state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// Whether the instance is ready and currently executing no queries —
    /// the "free" predicate of the TDD query-routing algorithm (Algorithm 1).
    pub fn is_free(&self) -> bool {
        self.state == InstanceState::Ready && self.running.is_empty()
    }

    /// Number of concurrently executing queries.
    pub fn concurrency(&self) -> usize {
        self.running.len()
    }

    /// Tenants whose data is loaded on this instance, with data sizes in GB.
    pub fn hosted_tenants(&self) -> impl Iterator<Item = (SimTenantId, f64)> + '_ {
        self.hosted.iter().map(|(&t, &gb)| (t, gb))
    }

    /// Whether `tenant`'s data is loaded here.
    pub fn hosts(&self, tenant: SimTenantId) -> bool {
        self.hosted.contains_key(&tenant)
    }

    /// Total GB of tenant data loaded on this instance.
    pub fn total_data_gb(&self) -> f64 {
        self.hosted.values().sum()
    }

    /// Whether this instance currently executes a query of `tenant` — the
    /// stickiness predicate of Algorithm 1 line 1.
    pub fn serves_tenant(&self, tenant: SimTenantId) -> bool {
        self.running.iter().any(|q| q.spec.tenant == tenant)
    }

    pub(crate) fn set_state(&mut self, state: InstanceState) {
        self.state = state;
    }

    pub(crate) fn add_hosted(&mut self, tenant: SimTenantId, gb: f64) {
        *self.hosted.entry(tenant).or_insert(0.0) += gb;
    }

    pub(crate) fn remove_hosted(&mut self, tenant: SimTenantId) -> Option<f64> {
        self.hosted.remove(&tenant)
    }

    pub(crate) fn mark_node_failed(&mut self) {
        self.failed_nodes += 1;
    }

    pub(crate) fn replace_failed_node(&mut self, old: NodeId, new: NodeId) {
        if let Some(slot) = self.nodes.iter_mut().find(|n| **n == old) {
            *slot = new;
        }
        self.failed_nodes = self.failed_nodes.saturating_sub(1);
    }

    /// Advances the processor-sharing clock to `now`, decrementing each
    /// running query's remaining dedicated work by `dt · factor / k`, where
    /// `factor` is the [degradation factor](Self::degradation_factor). The
    /// caller is responsible for invoking this *before* any change to the
    /// failed-node count, so the elapsed span is charged at the rate that
    /// actually applied to it.
    pub(crate) fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance).as_ms();
        self.last_advance = now;
        if dt == 0 {
            return;
        }
        if self.failed_nodes > 0 {
            self.stats.degraded_ms += dt;
        }
        let k = self.running.len();
        if k == 0 {
            return;
        }
        self.stats.busy_ms += dt;
        self.stats.concurrency_ms += dt * convert::count_u64(k);
        let share = dt as f64 * self.degradation_factor() / k as f64;
        for q in &mut self.running {
            q.remaining_ms = (q.remaining_ms - share).max(0.0);
        }
    }

    /// The virtual instant at which the next running query completes, given
    /// no further arrivals *and no degradation change*. Must be called right
    /// after [`Self::advance`]; node failures and replacements re-rate by
    /// bumping `version` and rescheduling through this method.
    pub(crate) fn next_completion_time(&self, now: SimTime) -> Option<SimTime> {
        let k = self.running.len();
        let min_rem = self
            .running
            .iter()
            .map(|q| q.remaining_ms)
            // lint: allow(float-merge) — min is order-insensitive.
            .fold(f64::INFINITY, f64::min);
        if k == 0 {
            return None;
        }
        // Under degraded processor sharing the query with least remaining
        // work finishes after `min_rem · k / factor` further milliseconds
        // (factor = 1.0 on a healthy instance, so the healthy schedule is
        // unchanged). Ceil to the next millisecond tick so the completion
        // check never fires early.
        let wait = convert::ceil_ms_f64(min_rem * k as f64 / self.degradation_factor());
        Some(now + crate::time::SimDuration::from_ms(wait))
    }

    /// Removes and returns every query whose remaining work has reached zero.
    pub(crate) fn take_finished(&mut self) -> Vec<RunningQuery> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_ms <= FINISH_EPSILON_MS {
                done.push(self.running.remove(i));
            } else {
                i += 1;
            }
        }
        // Preserve submission order in the output for determinism.
        done.sort_by_key(|q| (q.submitted, q.id));
        done
    }

    pub(crate) fn push_running(&mut self, q: RunningQuery) {
        self.running.push(q);
        self.stats.submitted += 1;
        self.stats.max_concurrency = self
            .stats
            .max_concurrency
            .max(convert::count_u32(self.running.len()));
    }

    pub(crate) fn drain_running(&mut self) -> Vec<RunningQuery> {
        std::mem::take(&mut self.running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryTemplate, TemplateId};

    fn inst() -> MppdbInstance {
        let hosted: BTreeMap<SimTenantId, f64> =
            [(SimTenantId(0), 100.0), (SimTenantId(1), 200.0)].into();
        MppdbInstance::new(
            InstanceId(0),
            vec![NodeId(0), NodeId(1)],
            hosted,
            SimTime::ZERO,
            SimTime::ZERO,
        )
    }

    fn rq(id: u64, tenant: u32, remaining_ms: f64, at: SimTime) -> RunningQuery {
        let template = QueryTemplate::new(TemplateId(0), 1.0, 0.0);
        RunningQuery {
            id: QueryId(id),
            spec: QuerySpec::new(template, 1.0, SimTenantId(tenant)),
            submitted: at,
            remaining_ms,
            dedicated_ms: remaining_ms,
        }
    }

    #[test]
    fn instance_starts_ready_when_ready_at_is_now() {
        let i = inst();
        assert_eq!(i.state(), InstanceState::Ready);
        assert!(i.is_free());
        assert!(i.hosts(SimTenantId(1)));
        assert!(!i.hosts(SimTenantId(9)));
        assert_eq!(i.total_data_gb(), 300.0);
    }

    #[test]
    fn processor_sharing_splits_progress_evenly() {
        let mut i = inst();
        i.push_running(rq(1, 0, 10_000.0, SimTime::ZERO));
        i.push_running(rq(2, 1, 10_000.0, SimTime::ZERO));
        // After 10 s of wall time with k=2, each query got 5 s of service.
        i.advance(SimTime::from_secs(10));
        assert!(i
            .running
            .iter()
            .all(|q| (q.remaining_ms - 5_000.0).abs() < 1e-9));
        // Next completion: 5 s of work at rate 1/2 -> 10 s from now.
        let next = i.next_completion_time(SimTime::from_secs(10)).unwrap();
        assert_eq!(next, SimTime::from_secs(20));
    }

    #[test]
    fn solo_query_progresses_at_full_rate() {
        let mut i = inst();
        i.push_running(rq(1, 0, 10_000.0, SimTime::ZERO));
        i.advance(SimTime::from_secs(4));
        assert!((i.running[0].remaining_ms - 6_000.0).abs() < 1e-9);
        assert_eq!(
            i.next_completion_time(SimTime::from_secs(4)).unwrap(),
            SimTime::from_secs(10)
        );
    }

    #[test]
    fn take_finished_removes_only_done_queries() {
        let mut i = inst();
        i.push_running(rq(1, 0, 1_000.0, SimTime::ZERO));
        i.push_running(rq(2, 1, 9_000.0, SimTime::ZERO));
        i.advance(SimTime::from_secs(2)); // each gets 1 s of service
        let done = i.take_finished();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, QueryId(1));
        assert_eq!(i.concurrency(), 1);
        assert!(i.serves_tenant(SimTenantId(1)));
        assert!(!i.serves_tenant(SimTenantId(0)));
    }

    #[test]
    fn effective_nodes_degrades_and_recovers() {
        let mut i = inst();
        assert_eq!(i.effective_nodes(), 2);
        i.mark_node_failed();
        assert_eq!(i.effective_nodes(), 1);
        i.replace_failed_node(NodeId(0), NodeId(5));
        assert_eq!(i.effective_nodes(), 2);
        assert!(i.nodes().contains(&NodeId(5)));
        assert!(!i.nodes().contains(&NodeId(0)));
    }

    #[test]
    fn degraded_instance_progresses_at_reduced_rate() {
        let mut i = inst(); // 2 nodes
        i.push_running(rq(1, 0, 10_000.0, SimTime::ZERO));
        i.mark_node_failed(); // factor 1/2
        assert!((i.degradation_factor() - 0.5).abs() < 1e-12);
        // 4 s of wall time at half rate pays down 2 s of work.
        i.advance(SimTime::from_secs(4));
        assert!((i.running[0].remaining_ms - 8_000.0).abs() < 1e-9);
        // The remaining 8 s of work takes 16 s more at half rate.
        assert_eq!(
            i.next_completion_time(SimTime::from_secs(4)).unwrap(),
            SimTime::from_secs(20)
        );
        assert_eq!(i.stats().degraded_ms, 4_000);
        assert_eq!(i.degraded_ms_at(SimTime::from_secs(6)), 6_000);
        // Replacement restores the full rate — and stops the degraded clock.
        i.replace_failed_node(NodeId(0), NodeId(5));
        i.advance(SimTime::from_secs(6));
        assert!((i.running[0].remaining_ms - 6_000.0).abs() < 1e-9);
        assert_eq!(i.stats().degraded_ms, 4_000);
        assert_eq!(i.degraded_ms_at(SimTime::from_secs(6)), 4_000);
    }

    #[test]
    fn effective_nodes_never_reaches_zero() {
        let mut i = inst();
        i.mark_node_failed();
        i.mark_node_failed();
        i.mark_node_failed();
        assert_eq!(i.effective_nodes(), 1);
    }
}
