//! Simulator error types.

use crate::instance::InstanceId;
use crate::node::NodeId;
use crate::query::{QueryId, SimTenantId};
use std::fmt;

/// Errors returned by [`crate::cluster::Cluster`] operations.
///
/// `#[non_exhaustive]`: new failure modes may be added; always keep a
/// wildcard arm when matching.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The instance id does not exist.
    UnknownInstance(InstanceId),
    /// The instance exists but is still provisioning.
    InstanceNotReady(InstanceId),
    /// The instance has been decommissioned.
    InstanceDecommissioned(InstanceId),
    /// The free node pool cannot satisfy the request.
    InsufficientNodes {
        /// Nodes requested by the operation.
        requested: usize,
        /// Nodes available in the hibernated pool.
        available: usize,
    },
    /// The tenant's data is not loaded on the target instance.
    TenantNotHosted {
        /// Target instance.
        instance: InstanceId,
        /// Tenant whose data is missing.
        tenant: SimTenantId,
    },
    /// The node id does not exist.
    UnknownNode(NodeId),
    /// The query id does not exist or has already completed.
    UnknownQuery(QueryId),
    /// Attempt to schedule an event in the past.
    TimeInPast,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownInstance(id) => write!(f, "unknown MPPDB instance {id}"),
            SimError::InstanceNotReady(id) => {
                write!(f, "MPPDB instance {id} is still provisioning")
            }
            SimError::InstanceDecommissioned(id) => {
                write!(f, "MPPDB instance {id} has been decommissioned")
            }
            SimError::InsufficientNodes {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} nodes but only {available} are available"
            ),
            SimError::TenantNotHosted { instance, tenant } => {
                write!(f, "tenant {tenant} is not hosted on instance {instance}")
            }
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::UnknownQuery(id) => write!(f, "unknown query {id}"),
            SimError::TimeInPast => write!(f, "cannot schedule an event in the simulated past"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;
