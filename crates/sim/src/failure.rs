//! Failure injection plans.
//!
//! Node failure is handled directly by the MPPDB (Chapter 4.4): the instance
//! stays online at reduced parallelism and Thrifty starts a replacement node.
//! A [`FailurePlan`] is a declarative schedule of failures that a test or
//! experiment applies to a [`crate::cluster::Cluster`] up front, keeping
//! failure scenarios reproducible.

use crate::cluster::Cluster;
use crate::error::SimResult;
use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A declarative schedule of node failures.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FailurePlan {
    events: Vec<(NodeId, SimTime)>,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Adds a failure of `node` at `at`.
    pub fn fail_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push((node, at));
        self
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled failures.
    pub fn events(&self) -> &[(NodeId, SimTime)] {
        &self.events
    }

    /// Registers every scheduled failure with the cluster.
    ///
    /// # Errors
    /// [`SimError::UnknownNode`](crate::error::SimError::UnknownNode) on
    /// the first event naming a node the cluster does not have.
    pub fn apply(&self, cluster: &mut Cluster) -> SimResult<()> {
        for &(node, at) in &self.events {
            cluster.inject_node_failure(node, at)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SimEvent};
    use crate::query::SimTenantId;

    #[test]
    fn plan_applies_all_failures() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(6));
        let id = c.provision_instance(4, &[(SimTenantId(0), 100.0)]).unwrap();
        let nodes = c.instance(id).unwrap().nodes().to_vec();
        let plan = FailurePlan::none()
            .fail_at(nodes[0], SimTime::from_secs(10))
            .fail_at(nodes[1], SimTime::from_secs(20));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        plan.apply(&mut c).unwrap();
        let events = c.run_to_quiescence();
        let failures = events
            .iter()
            .filter(|e| matches!(e, SimEvent::NodeFailed { .. }))
            .count();
        assert_eq!(failures, 2);
        // Two spares existed, so parallelism is fully restored.
        assert_eq!(c.instance(id).unwrap().effective_nodes(), 4);
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(2));
        FailurePlan::none().apply(&mut c).unwrap();
        assert!(c.run_to_quiescence().is_empty());
    }
}
