//! Checked numeric conversions — the single audited home for every cast in
//! the simulator.
//!
//! The determinism lint (L5, `crates/lint`) rejects bare `as` casts to
//! integer types anywhere in this crate: a silent truncation between
//! time/node-count representations is exactly the kind of bug that
//! corrupts a replay without failing a test. All conversions therefore go
//! through these helpers, which either are provably lossless (guarded by
//! the compile-time width assertion below) or saturate explicitly. The few
//! residual `as` casts in this module are each annotated and justified.

// The simulator targets 32- and 64-bit platforms: a u32 id always fits in
// a usize, so `index_u32` below is lossless.
const _: () = assert!(
    usize::BITS >= u32::BITS,
    "mppdb-sim requires usize to hold a u32"
);

/// Lossless `u32 -> usize` for indexing node/instance tables.
#[inline]
pub fn index_u32(i: u32) -> usize {
    i as usize // lint: allow(cast)
}

/// Saturating `usize -> u32` for counters that semantically fit (node and
/// instance counts). Saturation, never wraparound: a cluster with more than
/// `u32::MAX` nodes is already unrepresentable upstream.
#[inline]
pub fn count_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Saturating `usize -> u64` for accumulators (lossless on every supported
/// platform; saturates on a hypothetical 128-bit usize).
#[inline]
pub fn count_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Saturating `u128 -> u64` for averaged accumulators whose quotient is
/// known to fit (a mean never exceeds the largest sample).
#[inline]
pub fn ms_from_u128(ms: u128) -> u64 {
    u64::try_from(ms).unwrap_or(u64::MAX)
}

/// `f64` milliseconds -> `u64`, rounding to the nearest tick. Negative and
/// non-finite inputs map to zero; overflow saturates (Rust float->int `as`
/// casts saturate since 1.45, which this helper makes explicit and audited).
#[inline]
pub fn round_ms_f64(ms: f64) -> u64 {
    if !ms.is_finite() || ms <= 0.0 {
        return 0;
    }
    ms.round() as u64 // lint: allow(cast)
}

/// `f64` milliseconds -> `u64`, rounding *up* so scheduled wake-ups never
/// fire before the work is done. Negative/non-finite map to zero.
#[inline]
pub fn ceil_ms_f64(ms: f64) -> u64 {
    if !ms.is_finite() || ms <= 0.0 {
        return 0;
    }
    ms.ceil() as u64 // lint: allow(cast)
}

/// `f64` -> `usize` rank for nearest-rank quantiles: ceiling, clamped to
/// zero for negative/non-finite inputs; the caller clamps the upper bound
/// to the sample count.
#[inline]
pub fn ceil_rank_f64(x: f64) -> usize {
    if !x.is_finite() || x <= 0.0 {
        return 0;
    }
    x.ceil() as usize // lint: allow(cast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips_through_count() {
        for i in [0u32, 1, 17, u32::MAX] {
            assert_eq!(count_u32(index_u32(i)), i);
        }
    }

    #[test]
    fn count_saturates_instead_of_wrapping() {
        assert_eq!(count_u32(usize::MAX), u32::MAX);
        assert_eq!(ms_from_u128(u128::MAX), u64::MAX);
        assert_eq!(ms_from_u128(42), 42);
    }

    #[test]
    fn float_conversions_clamp_garbage_to_zero() {
        assert_eq!(round_ms_f64(-1.0), 0);
        assert_eq!(round_ms_f64(f64::NAN), 0);
        assert_eq!(round_ms_f64(f64::NEG_INFINITY), 0);
        assert_eq!(round_ms_f64(1.4), 1);
        assert_eq!(round_ms_f64(1.5), 2);
        assert_eq!(ceil_ms_f64(1.0001), 2);
        assert_eq!(ceil_ms_f64(f64::NAN), 0);
        assert_eq!(ceil_rank_f64(2.2), 3);
        assert_eq!(ceil_rank_f64(-3.0), 0);
    }

    #[test]
    fn overflow_saturates() {
        assert_eq!(round_ms_f64(f64::INFINITY), 0, "non-finite maps to zero");
        assert_eq!(round_ms_f64(1e300), u64::MAX);
        assert_eq!(ceil_ms_f64(1e300), u64::MAX);
    }
}
