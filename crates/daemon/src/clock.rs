//! The wall-clock [`ClockSource`] — the one place in the workspace that
//! reads ambient time (lint rule L2 permits it solely in this crate).

use std::time::Instant;
use thrifty::clock::ClockSource;

/// Elapsed wall time since construction, in ms. Monotone by
/// [`Instant`]'s contract; manual advancement is rejected so an operator
/// cannot warp a production timeline.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    anchor: Instant,
}

impl WallClock {
    /// Anchors the clock at the current instant.
    pub fn new() -> Self {
        WallClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl ClockSource for WallClock {
    fn now_ms(&mut self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn advance(&mut self, _ms: u64) -> bool {
        false
    }

    fn is_simulated(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_rejects_manual_advance() {
        let mut clock = WallClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
        assert!(!clock.advance(1_000));
        assert!(!clock.is_simulated());
    }
}
