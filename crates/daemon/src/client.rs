//! Typed client for the `thriftyd` socket protocol, shared by the
//! operator CLI and the daemon-mode fuzz harness.

use crate::config::TenantSection;
use crate::error::{DaemonError, DaemonResult};
use crate::protocol::{
    decode_line, encode_line, CutoverView, Envelope, ReloadView, Reply, Request, StatusView,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;
use thrifty::telemetry::TelemetrySnapshot;

/// One connection to a running daemon. Requests are strictly
/// round-tripped: a request line goes out, one envelope line comes back.
pub struct DaemonClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl DaemonClient {
    /// Connects to the daemon socket.
    ///
    /// # Errors
    /// [`DaemonError::Io`] when nothing listens there.
    pub fn connect(socket: &Path) -> DaemonResult<Self> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(DaemonClient {
            reader,
            writer: stream,
        })
    }

    /// Connects, retrying while the daemon is still claiming its socket
    /// (harnesses spawn `thriftyd` and race its startup).
    ///
    /// # Errors
    /// The last connection failure once `attempts` are exhausted.
    pub fn connect_with_retry(socket: &Path, attempts: u32, delay_ms: u64) -> DaemonResult<Self> {
        let mut last = DaemonError::Protocol("no connection attempts made".to_string());
        for _ in 0..attempts.max(1) {
            match Self::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        Err(last)
    }

    /// One request/envelope round trip, error envelopes included — the
    /// primitive the fuzz harness byte-compares against direct
    /// [`DaemonCore`](crate::runtime::DaemonCore) dispatch.
    ///
    /// # Errors
    /// Transport failures and protocol violations only; a daemon-side
    /// error is a successfully-delivered envelope.
    pub fn request_envelope(&mut self, req: &Request) -> DaemonResult<Envelope> {
        let mut line = encode_line(req)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut answer = String::new();
        let n = self.reader.read_line(&mut answer)?;
        if n == 0 {
            return Err(DaemonError::Protocol(
                "daemon closed the connection before answering".to_string(),
            ));
        }
        decode_line(&answer)
    }

    /// One raw request/reply round trip.
    ///
    /// # Errors
    /// Transport failures, protocol violations, and daemon-side errors
    /// (as [`DaemonError::Remote`] with the wire kind).
    pub fn request(&mut self, req: &Request) -> DaemonResult<Reply> {
        self.request_envelope(req)?.into_reply()
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn ping(&mut self) -> DaemonResult<()> {
        match self.request(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Full service status.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn status(&mut self) -> DaemonResult<StatusView> {
        match self.request(&Request::Status)? {
            Reply::Status(v) => Ok(v),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Re-consolidation / cutover status.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn cutover_status(&mut self) -> DaemonResult<CutoverView> {
        match self.request(&Request::CutoverStatus)? {
            Reply::Cutover(v) => Ok(v),
            other => Err(unexpected("Cutover", &other)),
        }
    }

    /// The full telemetry snapshot.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn telemetry(&mut self) -> DaemonResult<TelemetrySnapshot> {
        match self.request(&Request::Telemetry)? {
            Reply::Telemetry(v) => Ok(v),
            other => Err(unexpected("Telemetry", &other)),
        }
    }

    /// The serialized `ServiceReport` of the run so far.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn report_json(&mut self) -> DaemonResult<String> {
        match self.request(&Request::Report)? {
            Reply::Report { json } => Ok(json),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// Live tenant ids.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn live_tenants(&mut self) -> DaemonResult<Vec<u32>> {
        match self.request(&Request::LiveTenants)? {
            Reply::Tenants { ids } => Ok(ids),
            other => Err(unexpected("Tenants", &other)),
        }
    }

    /// Registers a tenant.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn register(&mut self, id: u32, nodes: u32, data_gb: f64) -> DaemonResult<()> {
        match self.request(&Request::Register(TenantSection { id, nodes, data_gb }))? {
            Reply::Registered { .. } => Ok(()),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Deregisters a tenant.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn deregister(&mut self, id: u32) -> DaemonResult<()> {
        match self.request(&Request::Deregister { id })? {
            Reply::Deregistered { .. } => Ok(()),
            other => Err(unexpected("Deregistered", &other)),
        }
    }

    /// Submits one query.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn submit(
        &mut self,
        tenant: u32,
        template: u32,
        data_gb: f64,
        nodes: u32,
    ) -> DaemonResult<()> {
        match self.request(&Request::Submit {
            tenant,
            template,
            data_gb,
            nodes,
        })? {
            Reply::Submitted => Ok(()),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Kills a node at the current instant.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn inject_failure(&mut self, node: u32) -> DaemonResult<()> {
        match self.request(&Request::InjectFailure { node })? {
            Reply::FailureInjected { .. } => Ok(()),
            other => Err(unexpected("FailureInjected", &other)),
        }
    }

    /// Advances a sim-clock daemon, returning the new log time in ms.
    ///
    /// # Errors
    /// See [`DaemonClient::request`]; wall-clock daemons answer a
    /// `clock` error.
    pub fn advance(&mut self, ms: u64) -> DaemonResult<u64> {
        match self.request(&Request::Advance { ms })? {
            Reply::Advanced { log_now_ms } => Ok(log_now_ms),
            other => Err(unexpected("Advanced", &other)),
        }
    }

    /// Advances a sim-clock daemon and runs to quiescence, returning the
    /// new log time in ms.
    ///
    /// # Errors
    /// See [`DaemonClient::advance`].
    pub fn quiesce(&mut self, ms: u64) -> DaemonResult<u64> {
        match self.request(&Request::Quiesce { ms })? {
            Reply::Advanced { log_now_ms } => Ok(log_now_ms),
            other => Err(unexpected("Advanced", &other)),
        }
    }

    /// Attempts one re-consolidation cycle; `true` when one started.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn cycle(&mut self) -> DaemonResult<bool> {
        match self.request(&Request::Cycle)? {
            Reply::Cycled { started } => Ok(started),
            other => Err(unexpected("Cycled", &other)),
        }
    }

    /// Asks the daemon to re-read its config file and hot-apply the safe
    /// subset.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn reload(&mut self) -> DaemonResult<ReloadView> {
        match self.request(&Request::Reload)? {
            Reply::Reloaded(v) => Ok(v),
            other => Err(unexpected("Reloaded", &other)),
        }
    }

    /// Drains and stops the daemon, returning its lifetime SLA record
    /// count.
    ///
    /// # Errors
    /// See [`DaemonClient::request`].
    pub fn stop(&mut self) -> DaemonResult<u64> {
        match self.request(&Request::Stop)? {
            Reply::Stopping { records } => Ok(records),
            other => Err(unexpected("Stopping", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> DaemonError {
    DaemonError::Protocol(format!("expected {wanted} reply, got {got:?}"))
}
