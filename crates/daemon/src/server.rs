//! Single-threaded unix-socket server.
//!
//! One nonblocking accept/read loop multiplexes every operator
//! connection — no threads, so the daemon needs none of the workspace's
//! determinism waivers (lint L3) and request handling is strictly
//! serialized: requests are applied in arrival order, which the fuzz
//! harness relies on for byte-equivalence with direct library calls.
//!
//! Protocol framing is one JSON line per request, one envelope line per
//! answer (see [`crate::protocol`]). Between turns the loop ticks the
//! [`DaemonCore`] (advancing the log timeline on wall-clock daemons) and
//! polls the `SIGHUP` latch for file-based hot-reload.

use crate::error::{DaemonError, DaemonResult};
use crate::protocol::{encode_line, Envelope, Request};
use crate::runtime::DaemonCore;
use crate::signal::take_sighup;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One connected operator: its stream plus the partial-line buffer.
struct Conn {
    stream: UnixStream,
    buf: Vec<u8>,
}

/// Removes the socket file when the server leaves scope, clean exit or
/// not.
struct SocketGuard {
    path: PathBuf,
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Binds `socket`, refusing to clobber a live daemon: a connectable
/// socket means one is serving; a stale file (dead daemon) is removed.
fn claim_socket(socket: &Path) -> DaemonResult<UnixListener> {
    if socket.exists() {
        if UnixStream::connect(socket).is_ok() {
            return Err(DaemonError::Config(format!(
                "socket {} already has a live daemon (use `thriftyd stop` first)",
                socket.display()
            )));
        }
        let _ = std::fs::remove_file(socket);
    }
    Ok(UnixListener::bind(socket)?)
}

/// Serves `core` on `socket` until a `Stop` request drains it. Prints a
/// single ready line (`thriftyd: serving on <socket>`) once the socket
/// is claimed, which harnesses use as the startup barrier.
///
/// # Errors
/// Socket claim failures and daemon-fatal stepping errors; per-request
/// failures are answered as error envelopes and never end the loop.
pub fn serve(mut core: DaemonCore, socket: &Path) -> DaemonResult<()> {
    let listener = claim_socket(socket)?;
    listener.set_nonblocking(true)?;
    let _guard = SocketGuard {
        path: socket.to_path_buf(),
    };
    let idle = Duration::from_millis(if core.is_simulated() {
        1
    } else {
        core.config().daemon.tick_ms
    });
    println!("thriftyd: serving on {}", socket.display());
    std::io::stdout().flush()?;

    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let mut progressed = false;

        if take_sighup() {
            match core.reload() {
                Ok(view) => eprintln!(
                    "thriftyd: SIGHUP reload: {}",
                    encode_line(&view).unwrap_or_else(|e| e.to_string())
                ),
                Err(e) => eprintln!("thriftyd: SIGHUP reload failed (config unchanged): {e}"),
            }
            progressed = true;
        }

        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    conns.push(Conn {
                        stream,
                        buf: Vec::new(),
                    });
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e.into()),
            }
        }

        let mut i = 0;
        while i < conns.len() {
            match pump(&mut conns[i], &mut core) {
                Ok(PumpOutcome::Idle) => i += 1,
                Ok(PumpOutcome::Progressed) => {
                    progressed = true;
                    i += 1;
                }
                Ok(PumpOutcome::Closed) | Err(_) => {
                    // A broken peer only costs its own connection.
                    conns.swap_remove(i);
                    progressed = true;
                }
            }
            if core.stopping() {
                // The Stop reply is already on the wire; drop the
                // listener and let the guard remove the socket.
                return Ok(());
            }
        }

        core.tick()?;
        if !progressed {
            std::thread::sleep(idle);
        }
    }
}

enum PumpOutcome {
    /// Nothing to read.
    Idle,
    /// At least one byte or request moved.
    Progressed,
    /// The peer hung up.
    Closed,
}

/// Reads whatever the connection has pending and answers every complete
/// line. Returns as soon as the core starts stopping so the caller can
/// exit without answering later requests with a half-dead service.
fn pump(conn: &mut Conn, core: &mut DaemonCore) -> DaemonResult<PumpOutcome> {
    let mut chunk = [0u8; 16 * 1024];
    let mut read_any = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                return if read_any && !conn.buf.is_empty() {
                    Err(DaemonError::Protocol(
                        "connection closed mid-line".to_string(),
                    ))
                } else {
                    Ok(PumpOutcome::Closed)
                };
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                read_any = true;
                answer_complete_lines(conn, core)?;
                if core.stopping() {
                    return Ok(PumpOutcome::Progressed);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                return Ok(if read_any {
                    PumpOutcome::Progressed
                } else {
                    PumpOutcome::Idle
                });
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Drains complete lines from the buffer, dispatching each and writing
/// its envelope. Malformed lines get a structured `parse` error instead
/// of killing the connection.
fn answer_complete_lines(conn: &mut Conn, core: &mut DaemonCore) -> DaemonResult<()> {
    while let Some(nl) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=nl).collect();
        let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
        if text.trim().is_empty() {
            continue;
        }
        let envelope = match crate::protocol::decode_line::<Request>(&text) {
            Ok(req) => core.handle(&req),
            Err(e) => Envelope::err("parse", format!("bad request line: {e}")),
        };
        write_envelope(&mut conn.stream, &envelope)?;
        if core.stopping() {
            break;
        }
    }
    Ok(())
}

/// Writes one envelope line, temporarily blocking so a large reply (a
/// full telemetry snapshot) lands whole even on a slow reader.
fn write_envelope(stream: &mut UnixStream, envelope: &Envelope) -> DaemonResult<()> {
    let mut line = encode_line(envelope)?;
    line.push('\n');
    stream.set_nonblocking(false)?;
    let result = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush());
    stream.set_nonblocking(true)?;
    result?;
    Ok(())
}
