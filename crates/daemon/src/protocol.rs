//! The operator wire protocol: line-delimited JSON over a unix socket.
//!
//! Every request is one [`Request`] serialized on a single line; every
//! answer is one [`Envelope`] line — `ok` plus a [`Reply`], or a
//! structured [`WireError`] with a stable machine-readable `kind`. The
//! derive shim's externally-tagged enum encoding makes the wire format
//! self-describing: `"Status"` for unit requests,
//! `{"Register": {...}}` for payloads.

use crate::config::TenantSection;
use crate::error::{service_error_kind, DaemonError, DaemonResult};
use serde::{Deserialize, Serialize};
use thrifty::service::ConfigDelta;
use thrifty::telemetry::TelemetrySnapshot;

/// A request to the daemon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Full service status (tenants, groups, knobs in force).
    Status,
    /// Re-consolidation / cutover status.
    CutoverStatus,
    /// The full telemetry snapshot (counters, gauges, histograms,
    /// per-instance utilization, recent events).
    Telemetry,
    /// The serialized `ServiceReport` of the run so far.
    Report,
    /// Just the live tenant ids.
    LiveTenants,
    /// Register a tenant (parked on a tuning MPPDB until the next cycle).
    Register(TenantSection),
    /// Deregister a live tenant.
    Deregister {
        /// Tenant id.
        id: u32,
    },
    /// Submit one query on behalf of a tenant.
    Submit {
        /// Tenant id.
        tenant: u32,
        /// Template id (must be in the daemon's catalog).
        template: u32,
        /// Data volume the query scans, in GB.
        data_gb: f64,
        /// Node count of the tenant's dedicated baseline MPPDB.
        nodes: u32,
    },
    /// Kill a node at the current instant (fault injection).
    InjectFailure {
        /// Node id.
        node: u32,
    },
    /// Advance the simulated clock (sim-clock daemons only).
    Advance {
        /// Milliseconds to advance.
        ms: u64,
    },
    /// Advance the simulated clock and run in-flight work to quiescence
    /// (sim-clock daemons only).
    Quiesce {
        /// Milliseconds to advance.
        ms: u64,
    },
    /// Attempt one re-consolidation cycle now (manual-cadence daemons).
    Cycle,
    /// Re-read the config file and hot-apply the safe knob subset.
    Reload,
    /// Drain in-flight queries and shut down.
    Stop,
}

/// A successful answer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// `Ping` answer.
    Pong,
    /// `Status` answer.
    Status(StatusView),
    /// `CutoverStatus` answer.
    Cutover(CutoverView),
    /// `Telemetry` answer.
    Telemetry(TelemetrySnapshot),
    /// `Report` answer: the `ServiceReport` as a JSON document, kept as
    /// an opaque string so daemon-vs-direct byte comparison is exact.
    Report {
        /// Serialized `ServiceReport`.
        json: String,
    },
    /// `LiveTenants` answer.
    Tenants {
        /// Live tenant ids, ascending.
        ids: Vec<u32>,
    },
    /// `Register` answer.
    Registered {
        /// The registered tenant id.
        id: u32,
    },
    /// `Deregister` answer.
    Deregistered {
        /// The deregistered tenant id.
        id: u32,
    },
    /// `Submit` answer.
    Submitted,
    /// `InjectFailure` answer.
    FailureInjected {
        /// The failed node id.
        node: u32,
    },
    /// `Advance` / `Quiesce` answer.
    Advanced {
        /// Log time after the advance, in ms.
        log_now_ms: u64,
    },
    /// `Cycle` answer.
    Cycled {
        /// Whether a cycle actually started (a no-op plan, a busy
        /// service, or a dry node pool all skip).
        started: bool,
    },
    /// `Reload` answer.
    Reloaded(ReloadView),
    /// `Stop` answer, sent after the drain completes.
    Stopping {
        /// SLA records accumulated over the daemon's lifetime.
        records: u64,
    },
}

/// Full service status.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusView {
    /// `"sim"` or `"wall"`.
    pub clock: String,
    /// The log instant where the service timeline starts, in ms.
    pub log_epoch_ms: u64,
    /// Current log time in ms.
    pub log_now_ms: u64,
    /// `log_now_ms - log_epoch_ms`.
    pub uptime_ms: u64,
    /// Whether every live tenant is currently routable.
    pub all_routable: bool,
    /// Registrations still bulk-loading or deferred.
    pub pending_registrations: bool,
    /// A re-consolidation cycle is executing.
    pub reconsolidation_active: bool,
    /// Re-consolidation cycles completed since start.
    pub cycles_completed: u64,
    /// Per-tenant status, ascending by id.
    pub tenants: Vec<TenantStatus>,
    /// Per-group status, by group index.
    pub groups: Vec<GroupStatus>,
    /// The service knobs currently in force (reflects hot-reloads).
    pub service: ServiceKnobs,
}

/// One tenant's routing status.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Tenant id.
    pub id: u32,
    /// Serving group index, if any.
    pub group: Option<usize>,
    /// Parked on a tuning MPPDB awaiting its first cycle.
    pub parked: bool,
    /// Serving group exists, is not retired, and has replicas.
    pub routable: bool,
}

/// One tenant-group's runtime status.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupStatus {
    /// Group index.
    pub index: usize,
    /// Member tenant ids.
    pub members: Vec<u32>,
    /// Live replica (MPPDB instance) count.
    pub instances: usize,
    /// Per-replica node size.
    pub node_size: u32,
    /// Retired by a cutover, draining in-flight work.
    pub retired: bool,
    /// Created by elastic scale-out.
    pub scale_out: bool,
}

/// The service knobs currently in force.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceKnobs {
    /// SLA relative tolerance.
    pub sla_tolerance: f64,
    /// Performance guarantee `P`.
    pub sla_p: f64,
    /// Elastic scaling on/off.
    pub elastic_scaling: bool,
    /// RT-TTP window in ms.
    pub monitor_window_ms: u64,
    /// Over-active identification epoch in ms.
    pub scaling_epoch_ms: u64,
    /// Scaling check spacing in ms.
    pub scaling_check_interval_ms: u64,
}

/// Re-consolidation / cutover status.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CutoverView {
    /// A cycle is executing right now.
    pub active: bool,
    /// Cycles completed since start.
    pub cycles_completed: u64,
    /// Groups currently retired and draining.
    pub retiring_groups: Vec<usize>,
    /// Next due instant on the log timeline, in ms.
    pub next_due_ms: u64,
    /// Cycle period in force.
    pub interval_ms: u64,
    /// Observation window in force (0 = the service's monitor window).
    pub window_ms: u64,
    /// Due instants evaluated.
    pub evaluations: u64,
    /// Cycles the controller actually started.
    pub cycles_planned: u64,
    /// Skips: a previous cycle / registrations still in flight.
    pub skipped_busy: u64,
    /// Skips: the plan matched the current deployment.
    pub skipped_noop: u64,
    /// Skips: not enough free nodes to double-run rebuilt groups.
    pub skipped_insufficient_nodes: u64,
    /// Skips: every change was deferred by the churn bounds.
    pub skipped_deferred: u64,
    /// Moves deferred by hysteresis across all cycles.
    pub moves_deferred: u64,
    /// Builds capped by the per-cycle budget across all cycles.
    pub builds_capped: u64,
    /// Cadence adaptations applied.
    pub adaptations: u64,
}

/// The outcome of a hot-reload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReloadView {
    /// The service-knob diff: applied and rejected changes with reasons.
    pub delta: ConfigDelta,
    /// Deploy-time *sections* of the daemon config that differed and were
    /// refused wholesale (cluster, groups, templates, reconsolidation,
    /// daemon pacing).
    pub rejected_sections: Vec<RejectedSection>,
}

/// One refused deploy-time section.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RejectedSection {
    /// Section name (e.g. `"cluster"`).
    pub section: String,
    /// Why it cannot change without a restart.
    pub reason: String,
}

/// A structured wire error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Stable machine-readable kind (e.g. `invalid-config`, `clock`,
    /// `parse`).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

/// One answer line: `ok` with a reply, or a structured error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Whether the request succeeded.
    pub ok: bool,
    /// The reply when `ok`.
    pub reply: Option<Reply>,
    /// The error when not.
    pub error: Option<WireError>,
}

impl Envelope {
    /// A success envelope.
    pub fn ok(reply: Reply) -> Self {
        Envelope {
            ok: true,
            reply: Some(reply),
            error: None,
        }
    }

    /// A structured error envelope.
    pub fn err(kind: &str, message: impl Into<String>) -> Self {
        Envelope {
            ok: false,
            reply: None,
            error: Some(WireError {
                kind: kind.to_string(),
                message: message.into(),
            }),
        }
    }

    /// An error envelope from a service failure, with its stable kind.
    pub fn service_err(e: &thrifty::error::ThriftyError) -> Self {
        Envelope::err(service_error_kind(e), e.to_string())
    }

    /// Unwraps the reply, converting a wire error into
    /// [`DaemonError::Remote`].
    ///
    /// # Errors
    /// [`DaemonError::Remote`] when the envelope carries an error, and
    /// [`DaemonError::Protocol`] when it is `ok` but reply-less.
    pub fn into_reply(self) -> DaemonResult<Reply> {
        if let Some(e) = self.error {
            return Err(DaemonError::Remote {
                kind: e.kind,
                message: e.message,
            });
        }
        self.reply
            .ok_or_else(|| DaemonError::Protocol("ok envelope without a reply".to_string()))
    }
}

/// Serializes one protocol value as a single line (no trailing newline).
///
/// # Errors
/// [`DaemonError::Json`] when the value cannot be encoded.
pub fn encode_line<T: Serialize + ?Sized>(value: &T) -> DaemonResult<String> {
    let s = serde_json::to_string(value)?;
    debug_assert!(!s.contains('\n'), "compact JSON is single-line");
    Ok(s)
}

/// Parses one protocol line.
///
/// # Errors
/// [`DaemonError::Json`] when the line is not valid JSON of the expected
/// shape.
pub fn decode_line<T: Deserialize>(line: &str) -> DaemonResult<T> {
    Ok(serde_json::from_str(line.trim())?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_on_the_wire() {
        let reqs = vec![
            Request::Ping,
            Request::Status,
            Request::Register(TenantSection {
                id: 42,
                nodes: 2,
                data_gb: 120.0,
            }),
            Request::Submit {
                tenant: 42,
                template: 2,
                data_gb: 80.5,
                nodes: 2,
            },
            Request::Advance { ms: 60_000 },
            Request::Stop,
        ];
        for req in reqs {
            let line = encode_line(&req).unwrap();
            assert!(!line.contains('\n'));
            let back: Request = decode_line(&line).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn envelopes_round_trip_and_unwrap() {
        let ok = Envelope::ok(Reply::Advanced { log_now_ms: 9 });
        let back: Envelope = decode_line(&encode_line(&ok).unwrap()).unwrap();
        assert_eq!(
            back.into_reply().unwrap(),
            Reply::Advanced { log_now_ms: 9 }
        );

        let err = Envelope::err("clock", "wall-clock daemons cannot be advanced");
        let back: Envelope = decode_line(&encode_line(&err).unwrap()).unwrap();
        match back.into_reply() {
            Err(DaemonError::Remote { kind, .. }) => assert_eq!(kind, "clock"),
            other => panic!("expected remote error, got {other:?}"),
        }
    }
}
