//! The `thriftyd` service configuration file.
//!
//! A JSON document (the offline serde shim has no TOML front end) with
//! one section per subsystem. Every field is explicit — the shim derives
//! have no defaults, which doubles as documentation discipline: a config
//! file states the entire contract. `thriftyd init-config` prints a
//! ready-to-edit example.
//!
//! Hot-reload reads the same file again (`SIGHUP` or the `reload`
//! request), re-validates `service` through
//! [`ServiceConfigBuilder`](thrifty::service::ServiceConfigBuilder), and
//! applies the safe knob subset via
//! [`ThriftyService::apply_config`](thrifty::service::ThriftyService::apply_config).
//! Deploy-time sections (`cluster`, `groups`, `templates`,
//! `reconsolidation`, `daemon`) are rejected with structured reasons when
//! they differ.

use crate::error::{DaemonError, DaemonResult};
use mppdb_sim::query::{QueryTemplate, TemplateId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;
use thrifty::prelude::*;
use thrifty::telemetry::TelemetryConfig;

/// Top-level daemon configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DaemonConfig {
    /// Cluster sizing.
    pub cluster: ClusterSection,
    /// Query templates the daemon accepts submissions for.
    pub templates: Vec<TemplateSection>,
    /// Initial tenant-group deployment.
    pub groups: Vec<GroupSection>,
    /// Service knobs (the hot-reloadable section).
    pub service: ServiceSection,
    /// Re-consolidation controller cadence.
    pub reconsolidation: ReconSection,
    /// Event-loop pacing.
    pub daemon: DaemonSection,
}

/// Cluster sizing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSection {
    /// Total nodes in the shared pool.
    pub total_nodes: usize,
}

/// One query template profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TemplateSection {
    /// Template id referenced by submissions.
    pub id: u32,
    /// Dedicated single-node cost per GB of data, in ms.
    pub cost_ms_per_gb: f64,
    /// Amdahl serial fraction in `[0, 1]`.
    pub serial_fraction: f64,
}

/// One initial tenant-group.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupSection {
    /// Replication factor `A` of the group.
    pub replication: u32,
    /// Tuning MPPDB size `U` (must be ≥ the largest member request).
    pub tuning_nodes: u32,
    /// Member tenants.
    pub members: Vec<TenantSection>,
}

/// One tenant of the initial deployment (and the shape `tenant register`
/// takes on the wire).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantSection {
    /// Tenant id.
    pub id: u32,
    /// Requested dedicated-MPPDB node count `n_i`.
    pub nodes: u32,
    /// Data size in GB.
    pub data_gb: f64,
}

/// The hot-reloadable service knobs (mirrors
/// [`ServiceConfig`](thrifty::service::ServiceConfig)).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceSection {
    /// SLA relative tolerance (see `SlaPolicy`).
    pub sla_tolerance: f64,
    /// Performance guarantee `P` (fraction in `(0, 1]`).
    pub sla_p: f64,
    /// Lightweight elastic scaling on/off.
    pub elastic_scaling: bool,
    /// RT-TTP monitoring window in ms (deploy-time).
    pub monitor_window_ms: u64,
    /// Over-active identification epoch in ms.
    pub scaling_epoch_ms: u64,
    /// Minimum spacing between scaling checks of one group, in ms.
    pub scaling_check_interval_ms: u64,
    /// Telemetry event ring capacity (deploy-time).
    pub event_capacity: usize,
}

/// Re-consolidation controller cadence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReconSection {
    /// When `true`, the event loop runs
    /// [`Reconsolidator::maybe_cycle`](thrifty::reconsolidation::Reconsolidator::maybe_cycle)
    /// on the clock's timeline; when `false`, cycles run only on an
    /// explicit `cycle` request (the mode fuzz harnesses use).
    pub auto: bool,
    /// Cycle period in ms.
    pub interval_ms: u64,
    /// Replication factor the advisor plans with.
    pub replication: u32,
    /// Advisor SLA target.
    pub sla_p: f64,
    /// Activity epoch size in ms.
    pub epoch_ms: u64,
    /// Observation horizon in ms.
    pub window_ms: u64,
}

/// Event-loop pacing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DaemonSection {
    /// Wall-clock tick granularity in ms (idle sleep between loop turns).
    pub tick_ms: u64,
}

impl DaemonConfig {
    /// A small, complete, ready-to-edit example (what `thriftyd
    /// init-config` prints): two 2-tenant groups on a 20-node pool.
    pub fn example() -> Self {
        DaemonConfig {
            cluster: ClusterSection { total_nodes: 20 },
            templates: vec![TemplateSection {
                id: 2,
                cost_ms_per_gb: 150.0,
                serial_fraction: 0.0,
            }],
            groups: vec![
                GroupSection {
                    replication: 2,
                    tuning_nodes: 2,
                    members: vec![
                        TenantSection {
                            id: 0,
                            nodes: 2,
                            data_gb: 100.0,
                        },
                        TenantSection {
                            id: 1,
                            nodes: 2,
                            data_gb: 125.0,
                        },
                    ],
                },
                GroupSection {
                    replication: 2,
                    tuning_nodes: 2,
                    members: vec![
                        TenantSection {
                            id: 2,
                            nodes: 2,
                            data_gb: 150.0,
                        },
                        TenantSection {
                            id: 3,
                            nodes: 2,
                            data_gb: 175.0,
                        },
                    ],
                },
            ],
            service: ServiceSection {
                sla_tolerance: 0.05,
                sla_p: 0.999,
                elastic_scaling: false,
                monitor_window_ms: 4 * 3_600_000,
                scaling_epoch_ms: 10_000,
                scaling_check_interval_ms: 60_000,
                event_capacity: 20_000,
            },
            reconsolidation: ReconSection {
                auto: true,
                interval_ms: 3_600_000,
                replication: 2,
                sla_p: 0.999,
                epoch_ms: 10_000,
                window_ms: 4 * 3_600_000,
            },
            daemon: DaemonSection { tick_ms: 50 },
        }
    }

    /// Parses and validates a configuration from a JSON file.
    ///
    /// # Errors
    /// [`DaemonError::Io`] when the file cannot be read,
    /// [`DaemonError::Json`] when it is not valid JSON of this shape, and
    /// [`DaemonError::Config`] when [`validate`](Self::validate) rejects
    /// it.
    pub fn load(path: &Path) -> DaemonResult<Self> {
        let text = std::fs::read_to_string(path)?;
        let cfg: DaemonConfig = serde_json::from_str(&text)?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Structural validation: everything the type system cannot express
    /// but the service constructors would panic on or silently accept.
    ///
    /// # Errors
    /// [`DaemonError::Config`] naming the first offending field.
    pub fn validate(&self) -> DaemonResult<()> {
        let fail = |msg: String| Err(DaemonError::Config(msg));
        if self.cluster.total_nodes == 0 {
            return fail("cluster.total_nodes must be non-zero".into());
        }
        if self.templates.is_empty() {
            return fail("templates must list at least one template".into());
        }
        let mut template_ids = BTreeSet::new();
        for t in &self.templates {
            if !template_ids.insert(t.id) {
                return fail(format!("templates: duplicate template id {}", t.id));
            }
            if !(t.cost_ms_per_gb.is_finite() && t.cost_ms_per_gb > 0.0) {
                return fail(format!(
                    "templates[{}].cost_ms_per_gb must be finite and positive",
                    t.id
                ));
            }
            if !(0.0..=1.0).contains(&t.serial_fraction) {
                return fail(format!(
                    "templates[{}].serial_fraction must lie in [0, 1]",
                    t.id
                ));
            }
        }
        if self.groups.is_empty() {
            return fail("groups must list at least one tenant-group".into());
        }
        let mut tenant_ids = BTreeSet::new();
        for (gi, g) in self.groups.iter().enumerate() {
            if g.members.is_empty() {
                return fail(format!("groups[{gi}] has no members"));
            }
            if g.replication == 0 {
                return fail(format!("groups[{gi}].replication must be at least 1"));
            }
            let n1 = g.members.iter().map(|m| m.nodes).max().unwrap_or(0);
            if g.tuning_nodes < n1 {
                return fail(format!(
                    "groups[{gi}].tuning_nodes = {} is below the largest member \
                     request n_1 = {n1} (the TDD requires U ≥ n_1)",
                    g.tuning_nodes
                ));
            }
            for m in &g.members {
                if m.nodes == 0 {
                    return fail(format!("tenant {} requests zero nodes", m.id));
                }
                if !tenant_ids.insert(m.id) {
                    return fail(format!("tenant id {} appears in two groups", m.id));
                }
            }
        }
        if self.reconsolidation.interval_ms == 0 {
            return fail("reconsolidation.interval_ms must be non-zero".into());
        }
        if self.reconsolidation.replication == 0 {
            return fail("reconsolidation.replication must be at least 1".into());
        }
        if self.reconsolidation.epoch_ms == 0 || self.reconsolidation.window_ms == 0 {
            return fail("reconsolidation.epoch_ms / window_ms must be non-zero".into());
        }
        if self.daemon.tick_ms == 0 {
            return fail("daemon.tick_ms must be non-zero".into());
        }
        // The service-section knobs go through ServiceConfigBuilder so the
        // daemon rejects exactly what a hot-reload would reject.
        self.service_config().map_err(DaemonError::Service)?;
        Ok(())
    }

    /// Builds the validated [`ServiceConfig`] from the `service` section.
    ///
    /// # Errors
    /// Propagates [`ServiceConfigBuilder::build`] validation failures.
    pub fn service_config(&self) -> ThriftyResult<ServiceConfig> {
        let s = &self.service;
        ServiceConfig::builder()
            .sla_policy(SlaPolicy {
                tolerance: s.sla_tolerance,
            })
            .sla_p(s.sla_p)
            .elastic_scaling(s.elastic_scaling)
            .monitor_window_ms(s.monitor_window_ms)
            .scaling_epoch_ms(s.scaling_epoch_ms)
            .scaling_check_interval_ms(s.scaling_check_interval_ms)
            .telemetry(TelemetryConfig::default().with_event_capacity(s.event_capacity))
            .build()
    }

    /// The initial deployment plan described by `groups`.
    pub fn deployment_plan(&self) -> DeploymentPlan {
        DeploymentPlan {
            groups: self
                .groups
                .iter()
                .map(|g| {
                    TenantGroupPlan::new(
                        g.members
                            .iter()
                            .map(|m| Tenant::new(TenantId(m.id), m.nodes, m.data_gb))
                            .collect(),
                        g.replication,
                        g.tuning_nodes,
                    )
                })
                .collect(),
        }
    }

    /// The template catalog as simulator profiles.
    pub fn query_templates(&self) -> Vec<QueryTemplate> {
        self.templates
            .iter()
            .map(|t| QueryTemplate::new(TemplateId(t.id), t.cost_ms_per_gb, t.serial_fraction))
            .collect()
    }

    /// The advisor configuration the re-consolidation controller plans
    /// with.
    pub fn advisor_config(&self) -> AdvisorConfig {
        let r = &self.reconsolidation;
        AdvisorConfig {
            replication: r.replication,
            sla_p: r.sla_p,
            epoch: EpochConfig::new(r.epoch_ms, r.window_ms),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_example_config_round_trips_and_validates() {
        let cfg = DaemonConfig::example();
        cfg.validate().unwrap();
        let text = serde_json::to_string_pretty(&cfg).unwrap();
        let back: DaemonConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn validation_rejects_duplicate_tenants_and_undersized_tuning() {
        let mut cfg = DaemonConfig::example();
        cfg.groups[1].members[0].id = cfg.groups[0].members[0].id;
        assert!(matches!(cfg.validate(), Err(DaemonError::Config(_))));

        let mut cfg = DaemonConfig::example();
        cfg.groups[0].members[0].nodes = 8;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("tuning_nodes"), "{err}");
    }

    #[test]
    fn validation_routes_service_knobs_through_the_builder() {
        let mut cfg = DaemonConfig::example();
        cfg.service.sla_p = 1.5;
        assert!(matches!(cfg.validate(), Err(DaemonError::Service(_))));
    }

    #[test]
    fn the_plan_mirrors_the_groups_section() {
        let cfg = DaemonConfig::example();
        let plan = cfg.deployment_plan();
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0].replication(), 2);
        assert_eq!(plan.groups[0].members.len(), 2);
    }
}
