//! # thrifty-daemon — the `thriftyd` control plane
//!
//! Everything else in this workspace runs as a batch replay that exits;
//! this crate turns the library into an *operable service* in the spirit
//! of the paper's always-on provider. The `thriftyd` binary hosts a
//! [`thrifty::service::ThriftyService`] plus its
//! [`Reconsolidator`](thrifty::reconsolidation::Reconsolidator) behind a
//! [`ClockSource`](thrifty::clock::ClockSource) adapter and drives them
//! from a single-threaded event loop:
//!
//! * **Clock adapter** — the core stays clock-free (lint rule L2); this
//!   crate is the one place allowed to read ambient time. The daemon runs
//!   on [`WallClock`](clock::WallClock) in production and on
//!   [`SimClock`](thrifty::clock::SimClock) under `--sim-clock`, where
//!   time moves only via explicit `advance` requests — which is what
//!   makes the daemon path byte-comparable to a direct library replay.
//! * **Operator protocol** — line-delimited JSON over a unix socket
//!   ([`protocol`]): `status`, `tenant register`/`deregister`, `cutover
//!   status`, `telemetry` (the full
//!   [`TelemetrySnapshot`](thrifty::telemetry::TelemetrySnapshot)),
//!   `reload`, `stop`.
//! * **Config hot-reload** — on `SIGHUP` or a `reload` request the daemon
//!   re-reads its JSON config ([`config::DaemonConfig`]), re-validates the
//!   service section through `ServiceConfigBuilder`, applies the safe
//!   knob subset via
//!   [`ThriftyService::apply_config`](thrifty::service::ThriftyService::apply_config),
//!   and reports the rejected rest with structured reasons.
//!
//! The library half of the crate ([`runtime::DaemonCore`]) is
//! socket-free and clock-generic so tests and the `fault_fuzz --daemon`
//! harness can host the identical event loop deterministically.

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod config;
pub mod error;
pub mod protocol;
pub mod runtime;
pub mod server;
pub mod signal;

pub use client::DaemonClient;
pub use config::DaemonConfig;
pub use error::{DaemonError, DaemonResult};
pub use runtime::DaemonCore;
