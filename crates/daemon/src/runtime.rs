//! The daemon core: a hosted [`ThriftyService`] plus its
//! [`Reconsolidator`], stepped by a [`ClockSource`] and commanded through
//! [`Request`]s.
//!
//! [`DaemonCore`] is transport-free — the unix-socket server, the fuzz
//! harness, and in-process tests all drive the same `tick`/`handle`
//! pair, which is what makes the daemon path byte-comparable to direct
//! library use: under a [`SimClock`](thrifty::clock::SimClock) the only
//! way time moves is an explicit `Advance`/`Quiesce` request, so a
//! request sequence *is* a deterministic schedule.

use crate::config::{DaemonConfig, TenantSection};
use crate::error::{DaemonError, DaemonResult};
use crate::protocol::{
    CutoverView, Envelope, GroupStatus, RejectedSection, ReloadView, Reply, Request, ServiceKnobs,
    StatusView, TenantStatus,
};
use mppdb_sim::node::NodeId;
use mppdb_sim::query::QueryTemplate;
use mppdb_sim::time::{SimDuration, SimTime};
use std::path::PathBuf;
use thrifty::clock::ClockSource;
use thrifty::error::ThriftyError;
use thrifty::prelude::*;

/// The daemon's hosted state and request dispatcher.
pub struct DaemonCore {
    config: DaemonConfig,
    config_path: Option<PathBuf>,
    catalog: Vec<QueryTemplate>,
    service: ThriftyService,
    recon: Reconsolidator,
    clock: Box<dyn ClockSource>,
    /// Log-time instant (ms) the clock's zero maps to: deployment ends at
    /// a non-zero log instant (bulk loads), and the clock starts there.
    epoch_ms: u64,
    stopping: bool,
}

impl DaemonCore {
    /// Validates `config`, deploys the initial plan, and anchors `clock`
    /// at the deployment-ready instant. `config_path` enables file-based
    /// `Reload`; pass `None` for in-process harnesses that reload via
    /// [`DaemonCore::reload_from`].
    ///
    /// # Errors
    /// Config validation and deployment failures.
    pub fn from_config(
        config: DaemonConfig,
        config_path: Option<PathBuf>,
        clock: Box<dyn ClockSource>,
    ) -> DaemonResult<Self> {
        config.validate()?;
        let service = ThriftyService::deploy(
            &config.deployment_plan(),
            config.cluster.total_nodes,
            config.query_templates(),
            config.service_config()?,
        )?;
        let recon =
            Reconsolidator::new(config.advisor_config(), config.reconsolidation.interval_ms);
        let epoch_ms = service.log_now().as_ms();
        let catalog = config.query_templates();
        Ok(DaemonCore {
            config,
            config_path,
            catalog,
            service,
            recon,
            clock,
            epoch_ms,
            stopping: false,
        })
    }

    /// Whether a `Stop` request has completed its drain; the transport
    /// should send the pending reply and exit.
    pub fn stopping(&self) -> bool {
        self.stopping
    }

    /// The configuration currently in force (deploy-time sections as
    /// deployed, `service` knobs tracking accepted hot-reloads).
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Whether the daemon runs on a simulated clock (time moves only via
    /// `Advance`/`Quiesce` requests).
    pub fn is_simulated(&self) -> bool {
        self.clock.is_simulated()
    }

    /// Immutable view of the hosted service, for harness invariants.
    pub fn service(&self) -> &ThriftyService {
        &self.service
    }

    /// One event-loop turn: syncs service log time to the clock and, when
    /// the config asks for automatic cadence, lets the re-consolidation
    /// controller evaluate due instants. Under a simulated clock that
    /// never self-advances this is a no-op, which is exactly the
    /// determinism contract.
    ///
    /// # Errors
    /// Propagates service stepping failures (these are daemon-fatal: the
    /// timeline cannot regress or partially apply).
    pub fn tick(&mut self) -> DaemonResult<()> {
        let now_ms = self.epoch_ms.saturating_add(self.clock.now_ms());
        if now_ms > self.service.log_now().as_ms() {
            self.service.advance_log_time(SimTime::from_ms(now_ms))?;
        }
        if self.config.reconsolidation.auto {
            self.recon.maybe_cycle(&mut self.service)?;
        }
        Ok(())
    }

    /// Dispatches one request, never panicking on operator input: every
    /// failure comes back as a structured error envelope.
    pub fn handle(&mut self, req: &Request) -> Envelope {
        match self.dispatch(req) {
            Ok(reply) => Envelope::ok(reply),
            Err(e) => envelope_err(&e),
        }
    }

    fn dispatch(&mut self, req: &Request) -> DaemonResult<Reply> {
        match req {
            Request::Ping => Ok(Reply::Pong),
            Request::Status => Ok(Reply::Status(self.status_view())),
            Request::CutoverStatus => Ok(Reply::Cutover(self.cutover_view())),
            Request::Telemetry => Ok(Reply::Telemetry(self.service.telemetry_snapshot())),
            Request::Report => {
                let json = serde_json::to_string(&self.service.report())?;
                Ok(Reply::Report { json })
            }
            Request::LiveTenants => Ok(Reply::Tenants {
                ids: self.service.live_tenants().iter().map(|t| t.0).collect(),
            }),
            Request::Register(t) => self.register(t),
            Request::Deregister { id } => {
                self.service.deregister_tenant(TenantId(*id))?;
                Ok(Reply::Deregistered { id: *id })
            }
            Request::Submit {
                tenant,
                template,
                data_gb,
                nodes,
            } => self.submit(*tenant, *template, *data_gb, *nodes),
            Request::InjectFailure { node } => {
                let at = self.service.log_now();
                self.service.inject_node_failure(NodeId(*node), at)?;
                Ok(Reply::FailureInjected { node: *node })
            }
            Request::Advance { ms } => self.advance(*ms, false),
            Request::Quiesce { ms } => self.advance(*ms, true),
            Request::Cycle => Ok(Reply::Cycled {
                started: self.try_cycle()?,
            }),
            Request::Reload => Ok(Reply::Reloaded(self.reload()?)),
            Request::Stop => {
                self.service.drain()?;
                self.stopping = true;
                Ok(Reply::Stopping {
                    records: self.service.records().len() as u64,
                })
            }
        }
    }

    fn register(&mut self, t: &TenantSection) -> DaemonResult<Reply> {
        if t.nodes == 0 {
            return Err(DaemonError::Config(format!(
                "tenant {} requests zero nodes",
                t.id
            )));
        }
        if !(t.data_gb.is_finite() && t.data_gb > 0.0) {
            return Err(DaemonError::Config(format!(
                "tenant {} data_gb must be finite and positive",
                t.id
            )));
        }
        self.service
            .register_tenant(Tenant::new(TenantId(t.id), t.nodes, t.data_gb))?;
        Ok(Reply::Registered { id: t.id })
    }

    fn submit(
        &mut self,
        tenant: u32,
        template: u32,
        data_gb: f64,
        nodes: u32,
    ) -> DaemonResult<Reply> {
        if nodes == 0 {
            return Err(DaemonError::Config(
                "submit: baseline nodes must be non-zero".to_string(),
            ));
        }
        if !(data_gb.is_finite() && data_gb > 0.0) {
            return Err(DaemonError::Config(
                "submit: data_gb must be finite and positive".to_string(),
            ));
        }
        let Some(tpl) = self.catalog.iter().find(|t| t.id.0 == template) else {
            return Err(DaemonError::Service(ThriftyError::UnknownTemplate(
                mppdb_sim::query::TemplateId(template),
            )));
        };
        let baseline = SimDuration::from_ms_f64(mppdb_sim::cost::isolated_latency_ms(
            tpl,
            data_gb,
            nodes as usize,
        ));
        self.service.submit(IncomingQuery {
            tenant: TenantId(tenant),
            submit: self.service.log_now(),
            template: tpl.id,
            baseline,
        })?;
        Ok(Reply::Submitted)
    }

    fn advance(&mut self, ms: u64, quiesce: bool) -> DaemonResult<Reply> {
        if !self.clock.advance(ms) {
            return Err(DaemonError::Protocol(
                "this daemon runs on the wall clock; advance/quiesce apply only to \
                 --sim-clock daemons"
                    .to_string(),
            ));
        }
        let target = SimTime::from_ms(self.epoch_ms.saturating_add(self.clock.now_ms()));
        if quiesce {
            self.service.run_until_quiescent_at(target)?;
        } else {
            self.service.advance_log_time(target)?;
        }
        if self.config.reconsolidation.auto {
            self.recon.maybe_cycle(&mut self.service)?;
        }
        Ok(Reply::Advanced {
            log_now_ms: self.service.log_now().as_ms(),
        })
    }

    /// The manual-cadence cycle attempt (mirrors the lifecycle fuzz
    /// harness): plan from observed activity, skip no-ops, and treat a
    /// pool too tight to double-run as a clean "not started".
    fn try_cycle(&mut self) -> DaemonResult<bool> {
        if self.service.reconsolidation_active() || self.service.has_pending_registrations() {
            return Ok(false);
        }
        let plan = self.recon.plan(&self.service);
        if plan.is_noop() {
            return Ok(false);
        }
        match self.service.begin_reconsolidation(&plan) {
            Ok(()) => Ok(true),
            Err(ThriftyError::Sim(mppdb_sim::error::SimError::InsufficientNodes { .. })) => {
                Ok(false)
            }
            Err(e) => Err(DaemonError::Service(e)),
        }
    }

    /// Re-reads the config file and hot-applies the safe subset.
    ///
    /// # Errors
    /// [`DaemonError::Config`] when the daemon was started without a
    /// file; I/O, parse, and validation failures leave the running
    /// configuration untouched.
    pub fn reload(&mut self) -> DaemonResult<ReloadView> {
        let Some(path) = self.config_path.clone() else {
            return Err(DaemonError::Config(
                "daemon was started without a config file; nothing to reload".to_string(),
            ));
        };
        let candidate = DaemonConfig::load(&path)?;
        self.reload_from(candidate)
    }

    /// Applies a pre-parsed candidate configuration: deploy-time sections
    /// that differ are refused wholesale with reasons, the `service`
    /// section goes through [`ThriftyService::apply_config`] (which
    /// itself splits applied from rejected knobs), and the stored config
    /// adopts exactly the knobs that took effect.
    ///
    /// # Errors
    /// Validation failures reject the whole candidate and change nothing.
    pub fn reload_from(&mut self, candidate: DaemonConfig) -> DaemonResult<ReloadView> {
        candidate.validate()?;
        let mut rejected_sections = Vec::new();
        let mut refuse = |section: &str, reason: &str| {
            rejected_sections.push(RejectedSection {
                section: section.to_string(),
                reason: reason.to_string(),
            });
        };
        if candidate.cluster != self.config.cluster {
            refuse(
                "cluster",
                "the node pool is provisioned at deploy; resizing requires a restart",
            );
        }
        if candidate.templates != self.config.templates {
            refuse(
                "templates",
                "the template catalog anchors SLA baselines of queries already recorded; \
                 changing it requires a restart",
            );
        }
        if candidate.groups != self.config.groups {
            refuse(
                "groups",
                "the initial deployment is live; placement changes flow through \
                 re-consolidation cycles, not reload",
            );
        }
        if candidate.reconsolidation != self.config.reconsolidation {
            refuse(
                "reconsolidation",
                "the controller cadence and advisor horizon are part of the deployed \
                 timeline; changing them requires a restart",
            );
        }
        if candidate.daemon != self.config.daemon {
            refuse(
                "daemon",
                "event-loop pacing is fixed at startup; restart to change tick_ms",
            );
        }

        let delta = self.service.apply_config(candidate.service_config()?)?;
        // Adopt only what took effect: the live knobs from the candidate,
        // the deploy-time service knobs (monitor window, event ring) from
        // the running config.
        let live = self.service.config();
        self.config.service.sla_tolerance = live.sla_policy.tolerance;
        self.config.service.sla_p = live.sla_p;
        self.config.service.elastic_scaling = live.elastic_scaling;
        self.config.service.scaling_epoch_ms = live.scaling_epoch_ms;
        self.config.service.scaling_check_interval_ms = live.scaling_check_interval_ms;
        Ok(ReloadView {
            delta,
            rejected_sections,
        })
    }

    /// The full status view.
    pub fn status_view(&self) -> StatusView {
        let service = &self.service;
        let log_now_ms = service.log_now().as_ms();
        let tenants: Vec<TenantStatus> = service
            .live_tenants()
            .into_iter()
            .map(|id| {
                let group = service.group_of(id);
                let routable = group.is_some_and(|gi| {
                    !service.group_is_retired(gi)
                        && service.group_instances(gi).map_or(0, <[_]>::len) > 0
                });
                TenantStatus {
                    id: id.0,
                    group,
                    parked: service.is_parked(id),
                    routable,
                }
            })
            .collect();
        let groups: Vec<GroupStatus> = (0..service.group_count())
            .map(|gi| GroupStatus {
                index: gi,
                members: service
                    .group_members(gi)
                    .unwrap_or_default()
                    .iter()
                    .map(|t| t.0)
                    .collect(),
                instances: service.group_instances(gi).map_or(0, <[_]>::len),
                node_size: service.group_node_size(gi).unwrap_or(0),
                retired: service.group_is_retired(gi),
                scale_out: service.group_is_scale_out(gi),
            })
            .collect();
        let cfg = service.config();
        StatusView {
            clock: if self.clock.is_simulated() {
                "sim".to_string()
            } else {
                "wall".to_string()
            },
            log_epoch_ms: self.epoch_ms,
            log_now_ms,
            uptime_ms: log_now_ms.saturating_sub(self.epoch_ms),
            all_routable: tenants.iter().all(|t| t.routable || t.parked),
            pending_registrations: service.has_pending_registrations(),
            reconsolidation_active: service.reconsolidation_active(),
            cycles_completed: service.reconsolidation_cycles(),
            tenants,
            groups,
            service: ServiceKnobs {
                sla_tolerance: cfg.sla_policy.tolerance,
                sla_p: cfg.sla_p,
                elastic_scaling: cfg.elastic_scaling,
                monitor_window_ms: cfg.monitor_window_ms,
                scaling_epoch_ms: cfg.scaling_epoch_ms,
                scaling_check_interval_ms: cfg.scaling_check_interval_ms,
            },
        }
    }

    /// The re-consolidation / cutover view.
    pub fn cutover_view(&self) -> CutoverView {
        let skips = self.recon.skip_counts();
        CutoverView {
            active: self.service.reconsolidation_active(),
            cycles_completed: self.service.reconsolidation_cycles(),
            retiring_groups: (0..self.service.group_count())
                .filter(|&gi| self.service.group_is_retired(gi))
                .collect(),
            next_due_ms: self.recon.next_due_ms(),
            interval_ms: self.recon.interval_ms(),
            window_ms: self.recon.window_ms(),
            evaluations: self.recon.evaluations(),
            cycles_planned: self.recon.cycles_planned(),
            skipped_busy: skips.busy,
            skipped_noop: skips.noop,
            skipped_insufficient_nodes: skips.insufficient_nodes,
            skipped_deferred: skips.deferred,
            moves_deferred: self.recon.moves_deferred(),
            builds_capped: self.recon.builds_capped(),
            adaptations: self.recon.adaptations(),
        }
    }
}

/// A structured error envelope with a stable kind per error class.
fn envelope_err(e: &DaemonError) -> Envelope {
    match e {
        DaemonError::Io(_) => Envelope::err("io", e.to_string()),
        DaemonError::Json(_) => Envelope::err("parse", e.to_string()),
        DaemonError::Config(_) => Envelope::err("invalid-config", e.to_string()),
        DaemonError::Service(se) => Envelope::service_err(se),
        DaemonError::Protocol(_) => Envelope::err("clock", e.to_string()),
        DaemonError::Remote { kind, message } => Envelope::err(kind, message.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty::clock::SimClock;

    fn sim_core() -> DaemonCore {
        let mut cfg = DaemonConfig::example();
        cfg.reconsolidation.auto = false;
        DaemonCore::from_config(cfg, None, Box::new(SimClock::default())).unwrap()
    }

    #[test]
    fn a_sim_core_moves_time_only_on_request() {
        let mut core = sim_core();
        let before = core.status_view().log_now_ms;
        core.tick().unwrap();
        core.tick().unwrap();
        assert_eq!(core.status_view().log_now_ms, before);
        let Reply::Advanced { log_now_ms } =
            core.dispatch(&Request::Advance { ms: 60_000 }).unwrap()
        else {
            panic!("expected Advanced");
        };
        assert_eq!(log_now_ms, before + 60_000);
    }

    #[test]
    fn the_full_round_trip_register_reload_stop() {
        let mut core = sim_core();
        assert!(matches!(
            core.dispatch(&Request::Ping).unwrap(),
            Reply::Pong
        ));
        // Register parks, then a quiesce makes the tenant live.
        core.dispatch(&Request::Register(TenantSection {
            id: 50,
            nodes: 2,
            data_gb: 40.0,
        }))
        .unwrap();
        core.dispatch(&Request::Quiesce { ms: 3_600_000 }).unwrap();
        let status = core.status_view();
        assert!(status.tenants.iter().any(|t| t.id == 50));
        assert!(status.all_routable);

        // Hot-reload: one live knob applied, one deploy-time knob
        // rejected by the service, one section refused by the daemon.
        let mut candidate = core.config().clone();
        candidate.reconsolidation.auto = false; // match the running core
        candidate.service.sla_p = 0.99;
        candidate.service.monitor_window_ms = 8 * 3_600_000;
        candidate.cluster.total_nodes = 40;
        let view = core.reload_from(candidate).unwrap();
        assert_eq!(view.delta.applied.len(), 1);
        assert_eq!(view.delta.rejected.len(), 1);
        assert_eq!(view.rejected_sections.len(), 1);
        assert_eq!(view.rejected_sections[0].section, "cluster");
        let knobs = core.status_view().service;
        assert!((knobs.sla_p - 0.99).abs() < 1e-12);
        assert_eq!(knobs.monitor_window_ms, 4 * 3_600_000);

        // An invalid candidate changes nothing.
        let mut bad = core.config().clone();
        bad.service.sla_p = 7.0;
        assert!(core.reload_from(bad).is_err());
        assert!((core.status_view().service.sla_p - 0.99).abs() < 1e-12);

        let Reply::Stopping { .. } = core.dispatch(&Request::Stop).unwrap() else {
            panic!("expected Stopping");
        };
        assert!(core.stopping());
    }

    #[test]
    fn wall_daemons_reject_manual_time_and_unknown_templates_fail_cleanly() {
        let mut cfg = DaemonConfig::example();
        cfg.reconsolidation.auto = false;
        let mut core =
            DaemonCore::from_config(cfg, None, Box::new(crate::clock::WallClock::new())).unwrap();
        let env = core.handle(&Request::Advance { ms: 1_000 });
        assert!(!env.ok);
        assert_eq!(env.error.unwrap().kind, "clock");

        let env = core.handle(&Request::Submit {
            tenant: 0,
            template: 99,
            data_gb: 10.0,
            nodes: 2,
        });
        assert!(!env.ok);
        assert_eq!(env.error.unwrap().kind, "unknown-template");
    }
}
