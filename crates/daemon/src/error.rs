//! Error chain of the daemon: configuration, transport, protocol, and
//! service failures, each preserving its source.

use std::fmt;

/// Convenience alias used across the daemon crate.
pub type DaemonResult<T> = Result<T, DaemonError>;

/// Anything that can go wrong hosting or speaking to a `thriftyd`.
#[derive(Debug)]
#[non_exhaustive]
pub enum DaemonError {
    /// Socket/file I/O failed.
    Io(std::io::Error),
    /// A JSON payload could not be encoded or decoded.
    Json(serde_json::Error),
    /// The daemon configuration is structurally invalid (before it ever
    /// reaches the service layer). Carries a human-readable description.
    Config(String),
    /// The hosted service refused an operation.
    Service(thrifty::error::ThriftyError),
    /// The peer broke the wire protocol (unexpected reply shape, closed
    /// connection mid-request).
    Protocol(String),
    /// The daemon answered with a structured error.
    Remote {
        /// Stable machine-readable kind (e.g. `invalid-config`).
        kind: String,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "i/o: {e}"),
            DaemonError::Json(e) => write!(f, "json: {e}"),
            DaemonError::Config(msg) => write!(f, "config: {msg}"),
            DaemonError::Service(e) => write!(f, "service: {e}"),
            DaemonError::Protocol(msg) => write!(f, "protocol: {msg}"),
            DaemonError::Remote { kind, message } => write!(f, "remote [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Json(e) => Some(e),
            DaemonError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<serde_json::Error> for DaemonError {
    fn from(e: serde_json::Error) -> Self {
        DaemonError::Json(e)
    }
}

impl From<thrifty::error::ThriftyError> for DaemonError {
    fn from(e: thrifty::error::ThriftyError) -> Self {
        DaemonError::Service(e)
    }
}

/// Stable machine-readable kind for a service error, carried in wire
/// error envelopes so operators and harnesses can branch without parsing
/// prose.
pub fn service_error_kind(e: &thrifty::error::ThriftyError) -> &'static str {
    use thrifty::error::ThriftyError as E;
    match e {
        E::ClusterTooSmall { .. } => "cluster-too-small",
        E::EmptyPlan => "empty-plan",
        E::UnknownTemplate(_) => "unknown-template",
        E::UnknownTenant(_) => "unknown-tenant",
        E::DuplicateTenant(_) => "duplicate-tenant",
        E::NotDeployed => "not-deployed",
        E::NoRunningQuery { .. } => "no-running-query",
        E::InvalidConfig(_) => "invalid-config",
        E::Internal(_) => "internal",
        E::Sim(_) => "sim",
        _ => "service",
    }
}
