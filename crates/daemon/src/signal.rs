//! Minimal `SIGHUP` latch for config hot-reload.
//!
//! The workspace builds offline with no `libc`/`signal-hook` crates, so
//! the handler is registered through the C library's `signal(2)` symbol
//! directly — the handler itself only flips an atomic flag, which is
//! async-signal-safe, and the event loop polls the latch between turns.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGHUP_PENDING: AtomicBool = AtomicBool::new(false);

/// `SIGHUP`'s number on every platform this daemon targets (POSIX).
const SIGHUP: i32 = 1;

extern "C" fn on_sighup(_signum: i32) {
    SIGHUP_PENDING.store(true, Ordering::SeqCst);
}

/// Installs the `SIGHUP` → reload latch. Call once at daemon startup; on
/// non-unix targets this is a no-op and reload stays available through
/// the `reload` request.
pub fn install_sighup() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal` is the C library's handler registration; the
        // handler passed is a valid `extern "C" fn(i32)` for the whole
        // program lifetime and does nothing but store to an atomic.
        unsafe {
            signal(SIGHUP, on_sighup);
        }
    }
}

/// Consumes a pending `SIGHUP`, returning whether one had arrived since
/// the last call.
pub fn take_sighup() -> bool {
    SIGHUP_PENDING.swap(false, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_latch_consumes_once() {
        SIGHUP_PENDING.store(true, Ordering::SeqCst);
        assert!(take_sighup());
        assert!(!take_sighup());
    }
}
