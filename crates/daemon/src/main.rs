//! `thriftyd` — the thrifty control-plane daemon and its operator CLI.
//!
//! One binary serves both roles, deployer-style: `thriftyd start` hosts
//! the service on a unix socket; every other subcommand is a thin client
//! speaking the line-JSON protocol to a running daemon.

use std::path::PathBuf;
use std::process::ExitCode;
use thrifty::clock::SimClock;
use thrifty_daemon::client::DaemonClient;
use thrifty_daemon::clock::WallClock;
use thrifty_daemon::config::DaemonConfig;
use thrifty_daemon::error::DaemonResult;
use thrifty_daemon::runtime::DaemonCore;
use thrifty_daemon::{server, signal};

const USAGE: &str = "\
thriftyd — thrifty analytics-service control-plane daemon

USAGE:
  thriftyd init-config
      Print a ready-to-edit example config (JSON) to stdout.
  thriftyd start --config <file> [--socket <path>] [--sim-clock]
      Host the service. --sim-clock freezes time except for explicit
      advance/quiesce requests (harness + replay mode).
  thriftyd status   [--socket <path>] [--json]
  thriftyd cutover status [--socket <path>] [--json]
  thriftyd telemetry [--socket <path>]
  thriftyd report    [--socket <path>]
  thriftyd ping      [--socket <path>]
  thriftyd reload    [--socket <path>]
  thriftyd stop      [--socket <path>]
  thriftyd tenant register --id <n> --nodes <n> --data-gb <gb> [--socket <path>]
  thriftyd tenant deregister --id <n> [--socket <path>]
  thriftyd submit --tenant <n> --template <n> --data-gb <gb> --nodes <n> [--socket <path>]
  thriftyd inject-failure --node <n> [--socket <path>]
  thriftyd advance --ms <n> [--socket <path>]      (sim-clock daemons)
  thriftyd quiesce --ms <n> [--socket <path>]      (sim-clock daemons)
  thriftyd cycle [--socket <path>]

The socket defaults to $THRIFTYD_SOCKET, then ./thriftyd.sock.
";

/// Parsed command line: flag values by name plus positional words.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = !matches!(name, "sim-clock" | "json");
                if takes_value {
                    let Some(v) = it.next() else {
                        return Err(format!("flag --{name} needs a value"));
                    };
                    flags.push((name.to_string(), Some(v.clone())));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.value(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn required_u32(&self, name: &str) -> Result<u32, String> {
        self.required(name)?
            .parse()
            .map_err(|_| format!("--{name} must be an unsigned integer"))
    }

    fn required_u64(&self, name: &str) -> Result<u64, String> {
        self.required(name)?
            .parse()
            .map_err(|_| format!("--{name} must be an unsigned integer"))
    }

    fn required_f64(&self, name: &str) -> Result<f64, String> {
        self.required(name)?
            .parse()
            .map_err(|_| format!("--{name} must be a number"))
    }

    fn socket(&self) -> PathBuf {
        self.value("socket")
            .map(PathBuf::from)
            .or_else(|| std::env::var_os("THRIFTYD_SOCKET").map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("thriftyd.sock"))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return ExitCode::from(2);
    }
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(msg) => return usage_error(&msg),
    };
    let command: Vec<&str> = args.positional.iter().map(String::as_str).collect();
    let outcome = match command.as_slice() {
        ["init-config"] => init_config(),
        ["start"] => start(&args),
        ["status"] => status(&args),
        ["cutover", "status"] => cutover_status(&args),
        ["telemetry"] => telemetry(&args),
        ["report"] => report(&args),
        ["ping"] => with_client(&args, |c| {
            c.ping()?;
            println!("pong");
            Ok(())
        }),
        ["reload"] => reload(&args),
        ["stop"] => with_client(&args, |c| {
            let records = c.stop()?;
            println!("stopped ({records} SLA records)");
            Ok(())
        }),
        ["tenant", "register"] => tenant_register(&args),
        ["tenant", "deregister"] => with_client(&args, |c| {
            let id = args.required_u32("id").map_err(err_config)?;
            c.deregister(id)?;
            println!("deregistered tenant {id}");
            Ok(())
        }),
        ["submit"] => submit(&args),
        ["inject-failure"] => with_client(&args, |c| {
            let node = args.required_u32("node").map_err(err_config)?;
            c.inject_failure(node)?;
            println!("node {node} failed");
            Ok(())
        }),
        ["advance"] => with_client(&args, |c| {
            let now = c.advance(args.required_u64("ms").map_err(err_config)?)?;
            println!("log time now {now} ms");
            Ok(())
        }),
        ["quiesce"] => with_client(&args, |c| {
            let now = c.quiesce(args.required_u64("ms").map_err(err_config)?)?;
            println!("quiescent at {now} ms");
            Ok(())
        }),
        ["cycle"] => with_client(&args, |c| {
            let started = c.cycle()?;
            println!(
                "{}",
                if started {
                    "cycle started"
                } else {
                    "no cycle needed (no-op plan, busy, or tight pool)"
                }
            );
            Ok(())
        }),
        _ => return usage_error(&format!("unknown command: {}", command.join(" "))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("thriftyd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("thriftyd: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn err_config(msg: String) -> thrifty_daemon::DaemonError {
    thrifty_daemon::DaemonError::Config(msg)
}

fn with_client(
    args: &Args,
    f: impl FnOnce(&mut DaemonClient) -> DaemonResult<()>,
) -> DaemonResult<()> {
    let mut client = DaemonClient::connect(&args.socket())?;
    f(&mut client)
}

fn init_config() -> DaemonResult<()> {
    println!(
        "{}",
        serde_json::to_string_pretty(&DaemonConfig::example())?
    );
    Ok(())
}

fn start(args: &Args) -> DaemonResult<()> {
    let config_path = PathBuf::from(args.required("config").map_err(err_config)?);
    let config = DaemonConfig::load(&config_path)?;
    let clock: Box<dyn thrifty::clock::ClockSource> = if args.has("sim-clock") {
        Box::new(SimClock::default())
    } else {
        Box::new(WallClock::new())
    };
    let core = DaemonCore::from_config(config, Some(config_path), clock)?;
    signal::install_sighup();
    server::serve(core, &args.socket())
}

fn status(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        let view = c.status()?;
        if args.has("json") {
            println!("{}", serde_json::to_string_pretty(&view)?);
            return Ok(());
        }
        println!(
            "clock {} | log {} ms (up {} ms) | tenants {} ({}) | groups {} | cycles {}{}{}",
            view.clock,
            view.log_now_ms,
            view.uptime_ms,
            view.tenants.len(),
            if view.all_routable {
                "all routable"
            } else {
                "NOT all routable"
            },
            view.groups.len(),
            view.cycles_completed,
            if view.reconsolidation_active {
                " | cycle ACTIVE"
            } else {
                ""
            },
            if view.pending_registrations {
                " | registrations pending"
            } else {
                ""
            },
        );
        for t in &view.tenants {
            println!(
                "  tenant {:>4}  group {:<8} {}{}",
                t.id,
                t.group.map_or_else(|| "-".to_string(), |g| g.to_string()),
                if t.routable { "routable" } else { "unroutable" },
                if t.parked { " (parked)" } else { "" },
            );
        }
        for g in &view.groups {
            println!(
                "  group {:>3}  members {:<3} replicas {:<2} x {:>2} nodes{}{}",
                g.index,
                g.members.len(),
                g.instances,
                g.node_size,
                if g.retired { "  retired" } else { "" },
                if g.scale_out { "  scale-out" } else { "" },
            );
        }
        Ok(())
    })
}

fn cutover_status(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        let view = c.cutover_status()?;
        if args.has("json") {
            println!("{}", serde_json::to_string_pretty(&view)?);
            return Ok(());
        }
        println!(
            "cycles {} | next due {} ms (interval {} ms, window {} ms) | evaluations {}{}",
            view.cycles_completed,
            view.next_due_ms,
            view.interval_ms,
            view.window_ms,
            view.evaluations,
            if view.active { " | ACTIVE" } else { "" },
        );
        println!(
            "  skips: busy {} noop {} tight-pool {} deferred {} | \
             moves deferred {} builds capped {} adaptations {}",
            view.skipped_busy,
            view.skipped_noop,
            view.skipped_insufficient_nodes,
            view.skipped_deferred,
            view.moves_deferred,
            view.builds_capped,
            view.adaptations,
        );
        if !view.retiring_groups.is_empty() {
            println!("  retiring groups: {:?}", view.retiring_groups);
        }
        Ok(())
    })
}

fn telemetry(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        let snapshot = c.telemetry()?;
        println!("{}", serde_json::to_string_pretty(&snapshot)?);
        Ok(())
    })
}

fn report(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        println!("{}", c.report_json()?);
        Ok(())
    })
}

fn reload(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        let view = c.reload()?;
        for k in &view.delta.applied {
            println!("applied  {}: {} -> {}", k.knob, k.from, k.to);
        }
        for r in &view.delta.rejected {
            println!(
                "rejected {}: {} -> {} ({})",
                r.change.knob, r.change.from, r.change.to, r.reason
            );
        }
        for s in &view.rejected_sections {
            println!("rejected section {}: {}", s.section, s.reason);
        }
        if view.delta.is_noop() && view.rejected_sections.is_empty() {
            println!("config unchanged");
        }
        Ok(())
    })
}

fn tenant_register(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        let id = args.required_u32("id").map_err(err_config)?;
        c.register(
            id,
            args.required_u32("nodes").map_err(err_config)?,
            args.required_f64("data-gb").map_err(err_config)?,
        )?;
        println!("registered tenant {id} (parks on the tuning MPPDB until live)");
        Ok(())
    })
}

fn submit(args: &Args) -> DaemonResult<()> {
    with_client(args, |c| {
        c.submit(
            args.required_u32("tenant").map_err(err_config)?,
            args.required_u32("template").map_err(err_config)?,
            args.required_f64("data-gb").map_err(err_config)?,
            args.required_u32("nodes").map_err(err_config)?,
        )?;
        println!("submitted");
        Ok(())
    })
}
