//! End-to-end smoke of the real `thriftyd` binary over its unix socket:
//! start → status → register → routable → hot-reload (one knob applied,
//! one rejected, one section refused) → telemetry reconciliation → stop
//! drains and exits 0. The full round trip runs under `--sim-clock`
//! (bulk loads take ~100 log-seconds, which `quiesce` crosses
//! instantly); a second test proves the wall-clock daemon serves and
//! rejects manual time.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use thrifty_daemon::client::DaemonClient;
use thrifty_daemon::config::DaemonConfig;
use thrifty_daemon::error::DaemonError;

/// Kills the daemon on drop so a failing assertion cannot leak a
/// process or a socket.
struct DaemonGuard {
    child: Child,
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct TestBed {
    dir: PathBuf,
    config_path: PathBuf,
    socket: PathBuf,
}

impl TestBed {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("thriftyd-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TestBed {
            config_path: dir.join("thriftyd.json"),
            socket: dir.join("thriftyd.sock"),
            dir,
        }
    }

    fn write_config(&self, cfg: &DaemonConfig) {
        std::fs::write(
            &self.config_path,
            serde_json::to_string_pretty(cfg).unwrap(),
        )
        .unwrap();
    }

    fn start(&self, sim_clock: bool) -> DaemonGuard {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_thriftyd"));
        cmd.arg("start")
            .arg("--config")
            .arg(&self.config_path)
            .arg("--socket")
            .arg(&self.socket)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if sim_clock {
            cmd.arg("--sim-clock");
        }
        DaemonGuard {
            child: cmd.spawn().expect("spawn thriftyd"),
        }
    }

    fn connect(&self) -> DaemonClient {
        DaemonClient::connect_with_retry(&self.socket, 200, 25).expect("daemon comes up")
    }
}

impl Drop for TestBed {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn base_config() -> DaemonConfig {
    let mut cfg = DaemonConfig::example();
    cfg.daemon.tick_ms = 5;
    cfg
}

/// Stops via the client and asserts the daemon process exits 0 and
/// removes its socket.
fn stop_and_reap(client: &mut DaemonClient, bed: &TestBed, mut guard: DaemonGuard) {
    client.stop().expect("stop drains");
    let status = guard.child.wait().expect("daemon reaped");
    assert!(status.success(), "daemon exit status: {status:?}");
    assert!(
        !bed.socket.exists(),
        "socket must be removed on clean shutdown"
    );
}

#[test]
fn sim_clock_full_round_trip() {
    let bed = TestBed::new("sim");
    let mut cfg = base_config();
    cfg.reconsolidation.auto = false;
    bed.write_config(&cfg);
    let guard = bed.start(true);
    let mut client = bed.connect();

    client.ping().expect("ping");
    let status = client.status().expect("status");
    assert_eq!(status.clock, "sim");
    assert_eq!(status.tenants.len(), 4);
    assert!(status.all_routable, "{status:?}");

    // Register: the tenant parks and bulk-loads; an hour of quiesced log
    // time is far beyond the Table 5.1 load latency.
    client.register(50, 2, 60.0).expect("register");
    assert!(client.status().expect("status").pending_registrations);
    client.quiesce(3_600_000).expect("quiesce");
    let status = client.status().expect("status");
    let t50 = status
        .tenants
        .iter()
        .find(|t| t.id == 50)
        .expect("tenant 50 is live");
    assert!(t50.routable, "{status:?}");
    assert!(status.all_routable);

    // The registered tenant serves queries.
    client.submit(50, 2, 30.0, 2).expect("submit");
    client.quiesce(600_000).expect("quiesce");

    // Hot-reload: sla_p is a live knob (applied), monitor_window_ms is
    // deploy-time (rejected by the service), cluster resize is a refused
    // section (rejected by the daemon).
    let mut edited = cfg.clone();
    edited.service.sla_p = 0.99;
    edited.service.monitor_window_ms = 8 * 3_600_000;
    edited.cluster.total_nodes = 40;
    bed.write_config(&edited);
    let view = client.reload().expect("reload");
    assert_eq!(view.delta.applied.len(), 1, "{view:?}");
    assert_eq!(view.delta.applied[0].knob, "sla_p");
    assert_eq!(view.delta.rejected.len(), 1, "{view:?}");
    assert_eq!(view.delta.rejected[0].change.knob, "monitor_window_ms");
    assert_eq!(view.rejected_sections.len(), 1, "{view:?}");
    assert_eq!(view.rejected_sections[0].section, "cluster");
    let knobs = client.status().expect("status").service;
    assert!((knobs.sla_p - 0.99).abs() < 1e-12);
    assert_eq!(knobs.monitor_window_ms, 4 * 3_600_000);

    // An invalid file is rejected wholesale and the daemon keeps serving
    // the previous configuration.
    let mut bad = edited.clone();
    bad.service.sla_p = 7.0;
    bed.write_config(&bad);
    match client.reload() {
        Err(DaemonError::Remote { kind, .. }) => assert_eq!(kind, "invalid-config"),
        other => panic!("invalid reload must fail remotely, got {other:?}"),
    }
    client.ping().expect("daemon survives a bad reload");
    assert!((client.status().expect("status").service.sla_p - 0.99).abs() < 1e-12);

    // Telemetry reconciles with everything this test did.
    let telemetry = client.telemetry().expect("telemetry");
    assert_eq!(telemetry.counter("config.reloads"), 1);
    assert_eq!(telemetry.counter("config.knobs_applied"), 1);
    assert_eq!(telemetry.counter("config.knobs_rejected"), 1);
    assert_eq!(telemetry.counter("tenants.registered"), 1);
    assert_eq!(telemetry.counter("queries.submitted"), 1);
    assert_eq!(telemetry.counter("queries.completed"), 1);

    let cutover = client.cutover_status().expect("cutover status");
    assert!(!cutover.active);
    assert_eq!(cutover.cycles_completed, 0);

    stop_and_reap(&mut client, &bed, guard);
}

#[test]
fn wall_clock_daemon_serves_and_rejects_manual_time() {
    let bed = TestBed::new("wall");
    bed.write_config(&base_config());
    let guard = bed.start(false);
    let mut client = bed.connect();

    client.ping().expect("ping");
    let status = client.status().expect("status");
    assert_eq!(status.clock, "wall");
    assert!(status.all_routable, "{status:?}");

    match client.advance(60_000) {
        Err(DaemonError::Remote { kind, .. }) => assert_eq!(kind, "clock"),
        other => panic!("wall daemons must reject manual time, got {other:?}"),
    }

    stop_and_reap(&mut client, &bed, guard);
}

#[test]
fn init_config_prints_the_example() {
    let out = Command::new(env!("CARGO_BIN_EXE_thriftyd"))
        .arg("init-config")
        .output()
        .expect("init-config runs");
    assert!(out.status.success());
    let parsed: DaemonConfig =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).expect("valid config JSON");
    assert_eq!(parsed, DaemonConfig::example());
}

#[test]
fn a_live_socket_refuses_a_second_daemon() {
    let bed = TestBed::new("claim");
    bed.write_config(&base_config());
    let guard = bed.start(true);
    let mut client = bed.connect();
    client.ping().expect("first daemon serves");

    let out = Command::new(env!("CARGO_BIN_EXE_thriftyd"))
        .arg("start")
        .arg("--config")
        .arg(&bed.config_path)
        .arg("--socket")
        .arg(&bed.socket)
        .arg("--sim-clock")
        .output()
        .expect("second daemon runs to completion");
    assert!(!out.status.success(), "second claim must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already has a live daemon"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    client.ping().expect("first daemon unaffected");
    stop_and_reap(&mut client, &bed, guard);
}
