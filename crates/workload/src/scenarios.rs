//! Adversarial scenario library for the re-consolidation controller.
//!
//! Robust-controller evaluation needs workloads built to *break* a
//! planner, not to flatter it. Each scenario here deviates from the same
//! day-one belief — every tenant active in its home slot (`id % stride`)
//! of each stride cycle — in a way that historically flushes a latent
//! planner bug:
//!
//! * **Steady** — the belief holds. A controller must converge to zero
//!   moves; anything else is self-inflicted churn.
//! * **Flash crowd** — mid-horizon, every tenant wakes at once for a
//!   short burst, then the world reverts. Over-reacting here rebuilds
//!   the fleet for a ten-minute spike.
//! * **Seasonal** (diurnal + weekly) — activity follows compressed
//!   day/night cycles with a quiet weekend. The pattern is stable at the
//!   week scale but looks drifty through a too-short window.
//! * **Correlated activation** — tenants wake in cohorts, so the
//!   concurrency the day-one design spread out re-concentrates.
//! * **Black Friday** — a long sparse stretch, then a sustained all-hands
//!   burst to the horizon: the one time *fast* reaction pays.
//! * **Planner thrash** — pair-concurrency alternates between two
//!   pairings at the planner's observation boundary, so every fixed-
//!   cadence window proposes a different grouping. A controller without
//!   hysteresis ping-pongs tenants forever.
//!
//! Generation is a pure function of [`ScenarioConfig`] (via
//! [`stream_rng`]); the bench crate replays each scenario once per
//! controller arm and compares SLA, cost, and churn.

use crate::rng::stream_rng;
use crate::templates::Benchmark;
use crate::tenant::TenantSpec;
use mppdb_sim::query::{SimTenantId, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Template id reserved for adversarial-scenario queries.
pub const SCENARIO_TEMPLATE: TemplateId = TemplateId(910);

/// The activity shapes of the library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// The day-one belief holds for the whole horizon.
    Steady,
    /// A sudden all-tenant burst mid-horizon, then back to normal.
    FlashCrowd,
    /// Compressed diurnal cycles with a weekly (weekend) dip.
    Seasonal,
    /// Tenants activate together in cohorts.
    CorrelatedActivation,
    /// Sparse activity, then a sustained all-tenant burst to the end.
    BlackFriday,
    /// Pair-concurrency alternates at the observation boundary.
    PlannerThrash,
}

impl ScenarioKind {
    /// Every kind, in presentation order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::Steady,
        ScenarioKind::FlashCrowd,
        ScenarioKind::Seasonal,
        ScenarioKind::CorrelatedActivation,
        ScenarioKind::BlackFriday,
        ScenarioKind::PlannerThrash,
    ];

    /// Stable identifier (report rows, CLI).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Steady => "steady",
            ScenarioKind::FlashCrowd => "flash-crowd",
            ScenarioKind::Seasonal => "seasonal",
            ScenarioKind::CorrelatedActivation => "correlated",
            ScenarioKind::BlackFriday => "black-friday",
            ScenarioKind::PlannerThrash => "thrash",
        }
    }
}

/// Configuration of the scenario generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// The activity shape.
    pub kind: ScenarioKind,
    /// Tenant population (ids `0..tenants`).
    pub tenants: u32,
    /// Nodes each tenant requests (`n_i`).
    pub node_size: u32,
    /// Data per requested node in GB.
    pub gb_per_node: f64,
    /// Activity slot length in ms.
    pub slot_ms: u64,
    /// Home-slot stride of the day-one belief: tenant `i` is active in
    /// slot `i % stride` of each stride cycle.
    pub stride: u32,
    /// End of the log timeline.
    pub horizon_ms: u64,
    /// Per-query template coefficient: dedicated latency is
    /// `query_coef × data_gb / nodes` ms.
    pub query_coef: f64,
    /// Maximum submission jitter inside a slot, ms.
    pub jitter_ms: u64,
}

impl ScenarioConfig {
    /// A compact configuration: 16 two-node tenants on 30-minute slots
    /// over a horizon long enough for every kind's signature phase (two
    /// compressed weeks for the seasonal shape).
    pub fn small(kind: ScenarioKind, seed: u64) -> Self {
        ScenarioConfig {
            seed,
            kind,
            tenants: 16,
            node_size: 2,
            gb_per_node: 10.0,
            slot_ms: 30 * 60_000,
            stride: 4,
            horizon_ms: match kind {
                ScenarioKind::Seasonal => 48 * 3_600_000,
                _ => 24 * 3_600_000,
            },
            query_coef: 12_000.0,
            jitter_ms: 20_000,
        }
    }
}

/// One query submission of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioQuery {
    /// The submitting tenant.
    pub tenant: SimTenantId,
    /// Submission instant on the log timeline.
    pub submit: SimTime,
    /// The template ([`SCENARIO_TEMPLATE`]).
    pub template: TemplateId,
    /// The tenant's dedicated-MPPDB latency for this query (the SLA).
    pub baseline: SimDuration,
}

/// The generated scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdversarialScenario {
    /// The configuration it was generated from.
    pub config: ScenarioConfig,
    /// The tenant population.
    pub tenants: Vec<TenantSpec>,
    /// The day-one activity estimate per tenant — the steady home-slot
    /// shape extended over the whole horizon, what the provider designs
    /// for *regardless of the kind*. Every adversarial kind then deviates
    /// at run time.
    pub design_histories: Vec<(SimTenantId, Vec<(u64, u64)>)>,
    /// All query submissions, ordered by (submit, tenant).
    pub queries: Vec<ScenarioQuery>,
}

impl AdversarialScenario {
    /// Generates the scenario. Deterministic in `config`.
    pub fn generate(config: &ScenarioConfig) -> AdversarialScenario {
        let n = config.tenants.max(2);
        let stride = config.stride.max(1);
        let slot = config.slot_ms.max(1);
        let slots = config.horizon_ms / slot;
        let baseline_ms = (config.query_coef * config.gb_per_node).max(1.0) as u64;

        let tenants: Vec<TenantSpec> = (0..n)
            .map(|id| TenantSpec {
                id: SimTenantId(id),
                nodes: config.node_size,
                data_gb: config.gb_per_node * f64::from(config.node_size),
                benchmark: Benchmark::TpcH,
                offset_hours: 0,
            })
            .collect();

        // Day-one belief: home slot of every stride cycle, whole horizon.
        let mut design_histories = Vec::with_capacity(tenants.len());
        for t in &tenants {
            let mut intervals = Vec::new();
            let mut start = u64::from(t.id.0 % stride) * slot;
            while start < config.horizon_ms {
                let end = (start + baseline_ms)
                    .min(start + slot)
                    .min(config.horizon_ms);
                if end > start {
                    intervals.push((start, end));
                }
                start += slot * u64::from(stride);
            }
            design_histories.push((t.id, intervals));
        }

        // Runtime activity: `queries_in_slot` returns how many queries
        // tenant `i` submits during slot `s` under the scenario's shape.
        let kind = config.kind;
        let crowd = (slots * 2 / 5)..(slots * 2 / 5 + slots / 10).max(slots * 2 / 5 + 1);
        let burst_from = slots * 3 / 4;
        // Seasonal clock: a compressed "day" is three stride cycles (the
        // first two are daytime); a "week" is seven days, the last two
        // the weekend.
        let day_slots = u64::from(stride) * 3;
        let queries_in_slot = |i: u32, s: u64| -> u32 {
            let home = u64::from(i % stride) == s % u64::from(stride);
            match kind {
                ScenarioKind::Steady => u32::from(home),
                ScenarioKind::FlashCrowd => {
                    if crowd.contains(&s) {
                        1
                    } else {
                        u32::from(home)
                    }
                }
                ScenarioKind::Seasonal => {
                    let day = s / day_slots;
                    let daytime = (s % day_slots) < day_slots * 2 / 3;
                    let weekend = day % 7 >= 5;
                    let on_call = i.is_multiple_of(8);
                    u32::from(home && daytime && (!weekend || on_call))
                }
                ScenarioKind::CorrelatedActivation => {
                    let cohort = i / 4;
                    u32::from(u64::from(cohort % stride) == s % u64::from(stride))
                }
                ScenarioKind::BlackFriday => {
                    if s >= burst_from {
                        2
                    } else {
                        u32::from(home && (s / u64::from(stride)).is_multiple_of(2))
                    }
                }
                ScenarioKind::PlannerThrash => {
                    // Phase = one stride cycle; the pairing flips every
                    // phase, so adjacent observation windows see different
                    // conflict graphs — both pair members submit in the
                    // same slot and their queries overlap.
                    let phase = s / u64::from(stride);
                    let pair = if phase.is_multiple_of(2) {
                        i / 2
                    } else {
                        ((i + 1) % n) / 2
                    };
                    u32::from(u64::from(pair % stride) == s % u64::from(stride))
                }
            }
        };

        let mut queries = Vec::new();
        for t in &tenants {
            let mut rng = stream_rng(config.seed, u64::from(t.id.0), 1);
            for s in 0..slots {
                for _ in 0..queries_in_slot(t.id.0, s) {
                    let jitter = if config.jitter_ms == 0 {
                        0
                    } else {
                        rng.gen_range(0..config.jitter_ms)
                    };
                    queries.push(ScenarioQuery {
                        tenant: t.id,
                        submit: SimTime::from_ms(s * slot + jitter),
                        template: SCENARIO_TEMPLATE,
                        baseline: SimDuration::from_ms(baseline_ms),
                    });
                }
            }
        }
        queries.sort_by_key(|q| (q.submit, q.tenant));

        AdversarialScenario {
            config: *config,
            tenants,
            design_histories,
            queries,
        }
    }

    /// The dedicated-MPPDB latency of one scenario query, in ms — also
    /// the linear coefficient to register [`SCENARIO_TEMPLATE`] with.
    pub fn baseline_ms(&self) -> u64 {
        (self.config.query_coef * self.config.gb_per_node).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn gen(kind: ScenarioKind) -> AdversarialScenario {
        AdversarialScenario::generate(&ScenarioConfig::small(kind, 11))
    }

    /// Distinct tenants submitting per slot.
    fn per_slot(s: &AdversarialScenario) -> BTreeMap<u64, BTreeSet<u32>> {
        let mut m: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
        for q in &s.queries {
            m.entry(q.submit.as_ms() / s.config.slot_ms)
                .or_default()
                .insert(q.tenant.0);
        }
        m
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in ScenarioKind::ALL {
            let a = gen(kind);
            let b = gen(kind);
            assert_eq!(a.queries, b.queries, "{}", kind.name());
            assert_eq!(a.design_histories, b.design_histories);
        }
    }

    #[test]
    fn every_kind_produces_queries_and_histories() {
        for kind in ScenarioKind::ALL {
            let s = gen(kind);
            assert!(!s.queries.is_empty(), "{}", kind.name());
            assert_eq!(s.design_histories.len(), s.tenants.len());
            assert!(s
                .design_histories
                .iter()
                .all(|(_, iv)| iv.iter().all(|&(a, b)| b > a)));
            assert!(s
                .queries
                .iter()
                .all(|q| q.submit.as_ms() < s.config.horizon_ms + s.config.jitter_ms));
        }
    }

    #[test]
    fn flash_crowd_spikes_then_reverts() {
        let s = gen(ScenarioKind::FlashCrowd);
        let peak = per_slot(&s).values().map(BTreeSet::len).max().unwrap_or(0);
        assert_eq!(peak, s.config.tenants as usize, "the crowd is everyone");
        // Activity reverts after the crowd: the final slot is home-only.
        let slots = s.config.horizon_ms / s.config.slot_ms;
        let last = per_slot(&s).remove(&(slots - 1)).unwrap_or_default();
        assert!(last.len() <= (s.config.tenants / s.config.stride) as usize);
    }

    #[test]
    fn seasonal_weekend_is_quieter_than_weekdays() {
        let s = gen(ScenarioKind::Seasonal);
        let day_ms = u64::from(s.config.stride) * 3 * s.config.slot_ms;
        let week_ms = day_ms * 7;
        let in_weekend = |ms: u64| (ms % week_ms) / day_ms >= 5;
        let weekend = s
            .queries
            .iter()
            .filter(|q| in_weekend(q.submit.as_ms()))
            .count();
        let weekday = s.queries.len() - weekend;
        assert!(weekend > 0, "the on-call skeleton crew still submits");
        assert!(
            weekday > weekend * 3,
            "weekdays must dominate: {weekday} vs {weekend}"
        );
    }

    #[test]
    fn correlated_cohorts_wake_together() {
        let s = gen(ScenarioKind::CorrelatedActivation);
        for tenants in per_slot(&s).values() {
            for &t in tenants {
                // Whenever a tenant submits, its whole cohort does.
                let cohort = t / 4;
                for member in cohort * 4..(cohort + 1) * 4 {
                    assert!(
                        tenants.contains(&member),
                        "tenant {member} missing from its cohort's slot"
                    );
                }
            }
        }
    }

    #[test]
    fn black_friday_burst_is_sustained_to_the_horizon() {
        let s = gen(ScenarioKind::BlackFriday);
        let slots = s.config.horizon_ms / s.config.slot_ms;
        let burst_from = slots * 3 / 4;
        let m = per_slot(&s);
        for slot in burst_from..slots {
            assert_eq!(
                m.get(&slot).map_or(0, BTreeSet::len),
                s.config.tenants as usize,
                "slot {slot} must be all hands"
            );
        }
        let quiet_peak = m
            .iter()
            .filter(|(&slot, _)| slot < burst_from)
            .map(|(_, t)| t.len())
            .max()
            .unwrap_or(0);
        assert!(quiet_peak < s.config.tenants as usize);
    }

    #[test]
    fn thrash_alternates_the_pairing_every_phase() {
        let s = gen(ScenarioKind::PlannerThrash);
        let stride = u64::from(s.config.stride);
        // In even phases tenants 0 and 1 share a slot; in odd phases
        // tenants 1 and 2 do. Verify with actual co-occurrence.
        let mut even_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut odd_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (slot, tenants) in per_slot(&s) {
            let phase = slot / stride;
            let t: Vec<u32> = tenants.iter().copied().collect();
            for i in 0..t.len() {
                for j in i + 1..t.len() {
                    if phase % 2 == 0 {
                        even_pairs.insert((t[i], t[j]));
                    } else {
                        odd_pairs.insert((t[i], t[j]));
                    }
                }
            }
        }
        assert!(even_pairs.contains(&(0, 1)));
        assert!(odd_pairs.contains(&(1, 2)));
        assert!(!even_pairs.contains(&(1, 2)));
        assert!(!odd_pairs.contains(&(0, 1)));
    }
}
