//! Step 2 of the log generation (§7.1): "Multi-Tenant Log Composition".
//!
//! Given the session library, composes a 30-day activity log per tenant:
//!
//! * Tenant sizes are sampled from a Zipf CDF with parameter θ (default
//!   0.8); a tenant holds TPC-H or TPC-DS data with equal probability.
//! * Each tenant gets a time-zone offset `O` from
//!   {+0, +3, +5, +8, +16, +17, +19} hours (§7.4 scenarios restrict this
//!   set).
//! * On each working day the tenant plays three randomly picked sessions:
//!   morning at `O`, afternoon at `O + 3 + 2` (three hours of morning work
//!   plus a two-hour lunch; no-lunch scenarios use `O + 3`), and an evening
//!   block nine hours after the afternoon start ("report generation
//!   scheduled 6 hours after the office hour and queries posed by users in
//!   remote offices").
//! * Tenants rest on the two weekend days of every week and on two public
//!   holidays, which are shared among tenants of the same time zone.

use crate::activity::merge_intervals;
use crate::config::GenerationConfig;
use crate::library::SessionLibrary;
use crate::log::{MultiTenantLog, QueryEvent, TenantLog};
use crate::rng::stream_rng;
use crate::templates::Benchmark;
use crate::tenant::TenantSpec;
use crate::zipf::ZipfSampler;
use mppdb_sim::query::SimTenantId;
use mppdb_sim::time::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;

const STREAM_TENANT_SPEC: u64 = 0x7E17;
const STREAM_TENANT_DAYS: u64 = 0xDA15;
const STREAM_HOLIDAYS: u64 = 0x401D;

const HOUR_MS: u64 = 3_600_000;
const DAY_MS: u64 = 24 * HOUR_MS;

/// Composes tenant specs and per-tenant logs from a session library.
pub struct Composer<'a> {
    cfg: &'a GenerationConfig,
    library: &'a SessionLibrary,
}

impl<'a> Composer<'a> {
    /// Creates a composer over a generated library.
    pub fn new(cfg: &'a GenerationConfig, library: &'a SessionLibrary) -> Self {
        cfg.validate();
        Composer { cfg, library }
    }

    /// Samples the `T` tenant specs (sizes, benchmark flavour, time zones).
    pub fn tenant_specs(&self) -> Vec<TenantSpec> {
        let zipf = ZipfSampler::new(self.cfg.parallelism_levels.len(), self.cfg.theta);
        let offsets = self.cfg.scenario.offsets();
        (0..self.cfg.tenants)
            .map(|i| {
                let mut rng = stream_rng(self.cfg.seed, STREAM_TENANT_SPEC, i as u64);
                let nodes = self.cfg.parallelism_levels[zipf.sample(&mut rng)];
                let benchmark = if rng.gen_bool(0.5) {
                    Benchmark::TpcH
                } else {
                    Benchmark::TpcDs
                };
                let offset_hours = offsets[rng.gen_range(0..offsets.len())];
                TenantSpec {
                    id: SimTenantId(i as u32),
                    nodes,
                    data_gb: self.cfg.gb_per_node * nodes as f64,
                    benchmark,
                    offset_hours,
                }
            })
            .collect()
    }

    /// The public-holiday weekdays for a time zone (shared by all tenants in
    /// that zone, per §7.1).
    pub fn holidays_for_zone(&self, offset_hours: u64) -> Vec<u64> {
        let workdays: Vec<u64> = (0..self.cfg.horizon_days)
            .filter(|d| d % 7 < self.cfg.workdays_per_week)
            .collect();
        let mut rng = stream_rng(self.cfg.seed, STREAM_HOLIDAYS, offset_hours);
        let mut chosen = Vec::new();
        let wanted = (self.cfg.holidays as usize).min(workdays.len());
        let mut pool = workdays;
        for _ in 0..wanted {
            let idx = rng.gen_range(0..pool.len());
            chosen.push(pool.swap_remove(idx));
        }
        chosen.sort_unstable();
        chosen
    }

    /// The session start offsets (ms from day start) for one working day.
    fn session_starts(&self, offset_hours: u64) -> [u64; 3] {
        let o = offset_hours * HOUR_MS;
        let sess = self.cfg.session_hours * HOUR_MS;
        let lunch = if self.cfg.scenario.has_lunch_break() {
            2 * HOUR_MS
        } else {
            0
        };
        let afternoon = o + sess + lunch;
        let evening = afternoon + 9 * HOUR_MS;
        [o, afternoon, evening]
    }

    fn day_rng(&self, tenant: SimTenantId, day: u64, slot: u64) -> SmallRng {
        stream_rng(
            self.cfg.seed,
            STREAM_TENANT_DAYS ^ (u64::from(tenant.0) << 16),
            day * 8 + slot,
        )
    }

    fn is_working_day(&self, day: u64, holidays: &[u64]) -> bool {
        day % 7 < self.cfg.workdays_per_week && !holidays.contains(&day)
    }

    /// Composes the full query-event log of one tenant.
    pub fn compose_log(&self, spec: &TenantSpec) -> TenantLog {
        let holidays = self.holidays_for_zone(spec.offset_hours);
        let starts = self.session_starts(spec.offset_hours);
        let horizon = self.cfg.horizon_ms();
        let mut events = Vec::new();
        for day in 0..self.cfg.horizon_days {
            if !self.is_working_day(day, &holidays) {
                continue;
            }
            for (slot, &start) in starts.iter().enumerate() {
                let mut rng = self.day_rng(spec.id, day, slot as u64);
                let session = self.library.pick(spec.nodes, spec.benchmark, &mut rng);
                let base = day * DAY_MS + start;
                for q in &session.queries {
                    let submit = base + q.offset.as_ms();
                    if submit >= horizon {
                        continue;
                    }
                    events.push(QueryEvent {
                        tenant: spec.id,
                        submit: SimTime::from_ms(submit),
                        template: q.template,
                        sla_latency: q.latency,
                    });
                }
            }
        }
        events.sort_by_key(|e| e.submit);
        TenantLog {
            spec: *spec,
            events,
        }
    }

    /// Composes only the merged busy intervals of one tenant — equivalent to
    /// `compose_log(spec).busy_intervals()` but without materializing the
    /// event list. This is what the grouping pipeline uses at the
    /// 10 000-tenant scale.
    pub fn busy_intervals(&self, spec: &TenantSpec) -> Vec<(u64, u64)> {
        let holidays = self.holidays_for_zone(spec.offset_hours);
        let starts = self.session_starts(spec.offset_hours);
        let horizon = self.cfg.horizon_ms();
        let mut raw = Vec::new();
        for day in 0..self.cfg.horizon_days {
            if !self.is_working_day(day, &holidays) {
                continue;
            }
            for (slot, &start) in starts.iter().enumerate() {
                let mut rng = self.day_rng(spec.id, day, slot as u64);
                let session = self.library.pick(spec.nodes, spec.benchmark, &mut rng);
                let base = day * DAY_MS + start;
                for &(s, e) in &session.busy {
                    let s = base + s;
                    if s >= horizon {
                        continue;
                    }
                    raw.push((s, (base + e).min(horizon)));
                }
            }
        }
        merge_intervals(raw)
    }

    /// Composes the complete multi-tenant corpus (specs plus full logs).
    /// Prefer [`Self::busy_intervals`] per tenant when only activity
    /// vectors are needed.
    pub fn compose_all(&self) -> MultiTenantLog {
        let specs = self.tenant_specs();
        MultiTenantLog {
            horizon_ms: self.cfg.horizon_ms(),
            tenants: specs.iter().map(|s| self.compose_log(s)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::activity_stats;
    use crate::config::ActivityScenario;

    fn small_setup(tenants: usize) -> (GenerationConfig, SessionLibrary) {
        let mut cfg = GenerationConfig::small(21, tenants);
        cfg.parallelism_levels = vec![2, 4];
        cfg.session_trials = 4;
        let lib = SessionLibrary::generate(&cfg);
        (cfg, lib)
    }

    #[test]
    fn specs_are_deterministic_and_respect_levels() {
        let (cfg, lib) = small_setup(300);
        let c = Composer::new(&cfg, &lib);
        let a = c.tenant_specs();
        let b = c.tenant_specs();
        assert_eq!(a, b);
        assert!(a.iter().all(|s| cfg.parallelism_levels.contains(&s.nodes)));
        assert!(a.iter().all(|s| ActivityScenario::Default
            .offsets()
            .contains(&s.offset_hours)));
        // Zipf: the smallest size must be the most common.
        let small = a.iter().filter(|s| s.nodes == 2).count();
        let large = a.iter().filter(|s| s.nodes == 4).count();
        assert!(small > large, "2-node {small} vs 4-node {large}");
    }

    #[test]
    fn log_and_intervals_agree() {
        let (cfg, lib) = small_setup(4);
        let c = Composer::new(&cfg, &lib);
        for spec in c.tenant_specs() {
            let log = c.compose_log(&spec);
            let direct = c.busy_intervals(&spec);
            assert_eq!(log.busy_intervals(), direct, "tenant {}", spec.id);
        }
    }

    #[test]
    fn weekends_and_holidays_are_inactive() {
        let (cfg, lib) = small_setup(4);
        let c = Composer::new(&cfg, &lib);
        let spec = c.tenant_specs()[0];
        let holidays = c.holidays_for_zone(spec.offset_hours);
        let log = c.compose_log(&spec);
        for e in &log.events {
            let day = e.submit.as_ms() / DAY_MS;
            // Sessions can spill past midnight (the evening block starts up
            // to O+14h and runs 3h+), so a submission on a rest day is only
            // legal if it belongs to a session that started the day before.
            let day_offset = e.submit.as_ms() % DAY_MS;
            let spill = day_offset < 10 * HOUR_MS;
            let working = day % 7 < cfg.workdays_per_week && !holidays.contains(&day);
            assert!(
                working || spill,
                "query at day {day} offset {day_offset} on a rest day"
            );
        }
    }

    #[test]
    fn holidays_are_shared_within_a_zone() {
        let (cfg, lib) = small_setup(4);
        let c = Composer::new(&cfg, &lib);
        let h1 = c.holidays_for_zone(3);
        let h2 = c.holidays_for_zone(3);
        let h3 = c.holidays_for_zone(16);
        assert_eq!(h1, h2);
        assert_eq!(h1.len(), cfg.holidays as usize);
        // Different zones *may* coincide but with 20+ candidate days the
        // seeded draw for zones 3 and 16 differs under this seed.
        assert_ne!(h1, h3);
        for &d in &h1 {
            assert!(d % 7 < cfg.workdays_per_week, "holiday on a weekend");
        }
    }

    #[test]
    fn no_lunch_scenario_shifts_afternoon_earlier() {
        let (mut cfg, lib) = small_setup(4);
        cfg.scenario = ActivityScenario::SingleZoneNoLunch;
        let c = Composer::new(&cfg, &lib);
        let starts = c.session_starts(0);
        assert_eq!(starts[0], 0);
        assert_eq!(starts[1], 3 * HOUR_MS);
        assert_eq!(starts[2], 12 * HOUR_MS);

        cfg.scenario = ActivityScenario::Default;
        let c = Composer::new(&cfg, &lib);
        let starts = c.session_starts(0);
        assert_eq!(starts[1], 5 * HOUR_MS);
        assert_eq!(starts[2], 14 * HOUR_MS);
    }

    #[test]
    fn higher_activity_scenarios_raise_the_active_ratio() {
        let (mut cfg, lib) = small_setup(60);
        let ratio_of = |cfg: &GenerationConfig, lib: &SessionLibrary| {
            let c = Composer::new(cfg, lib);
            let per_tenant: Vec<_> = c
                .tenant_specs()
                .iter()
                .map(|s| c.busy_intervals(s))
                .collect();
            activity_stats(&per_tenant, cfg.horizon_ms()).average_active_ratio
        };
        let base = ratio_of(&cfg, &lib);
        cfg.scenario = ActivityScenario::SingleZoneNoLunch;
        let single = ratio_of(&cfg, &lib);
        // All tenants in one zone does not change the *average* ratio much
        // (it raises concurrency, not per-tenant busy time), but removing the
        // lunch break compresses sessions; the key §7.4 property we must
        // preserve is that *concurrent* activity rises sharply.
        let c_default = {
            cfg.scenario = ActivityScenario::Default;
            let c = Composer::new(&cfg, &lib);
            let per_tenant: Vec<_> = c
                .tenant_specs()
                .iter()
                .map(|s| c.busy_intervals(s))
                .collect();
            activity_stats(&per_tenant, cfg.horizon_ms()).max_concurrent_active
        };
        let c_single = {
            cfg.scenario = ActivityScenario::SingleZoneNoLunch;
            let c = Composer::new(&cfg, &lib);
            let per_tenant: Vec<_> = c
                .tenant_specs()
                .iter()
                .map(|s| c.busy_intervals(s))
                .collect();
            activity_stats(&per_tenant, cfg.horizon_ms()).max_concurrent_active
        };
        assert!(
            c_single > c_default,
            "single-zone concurrency {c_single} must exceed default {c_default} (ratios {base:.3} vs {single:.3})"
        );
    }
}
