//! The session library: the corpus of Step-1 logs that Step 2 samples from.
//!
//! §7.1 repeats the 3-hour collection procedure 100 times for each of the
//! prepared MPPDB parallelism levels; each collected log is "a 3-hour real
//! query log of an artificial tenant". Because a tenant holds either TPC-H
//! or TPC-DS data, the library is keyed by `(parallelism, benchmark)`.

use crate::config::GenerationConfig;
use crate::log::SessionLog;
use crate::rng::stream_rng;
use crate::session::generate_session;
use crate::templates::Benchmark;
use rand::Rng;
use std::collections::BTreeMap;

/// RNG stream label for session generation.
const STREAM_SESSION: u64 = 0x5E55;

/// A corpus of pre-generated session logs.
#[derive(Clone, Debug)]
pub struct SessionLibrary {
    sessions: BTreeMap<(u32, Benchmark), Vec<SessionLog>>,
}

impl SessionLibrary {
    /// Runs Step 1: generates `cfg.session_trials` sessions for every
    /// `(parallelism level, benchmark)` pair.
    pub fn generate(cfg: &GenerationConfig) -> Self {
        cfg.validate();
        let mut sessions = BTreeMap::new();
        for (li, &level) in cfg.parallelism_levels.iter().enumerate() {
            for (bi, &benchmark) in Benchmark::ALL.iter().enumerate() {
                let mut trials = Vec::with_capacity(cfg.session_trials);
                for trial in 0..cfg.session_trials {
                    let mut rng = stream_rng(
                        cfg.seed,
                        STREAM_SESSION + (li as u64) * 16 + bi as u64,
                        trial as u64,
                    );
                    trials.push(generate_session(cfg, level, benchmark, &mut rng));
                }
                sessions.insert((level, benchmark), trials);
            }
        }
        SessionLibrary { sessions }
    }

    /// All sessions for a `(parallelism, benchmark)` pair.
    ///
    /// # Panics
    /// Panics if the pair was not generated (not in
    /// `cfg.parallelism_levels`).
    pub fn sessions(&self, parallelism: u32, benchmark: Benchmark) -> &[SessionLog] {
        self.sessions
            .get(&(parallelism, benchmark))
            // A missing pair is caller misconfiguration (documented above);
            // there is no sensible fallback session. lint: allow(panic)
            .unwrap_or_else(|| panic!("no sessions for {parallelism}-node {benchmark}"))
    }

    /// Picks one session uniformly at random — the "randomly picks a 3-hour
    /// query log" step of the composition.
    pub fn pick<R: Rng + ?Sized>(
        &self,
        parallelism: u32,
        benchmark: Benchmark,
        rng: &mut R,
    ) -> &SessionLog {
        let pool = self.sessions(parallelism, benchmark);
        &pool[rng.gen_range(0..pool.len())]
    }

    /// Number of distinct `(parallelism, benchmark)` pools.
    pub fn pool_count(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_all_levels_and_benchmarks() {
        let mut cfg = GenerationConfig::small(11, 10);
        cfg.parallelism_levels = vec![2, 4];
        cfg.session_trials = 3;
        let lib = SessionLibrary::generate(&cfg);
        assert_eq!(lib.pool_count(), 4);
        for &level in &cfg.parallelism_levels {
            for benchmark in Benchmark::ALL {
                let pool = lib.sessions(level, benchmark);
                assert_eq!(pool.len(), 3);
                assert!(pool.iter().all(|s| s.parallelism == level));
                assert!(pool.iter().all(|s| s.benchmark == benchmark));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut cfg = GenerationConfig::small(11, 10);
        cfg.parallelism_levels = vec![2];
        cfg.session_trials = 2;
        let a = SessionLibrary::generate(&cfg);
        let b = SessionLibrary::generate(&cfg);
        assert_eq!(
            a.sessions(2, Benchmark::TpcH)[0].queries,
            b.sessions(2, Benchmark::TpcH)[0].queries
        );
    }

    #[test]
    fn pick_is_uniform_ish() {
        let mut cfg = GenerationConfig::small(5, 10);
        cfg.parallelism_levels = vec![2];
        cfg.session_trials = 4;
        let lib = SessionLibrary::generate(&cfg);
        let mut rng = stream_rng(1, 1, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let s = lib.pick(2, Benchmark::TpcDs, &mut rng);
            seen.insert(s.queries.len());
        }
        assert!(seen.len() > 1, "picking should reach multiple trials");
    }

    #[test]
    #[should_panic(expected = "no sessions")]
    fn missing_pool_panics() {
        let mut cfg = GenerationConfig::small(11, 10);
        cfg.parallelism_levels = vec![2];
        cfg.session_trials = 1;
        let lib = SessionLibrary::generate(&cfg);
        let _ = lib.sessions(16, Benchmark::TpcH);
    }
}
