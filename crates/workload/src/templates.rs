//! Query-template catalogs for the TPC-H and TPC-DS style workloads.
//!
//! The consolidation study observes only *when* queries start and finish, so
//! a template is fully described by the two cost-model parameters of
//! [`mppdb_sim::query::QueryTemplate`]: the per-GB single-node cost and the
//! Amdahl serial fraction. The catalogs below assign every template a
//! distinct, deterministic profile:
//!
//! * TPC-H Q1 is perfectly linear (`serial_fraction = 0`) and TPC-H Q19 is
//!   markedly non-linear (`serial_fraction = 0.30`), matching the paper's
//!   measurements in Figures 1.1a and 1.1c.
//! * Costs span roughly 7–46 ms/GB so that, on a 100 GB-per-node tenant,
//!   dedicated latencies land in the seconds-to-minutes range of a fast
//!   columnar MPPDB. This calibration makes the composed corpus reproduce
//!   the paper's *consolidation regime* (tenant-group sizes and nodes
//!   saved); see DESIGN.md for the reasoning.

use mppdb_sim::query::{QueryTemplate, TemplateId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which benchmark a tenant's data and queries come from. §7.1: "A tenant may
/// either hold TPC-H data or TPC-DS data (with equal probability)."
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Benchmark {
    /// TPC-H style decision-support workload (22 templates).
    TpcH,
    /// TPC-DS style decision-support workload (20 templates).
    TpcDs,
}

impl Benchmark {
    /// Both benchmark flavours.
    pub const ALL: [Benchmark; 2] = [Benchmark::TpcH, Benchmark::TpcDs];
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Benchmark::TpcH => write!(f, "TPC-H"),
            Benchmark::TpcDs => write!(f, "TPC-DS"),
        }
    }
}

/// A named template in a catalog. (Serialize-only: the catalog is a static
/// table, never deserialized, and `&'static str` has no owned decoding.)
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NamedTemplate {
    /// Human-readable name, e.g. `"TPC-H Q1"`.
    pub name: &'static str,
    /// The simulator-level latency profile.
    pub template: QueryTemplate,
}

/// Template-id base for TPC-H templates (`TemplateId(101)` = Q1).
pub const TPCH_ID_BASE: u32 = 100;
/// Template-id base for TPC-DS templates (`TemplateId(201)` = DS-Q1).
pub const TPCDS_ID_BASE: u32 = 200;

/// Per-query (cost ms/GB, serial fraction) for the 22 TPC-H templates.
/// Q1 (index 0) is the paper's linear-scale-out example; Q19 (index 18) the
/// non-linear one.
const TPCH_PROFILES: [(f64, f64); 22] = [
    (20.5, 0.00), // Q1  — scan-heavy aggregation, embarrassingly parallel
    (7.9, 0.10),  // Q2
    (17.8, 0.05), // Q3
    (12.5, 0.05), // Q4
    (21.8, 0.08), // Q5
    (9.9, 0.00),  // Q6
    (23.1, 0.10), // Q7
    (21.1, 0.12), // Q8
    (45.5, 0.15), // Q9  — the heaviest join pipeline
    (18.5, 0.05), // Q10
    (7.3, 0.20),  // Q11
    (13.9, 0.04), // Q12
    (16.5, 0.18), // Q13
    (11.2, 0.03), // Q14
    (11.9, 0.06), // Q15
    (9.2, 0.22),  // Q16
    (25.1, 0.08), // Q17
    (33.7, 0.10), // Q18
    (19.1, 0.30), // Q19 — non-linear scale-out (Figure 1.1c)
    (15.8, 0.07), // Q20
    (30.4, 0.12), // Q21
    (8.6, 0.25),  // Q22
];

/// Per-query (cost ms/GB, serial fraction) for 20 representative TPC-DS
/// templates.
const TPCDS_PROFILES: [(f64, f64); 20] = [
    (14.5, 0.02),
    (27.1, 0.06),
    (11.9, 0.12),
    (32.3, 0.10),
    (17.2, 0.00),
    (9.9, 0.18),
    (22.4, 0.05),
    (40.9, 0.14),
    (13.2, 0.08),
    (18.5, 0.03),
    (25.1, 0.20),
    (10.6, 0.06),
    (29.0, 0.09),
    (15.8, 0.26),
    (19.8, 0.04),
    (36.3, 0.11),
    (9.2, 0.15),
    (23.8, 0.07),
    (13.9, 0.00),
    (31.0, 0.16),
];

const TPCH_NAMES: [&str; 22] = [
    "TPC-H Q1",
    "TPC-H Q2",
    "TPC-H Q3",
    "TPC-H Q4",
    "TPC-H Q5",
    "TPC-H Q6",
    "TPC-H Q7",
    "TPC-H Q8",
    "TPC-H Q9",
    "TPC-H Q10",
    "TPC-H Q11",
    "TPC-H Q12",
    "TPC-H Q13",
    "TPC-H Q14",
    "TPC-H Q15",
    "TPC-H Q16",
    "TPC-H Q17",
    "TPC-H Q18",
    "TPC-H Q19",
    "TPC-H Q20",
    "TPC-H Q21",
    "TPC-H Q22",
];

const TPCDS_NAMES: [&str; 20] = [
    "TPC-DS Q3",
    "TPC-DS Q7",
    "TPC-DS Q19",
    "TPC-DS Q27",
    "TPC-DS Q34",
    "TPC-DS Q42",
    "TPC-DS Q43",
    "TPC-DS Q46",
    "TPC-DS Q52",
    "TPC-DS Q53",
    "TPC-DS Q55",
    "TPC-DS Q59",
    "TPC-DS Q63",
    "TPC-DS Q65",
    "TPC-DS Q68",
    "TPC-DS Q73",
    "TPC-DS Q79",
    "TPC-DS Q89",
    "TPC-DS Q96",
    "TPC-DS Q98",
];

/// Returns the full template catalog for a benchmark.
pub fn catalog(benchmark: Benchmark) -> Vec<NamedTemplate> {
    match benchmark {
        Benchmark::TpcH => TPCH_PROFILES
            .iter()
            .enumerate()
            .map(|(i, &(cost, f))| NamedTemplate {
                name: TPCH_NAMES[i],
                template: QueryTemplate::new(TemplateId(TPCH_ID_BASE + 1 + i as u32), cost, f),
            })
            .collect(),
        Benchmark::TpcDs => TPCDS_PROFILES
            .iter()
            .enumerate()
            .map(|(i, &(cost, f))| NamedTemplate {
                name: TPCDS_NAMES[i],
                template: QueryTemplate::new(TemplateId(TPCDS_ID_BASE + 1 + i as u32), cost, f),
            })
            .collect(),
    }
}

/// The paper's linear-scale-out example query (TPC-H Q1, Figure 1.1a).
pub fn tpch_q1() -> QueryTemplate {
    catalog(Benchmark::TpcH)[0].template
}

/// The paper's non-linear-scale-out example query (TPC-H Q19, Figure 1.1c).
pub fn tpch_q19() -> QueryTemplate {
    catalog(Benchmark::TpcH)[18].template
}

/// Looks up the human-readable name for a template id, if it belongs to one
/// of the catalogs.
pub fn template_name(id: TemplateId) -> Option<&'static str> {
    let raw = id.0;
    if (TPCH_ID_BASE + 1..=TPCH_ID_BASE + 22).contains(&raw) {
        Some(TPCH_NAMES[(raw - TPCH_ID_BASE - 1) as usize])
    } else if (TPCDS_ID_BASE + 1..=TPCDS_ID_BASE + 20).contains(&raw) {
        Some(TPCDS_NAMES[(raw - TPCDS_ID_BASE - 1) as usize])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_have_expected_sizes() {
        assert_eq!(catalog(Benchmark::TpcH).len(), 22);
        assert_eq!(catalog(Benchmark::TpcDs).len(), 20);
    }

    #[test]
    fn template_ids_are_unique_across_catalogs() {
        let mut ids: Vec<u32> = catalog(Benchmark::TpcH)
            .iter()
            .chain(catalog(Benchmark::TpcDs).iter())
            .map(|t| t.template.id.0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 42);
    }

    #[test]
    fn q1_is_linear_and_q19_is_not() {
        assert!(tpch_q1().is_linear_scale_out());
        assert!(!tpch_q19().is_linear_scale_out());
        assert!((tpch_q19().serial_fraction - 0.30).abs() < 1e-12);
    }

    #[test]
    fn names_resolve() {
        assert_eq!(template_name(tpch_q1().id), Some("TPC-H Q1"));
        assert_eq!(template_name(tpch_q19().id), Some("TPC-H Q19"));
        assert_eq!(template_name(TemplateId(999)), None);
        let ds = catalog(Benchmark::TpcDs);
        assert_eq!(template_name(ds[0].template.id), Some("TPC-DS Q3"));
    }

    #[test]
    fn dedicated_latencies_land_in_a_realistic_band() {
        // On a tenant with 100 GB per node, every dedicated latency must land
        // between ~1 s and ~7 min — short interactive analytics on a fast
        // columnar MPPDB (calibration note: DESIGN.md maps this to the paper's
        // consolidation regime).
        for benchmark in Benchmark::ALL {
            for t in catalog(benchmark) {
                for nodes in [2usize, 4, 8, 16, 32] {
                    let gb = 100.0 * nodes as f64;
                    let ms = mppdb_sim::cost::isolated_latency_ms(&t.template, gb, nodes);
                    assert!(
                        (300.0..=150_000.0).contains(&ms),
                        "{} at {nodes} nodes: {ms} ms",
                        t.name
                    );
                }
            }
        }
    }
}
