//! Step 1 of the log generation (§7.1): "Real Query Log Collection".
//!
//! The paper imitates a tenant against a live MPPDB: the tenant has `S`
//! autonomous users (`S` uniform on 1..=5); each user repeatedly either
//! submits one random TPC-H/TPC-DS query or a batch of `M` (uniform 1..=10)
//! random queries, waits for completion, then pauses `W` seconds (uniform
//! 3..=600). The procedure runs for 3 hours on the tenant's dedicated MPPDB
//! and the query log is collected.
//!
//! We reproduce that procedure exactly, except the "live MPPDB" is the
//! [`mppdb_sim`] cluster: a dedicated instance of the session's parallelism,
//! so intra-tenant concurrency (several users, batches) produces the same
//! processor-sharing interference a real shared-process MPPDB would show.

use crate::activity::merge_intervals;
use crate::config::GenerationConfig;
use crate::log::{LoggedQuery, SessionLog};
use crate::templates::{catalog, Benchmark};
use crate::wakeup::WakeupHeap;
use mppdb_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Per-user state in the session driver.
#[derive(Clone, Copy, Debug)]
struct UserState {
    /// When the user takes its next action. `None` while queries of the
    /// user's current query/batch are still outstanding.
    next_action: Option<SimTime>,
    /// Queries of the current action still running.
    outstanding: usize,
}

/// Generates one 3-hour session log for a tenant of the given parallelism
/// and benchmark flavour, using the supplied RNG stream.
pub fn generate_session(
    cfg: &GenerationConfig,
    parallelism: u32,
    benchmark: Benchmark,
    rng: &mut SmallRng,
) -> SessionLog {
    let data_gb = cfg.gb_per_node * parallelism as f64;
    let session_end = SimTime::from_secs(cfg.session_hours * 3600);
    let templates = catalog(benchmark);
    let tenant = SimTenantId(0);

    let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(
        parallelism as usize,
    ));
    let instance = cluster
        .provision_instance(parallelism as usize, &[(tenant, data_gb)])
        // A freshly built dedicated cluster with instant provisioning
        // always has room for its own instance. lint: allow(panic)
        .expect("dedicated cluster sized for the instance");

    let users_n = rng.gen_range(1..=cfg.max_users);
    // The tenant has "at most S autonomous users": users join the session
    // over the first half of the office hours rather than all firing at its
    // first second. Without the stagger, every tenant in a time zone would
    // open its session with a perfectly aligned burst and the composed
    // corpus would exhibit zone-wide concurrency spikes that no real
    // multi-tenant log shows.
    let first_window_ms = (cfg.session_hours * 3_600_000 / 2).max(1);
    let mut users: Vec<UserState> = (0..users_n)
        .map(|_| UserState {
            next_action: Some(SimTime::from_ms(rng.gen_range(0..first_window_ms))),
            outstanding: 0,
        })
        .collect();
    // The wake-up heap mirrors each user's `next_action`: the heap decides
    // *which* user acts next in O(log S); the `UserState` stays the
    // authority on *whether* an entry is still current (stale entries are
    // discarded at peek time).
    let mut wakeups = WakeupHeap::with_capacity(users.len());
    for (i, u) in users.iter().enumerate() {
        if let Some(t) = u.next_action {
            wakeups.push(t, i);
        }
    }

    let mut owner: BTreeMap<QueryId, usize> = BTreeMap::new();
    let mut queries: Vec<LoggedQuery> = Vec::new();
    let mut busy_raw: Vec<(u64, u64)> = Vec::new();

    let record = |completions: Vec<SimEvent>,
                  users: &mut Vec<UserState>,
                  wakeups: &mut WakeupHeap,
                  owner: &mut BTreeMap<QueryId, usize>,
                  queries: &mut Vec<LoggedQuery>,
                  busy_raw: &mut Vec<(u64, u64)>,
                  rng: &mut SmallRng,
                  cfg: &GenerationConfig| {
        for e in completions {
            if let SimEvent::QueryCompleted(c) = e {
                queries.push(LoggedQuery {
                    offset: c.submitted.saturating_since(SimTime::ZERO),
                    template: c.template,
                    latency: c.latency,
                });
                busy_raw.push((c.submitted.as_ms(), c.finished.as_ms()));
                // Every completion stems from a submission recorded in
                // `owner`; an unknown query id would mean the simulator
                // invented one, so there is no sensible user to credit.
                let Some(u) = owner.remove(&c.query) else {
                    continue;
                };
                let user = &mut users[u];
                user.outstanding -= 1;
                if user.outstanding == 0 {
                    let think = rng.gen_range(cfg.think_secs.0..=cfg.think_secs.1);
                    let at = c.finished + SimDuration::from_secs(think);
                    user.next_action = Some(at);
                    wakeups.push(at, u);
                }
            }
        }
    };

    loop {
        // Earliest pending user action within the session window: peek the
        // heap, lazily discarding entries that no longer match the user's
        // authoritative state and wake-ups past the session end (those
        // users never act again).
        let next_user = loop {
            let Some((t, i)) = wakeups.peek() else {
                break None;
            };
            if users[i].next_action != Some(t) {
                wakeups.pop();
                continue;
            }
            if t >= session_end {
                wakeups.pop();
                users[i].next_action = None;
                continue;
            }
            break Some((t, i));
        };
        let next_sim = cluster.peek_next_event_time();
        match (next_user, next_sim) {
            (Some((tu, ui)), sim) if sim.is_none_or(|ts| tu <= ts) => {
                // Claim this wake-up before delivering completions:
                // `record` pushes fresh entries, and the claimed one must
                // not shadow them at the top of the heap.
                wakeups.pop();
                // Deliver completions strictly before the action instant so
                // the cluster state is current, then act.
                let events = cluster.run_until(tu);
                record(
                    events,
                    &mut users,
                    &mut wakeups,
                    &mut owner,
                    &mut queries,
                    &mut busy_raw,
                    rng,
                    cfg,
                );
                let user = &mut users[ui];
                // A pending wake-up implies nothing outstanding, so the
                // completion handler cannot have rescheduled this user;
                // the check guards that invariant.
                if user.next_action != Some(tu) {
                    continue;
                }
                user.next_action = None;
                // §7.1 distribution P: (a) one query or (b) a batch of M.
                let batch = if rng.gen_bool(cfg.batch_probability) {
                    rng.gen_range(1..=cfg.max_batch)
                } else {
                    1
                };
                user.outstanding = batch as usize;
                for _ in 0..batch {
                    let t = templates[rng.gen_range(0..templates.len())].template;
                    let qid = cluster
                        .submit(instance, QuerySpec::new(t, data_gb, tenant))
                        // The dedicated instance was provisioned above and
                        // hosts the only tenant. lint: allow(panic)
                        .expect("instance is ready and hosts the tenant");
                    owner.insert(qid, ui);
                }
            }
            (_, Some(t)) => {
                // Drain the next simulator event batch (query completions).
                let events = cluster.run_until(t);
                record(
                    events,
                    &mut users,
                    &mut wakeups,
                    &mut owner,
                    &mut queries,
                    &mut busy_raw,
                    rng,
                    cfg,
                );
            }
            // Unreachable with a user action pending (the first arm's guard
            // always holds when `next_sim` is `None`), so this only fires
            // when both sources are exhausted.
            (_, None) => break,
        }
    }

    queries.sort_by_key(|q| (q.offset, q.template));
    SessionLog {
        parallelism,
        benchmark,
        users: users_n,
        queries,
        busy: merge_intervals(busy_raw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    fn small_cfg() -> GenerationConfig {
        GenerationConfig::small(7, 10)
    }

    #[test]
    fn session_is_deterministic() {
        let cfg = small_cfg();
        let a = generate_session(&cfg, 4, Benchmark::TpcH, &mut stream_rng(1, 2, 3));
        let b = generate_session(&cfg, 4, Benchmark::TpcH, &mut stream_rng(1, 2, 3));
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.users, b.users);
    }

    #[test]
    fn session_produces_queries_within_window() {
        let cfg = small_cfg();
        let s = generate_session(&cfg, 2, Benchmark::TpcDs, &mut stream_rng(1, 0, 0));
        assert!(
            !s.queries.is_empty(),
            "a 3-hour session must contain queries"
        );
        let window_ms = cfg.session_hours * 3_600_000;
        for q in &s.queries {
            assert!(q.offset.as_ms() < window_ms, "submissions stop at 3 h");
            assert!(q.latency > SimDuration::ZERO);
        }
    }

    #[test]
    fn busy_intervals_are_sorted_and_disjoint() {
        let cfg = small_cfg();
        let s = generate_session(&cfg, 8, Benchmark::TpcH, &mut stream_rng(9, 0, 0));
        for w in s.busy.windows(2) {
            assert!(w[0].1 < w[1].0, "intervals must be disjoint and sorted");
        }
        assert!(s.busy_ms() > 0);
    }

    #[test]
    fn busy_time_is_a_fraction_of_the_session() {
        // Users think 3–600 s between actions, so the tenant must be idle a
        // meaningful part of the session — this is the consolidation
        // opportunity Thrifty exploits.
        let cfg = small_cfg();
        let mut total_busy = 0u64;
        let mut n = 0u64;
        for trial in 0..8 {
            let s = generate_session(&cfg, 4, Benchmark::TpcH, &mut stream_rng(3, 1, trial));
            total_busy += s.busy_ms();
            n += 1;
        }
        let avg_busy_frac = total_busy as f64 / (n * cfg.session_hours * 3_600_000) as f64;
        assert!(
            (0.01..=0.95).contains(&avg_busy_frac),
            "average in-session busy fraction {avg_busy_frac}"
        );
    }

    #[test]
    fn different_streams_give_different_sessions() {
        let cfg = small_cfg();
        let a = generate_session(&cfg, 4, Benchmark::TpcH, &mut stream_rng(1, 0, 0));
        let b = generate_session(&cfg, 4, Benchmark::TpcH, &mut stream_rng(1, 0, 1));
        assert_ne!(a.queries, b.queries);
    }
}
