//! Corpus persistence.
//!
//! Generating a paper-scale corpus (T = 5000 over 30 days) takes minutes;
//! experiments that replay the *same* corpus repeatedly (the Figure 7.7
//! pair, SLA studies across service settings) can save it once and reload
//! it. Logs serialize to JSON — human-inspectable, which also makes the
//! generated "close-to-realistic tenant logs" shareable the way the paper's
//! §7.1 methodology intends.

use crate::config::GenerationConfig;
use crate::log::MultiTenantLog;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// A saved corpus: the generating configuration plus the composed logs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SavedCorpus {
    /// The configuration that produced the corpus (for provenance and
    /// regeneration).
    pub config: GenerationConfig,
    /// The composed multi-tenant log.
    pub log: MultiTenantLog,
}

impl SavedCorpus {
    /// Saves the corpus as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = File::create(path)?;
        let mut writer = BufWriter::new(file);
        serde_json::to_writer(&mut writer, self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writer.flush()
    }

    /// Loads a corpus saved with [`SavedCorpus::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        serde_json::from_reader(BufReader::new(file))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::Composer;
    use crate::library::SessionLibrary;

    #[test]
    fn corpus_round_trips_through_json() {
        let mut cfg = GenerationConfig::small(3, 6);
        cfg.parallelism_levels = vec![2];
        cfg.session_trials = 2;
        let library = SessionLibrary::generate(&cfg);
        let composer = Composer::new(&cfg, &library);
        let log = composer.compose_all();
        let corpus = SavedCorpus {
            config: cfg.clone(),
            log,
        };

        let path =
            std::env::temp_dir().join(format!("thrifty-corpus-test-{}.json", std::process::id()));
        corpus.save(&path).unwrap();
        let loaded = SavedCorpus::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.config.tenants, 6);
        assert_eq!(loaded.log.tenants.len(), corpus.log.tenants.len());
        assert_eq!(loaded.log.event_count(), corpus.log.event_count());
        for (a, b) in loaded.log.tenants.iter().zip(&corpus.log.tenants) {
            assert_eq!(a.events, b.events);
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn loading_a_missing_file_errors() {
        assert!(SavedCorpus::load("/nonexistent/corpus.json").is_err());
    }
}
