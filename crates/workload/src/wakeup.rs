//! An index-min-heap of pending user wake-ups.
//!
//! The session driver in [`crate::session`] interleaves two event sources:
//! the simulated MPPDB's completion events and the autonomous users' next
//! actions. The users' side used to be a linear `users.iter().min()` rescan
//! on every loop iteration — `O(S)` per event, which at million-tenant
//! corpus generation scale dominates the replay. [`WakeupHeap`] replaces
//! the rescan with an `O(log S)` binary heap of `(instant, user index)`
//! pairs.
//!
//! Entries are *lazily invalidated*: rescheduling a user simply pushes a
//! new pair and leaves any old one behind; the consumer discards entries
//! that no longer match the user's authoritative state at peek time. The
//! heap orders by `(instant, user index)`, so the pop sequence is a pure
//! function of the *set* of live entries — byte-identical no matter the
//! insertion order (`tests/determinism.rs` pins this).

use mppdb_sim::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(wake-up instant, user index)` pairs, earliest first,
/// ties broken toward the lowest user index — exactly the order the old
/// linear `min()` scan selected.
#[derive(Clone, Debug, Default)]
pub struct WakeupHeap {
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
}

impl WakeupHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        WakeupHeap::default()
    }

    /// Creates an empty heap with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        WakeupHeap {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Schedules (or reschedules) a user's wake-up. A previous entry for
    /// the same user is *not* removed — the consumer must treat entries
    /// that disagree with its own per-user state as stale on pop.
    pub fn push(&mut self, at: SimTime, user: usize) {
        self.heap.push(Reverse((at, user)));
    }

    /// The earliest entry without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.peek().map(|&Reverse(p)| p)
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        self.heap.pop().map(|Reverse(p)| p)
    }

    /// Number of entries, counting stale ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_instant_then_user_index() {
        let mut h = WakeupHeap::new();
        h.push(SimTime::from_ms(30), 0);
        h.push(SimTime::from_ms(10), 2);
        h.push(SimTime::from_ms(10), 1);
        h.push(SimTime::from_ms(20), 3);
        let mut order = Vec::new();
        while let Some((t, u)) = h.pop() {
            order.push((t.as_ms(), u));
        }
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = WakeupHeap::with_capacity(2);
        assert!(h.is_empty());
        h.push(SimTime::from_ms(5), 7);
        assert_eq!(h.peek(), Some((SimTime::from_ms(5), 7)));
        assert_eq!(h.pop(), Some((SimTime::from_ms(5), 7)));
        assert_eq!(h.len(), 0);
    }
}
