//! Tenant specifications.

use crate::templates::Benchmark;
use mppdb_sim::query::SimTenantId;
use serde::{Deserialize, Serialize};

/// Static description of one tenant, as sampled in Step 2 of §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant identity (shared with the simulator and the Thrifty core).
    pub id: SimTenantId,
    /// Number of MPPDB nodes the tenant requested (`n_i`).
    pub nodes: u32,
    /// Total data size in GB (`nodes × gb_per_node`; §7.1 uses 100 GB/node).
    pub data_gb: f64,
    /// Which benchmark flavour the tenant's data and queries follow.
    pub benchmark: Benchmark,
    /// Time-zone offset in hours, drawn from the scenario's offset table.
    pub offset_hours: u64,
}

impl TenantSpec {
    /// Dataset size per node in GB.
    pub fn gb_per_node(&self) -> f64 {
        self.data_gb / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_size() {
        let t = TenantSpec {
            id: SimTenantId(3),
            nodes: 8,
            data_gb: 800.0,
            benchmark: Benchmark::TpcH,
            offset_hours: 16,
        };
        assert!((t.gb_per_node() - 100.0).abs() < 1e-12);
    }
}
