//! Deterministic random-number plumbing.
//!
//! Every stochastic choice in the generator is derived from a single master
//! seed plus a *stream* label, so that (a) the whole 10 000-tenant corpus is
//! reproducible bit-for-bit and (b) regenerating one tenant's log does not
//! require regenerating the others (each tenant gets an independent stream).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives an independent RNG for (`seed`, `stream`, `substream`).
///
/// Uses SplitMix64-style mixing to decorrelate nearby stream indices before
/// seeding the per-stream generator.
pub fn stream_rng(seed: u64, stream: u64, substream: u64) -> SmallRng {
    let mut x = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ substream.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    SmallRng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_give_same_stream() {
        let a: Vec<u32> = stream_rng(42, 7, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = stream_rng(42, 7, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_decorrelate() {
        let a: Vec<u32> = stream_rng(42, 7, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = stream_rng(42, 8, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let c: Vec<u32> = stream_rng(43, 7, 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
