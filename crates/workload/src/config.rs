//! Generation configuration (the knobs of Table 7.1 plus the §7.1 constants).

use serde::{Deserialize, Serialize};

/// The §7.4 scenario modifiers that raise the active-tenant ratio.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Default)]
pub enum ActivityScenario {
    /// Unmodified §7.1 composition (tenants spread over seven time zones,
    /// lunch break between morning and afternoon sessions). Measured active
    /// ratio ≈ 12% in the paper.
    #[default]
    Default,
    /// Modification (1): tenants get only the +0 or +3 offsets ("tenants are
    /// all from North America"). Paper ratio 25.1%.
    NorthAmericaOnly,
    /// Modification (2): North America only *and* no lunch hour. Paper ratio
    /// 30.7%.
    NorthAmericaNoLunch,
    /// Modification (3): all tenants at +0 ("all from the west coast") and no
    /// lunch hour. Paper ratio 34.4%.
    SingleZoneNoLunch,
}

impl ActivityScenario {
    /// The time-zone offsets (in hours) available under this scenario.
    /// §7.1 lists: +0 Seattle, +3 New York, +5 São Paulo, +8 London,
    /// +16 Beijing, +17 Japan, +19 Sydney.
    pub fn offsets(self) -> &'static [u64] {
        match self {
            ActivityScenario::Default => &[0, 3, 5, 8, 16, 17, 19],
            ActivityScenario::NorthAmericaOnly | ActivityScenario::NorthAmericaNoLunch => &[0, 3],
            ActivityScenario::SingleZoneNoLunch => &[0],
        }
    }

    /// Whether tenants take the two-hour lunch break between the morning and
    /// afternoon sessions.
    pub fn has_lunch_break(self) -> bool {
        matches!(
            self,
            ActivityScenario::Default | ActivityScenario::NorthAmericaOnly
        )
    }
}

/// Configuration of the two-step log generation of §7.1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Total number of tenants `T` (Table 7.1: 1000 / **5000** / 10000).
    pub tenants: usize,
    /// Zipf skew of the tenant-size distribution (Table 7.1 default 0.8).
    pub theta: f64,
    /// Parallelism levels tenants can request. §7.1 prepared 2/4/8/16/32-node
    /// MPPDB instances; rank order must be ascending (smallest first — the
    /// most common size).
    pub parallelism_levels: Vec<u32>,
    /// GB of data per requested node (§7.1: "each node gets a 100 GB data
    /// partition").
    pub gb_per_node: f64,
    /// Session trials collected per (parallelism, benchmark) in Step 1
    /// (§7.1 repeats the 3-hour procedure 100 times).
    pub session_trials: usize,
    /// Length of one Step-1 session (3 hours in §7.1).
    pub session_hours: u64,
    /// Maximum autonomous users per tenant (`S` is uniform on `1..=max_users`).
    pub max_users: u32,
    /// Maximum batch size (`M` is uniform on `1..=max_batch`).
    pub max_batch: u32,
    /// Probability that a user action is a batch (`(b)`) rather than a
    /// single query (`(a)`). §7.1 only says the users follow "a probability
    /// distribution P" instantiated as uniform; this knob is the calibration
    /// point for the single-vs-batch mix (see DESIGN.md on calibrating the
    /// corpus to the paper's consolidation regime).
    pub batch_probability: f64,
    /// Think-time bounds in seconds (`W` uniform on `think_secs.0..=think_secs.1`).
    pub think_secs: (u64, u64),
    /// Horizon of the composed logs in days (§7.1 generates 30-day logs).
    pub horizon_days: u64,
    /// Weekday count per week (5 working days then 2 weekend days).
    pub workdays_per_week: u64,
    /// Number of shared public holidays within the horizon (§7.1: two).
    pub holidays: u64,
    /// Activity scenario (§7.4 modifiers).
    pub scenario: ActivityScenario,
}

impl GenerationConfig {
    /// The Table 7.1 default configuration at full paper scale
    /// (T = 5000, θ = 0.8, 30-day horizon).
    pub fn paper_default(seed: u64) -> Self {
        GenerationConfig {
            seed,
            tenants: 5000,
            theta: 0.8,
            parallelism_levels: vec![2, 4, 8, 16, 32],
            gb_per_node: 100.0,
            session_trials: 100,
            session_hours: 3,
            max_users: 5,
            max_batch: 10,
            batch_probability: 0.25,
            think_secs: (3, 600),
            horizon_days: 30,
            workdays_per_week: 5,
            holidays: 2,
            scenario: ActivityScenario::Default,
        }
    }

    /// A reduced-scale configuration for fast tests and default harness runs:
    /// fewer tenants, fewer session trials, one-week horizon. The statistical
    /// structure (time zones, sessions, batches) is unchanged.
    pub fn small(seed: u64, tenants: usize) -> Self {
        GenerationConfig {
            tenants,
            session_trials: 12,
            horizon_days: 7,
            ..GenerationConfig::paper_default(seed)
        }
    }

    /// Horizon length in milliseconds.
    pub fn horizon_ms(&self) -> u64 {
        self.horizon_days * 24 * 3_600_000
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on an invalid configuration (empty levels, unordered levels,
    /// zero tenants, bad think-time bounds, ...).
    pub fn validate(&self) {
        assert!(self.tenants > 0, "need at least one tenant");
        assert!(
            !self.parallelism_levels.is_empty(),
            "need at least one parallelism level"
        );
        assert!(
            self.parallelism_levels.windows(2).all(|w| w[0] < w[1]),
            "parallelism levels must be strictly ascending"
        );
        assert!(self.parallelism_levels.iter().all(|&p| p > 0));
        assert!(self.gb_per_node > 0.0);
        assert!(self.session_trials > 0);
        assert!(self.session_hours > 0);
        assert!(self.max_users >= 1);
        assert!(self.max_batch >= 1);
        assert!(
            (0.0..=1.0).contains(&self.batch_probability),
            "batch probability must lie in [0, 1]"
        );
        assert!(self.think_secs.0 <= self.think_secs.1);
        assert!(self.horizon_days >= 1);
        assert!(self.workdays_per_week >= 1 && self.workdays_per_week <= 7);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_7_1() {
        let c = GenerationConfig::paper_default(1);
        c.validate();
        assert_eq!(c.tenants, 5000);
        assert!((c.theta - 0.8).abs() < 1e-12);
        assert_eq!(c.parallelism_levels, vec![2, 4, 8, 16, 32]);
        assert_eq!(c.horizon_days, 30);
        assert_eq!(c.holidays, 2);
    }

    #[test]
    fn scenario_offsets_follow_7_4() {
        assert_eq!(ActivityScenario::Default.offsets().len(), 7);
        assert_eq!(ActivityScenario::NorthAmericaOnly.offsets(), &[0, 3]);
        assert_eq!(ActivityScenario::SingleZoneNoLunch.offsets(), &[0]);
        assert!(ActivityScenario::NorthAmericaOnly.has_lunch_break());
        assert!(!ActivityScenario::NorthAmericaNoLunch.has_lunch_break());
        assert!(!ActivityScenario::SingleZoneNoLunch.has_lunch_break());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn validate_rejects_unordered_levels() {
        let mut c = GenerationConfig::paper_default(1);
        c.parallelism_levels = vec![4, 2];
        c.validate();
    }

    #[test]
    fn horizon_ms_is_days_times_day() {
        let c = GenerationConfig::small(1, 10);
        assert_eq!(c.horizon_ms(), 7 * 86_400_000);
    }
}
