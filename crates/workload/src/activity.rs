//! Interval and activity-profile utilities.
//!
//! The grouping algorithms operate on *epoch activity* (Chapter 5): the
//! timeline is cut into fixed-width epochs and a tenant is active in an epoch
//! if one of its queries is executing during it. This module converts query
//! logs (busy intervals) into epoch sets and computes corpus-level statistics
//! such as the average active-tenant ratio the paper reports (≈ 8.9–12%
//! under default parameters).

/// Merges a list of half-open `[start, end)` millisecond intervals into a
/// sorted, non-overlapping list. Empty intervals are dropped.
pub fn merge_intervals(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.retain(|&(s, e)| e > s);
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Converts merged busy intervals into the sorted set of active epoch
/// indices, for epochs of `epoch_ms` covering `[0, horizon_ms)`. Intervals
/// are clipped to the horizon.
///
/// # Panics
/// Panics if `epoch_ms` is zero.
pub fn epochs_from_intervals(intervals: &[(u64, u64)], epoch_ms: u64, horizon_ms: u64) -> Vec<u32> {
    assert!(epoch_ms > 0, "epoch size must be positive");
    let mut out: Vec<u32> = Vec::new();
    for &(s, e) in intervals {
        let s = s.min(horizon_ms);
        let e = e.min(horizon_ms);
        if e <= s {
            continue;
        }
        let first = s / epoch_ms;
        let last = (e - 1) / epoch_ms; // half-open end: last touched epoch
        let start_idx = match out.last() {
            Some(&prev) if prev as u64 >= first => prev as u64 + 1,
            _ => first,
        };
        for idx in start_idx..=last {
            out.push(idx as u32);
        }
    }
    out
}

/// Total epochs in a horizon (the `d` of the LIVBPwFC formulation).
pub fn epoch_count(epoch_ms: u64, horizon_ms: u64) -> u32 {
    assert!(epoch_ms > 0, "epoch size must be positive");
    horizon_ms.div_ceil(epoch_ms) as u32
}

/// Corpus-level activity statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityStats {
    /// Time-averaged fraction of tenants that are active
    /// (Σ busy time / (T × horizon)).
    pub average_active_ratio: f64,
    /// Maximum number of tenants concurrently active at any instant.
    pub max_concurrent_active: usize,
}

/// Computes corpus statistics from per-tenant merged busy intervals.
pub fn activity_stats(per_tenant: &[Vec<(u64, u64)>], horizon_ms: u64) -> ActivityStats {
    assert!(horizon_ms > 0, "horizon must be positive");
    let tenants = per_tenant.len().max(1);
    let busy_total: u128 = per_tenant
        .iter()
        .flat_map(|iv| iv.iter())
        .map(|&(s, e)| (e.min(horizon_ms).saturating_sub(s.min(horizon_ms))) as u128)
        .sum();
    // Sweep-line over interval boundaries for the concurrency maximum.
    let mut boundaries: Vec<(u64, i32)> = Vec::new();
    for iv in per_tenant {
        for &(s, e) in iv {
            let (s, e) = (s.min(horizon_ms), e.min(horizon_ms));
            if e > s {
                boundaries.push((s, 1));
                boundaries.push((e, -1));
            }
        }
    }
    boundaries.sort_unstable();
    let mut cur = 0i32;
    let mut max = 0i32;
    for (_, delta) in boundaries {
        cur += delta;
        max = max.max(cur);
    }
    ActivityStats {
        average_active_ratio: busy_total as f64 / (tenants as u128 * horizon_ms as u128) as f64,
        max_concurrent_active: max as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_overlap_touch_and_gap() {
        let merged = merge_intervals(vec![(10, 20), (15, 25), (25, 30), (40, 50), (5, 5)]);
        assert_eq!(merged, vec![(10, 30), (40, 50)]);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        assert!(merge_intervals(vec![]).is_empty());
    }

    #[test]
    fn epochs_cover_touched_epochs_only() {
        // Epochs of 10 ms. Interval [5, 25) touches epochs 0, 1, 2;
        // [30, 40) touches epoch 3 only (half-open).
        let e = epochs_from_intervals(&[(5, 25), (30, 40)], 10, 100);
        assert_eq!(e, vec![0, 1, 2, 3]);
    }

    #[test]
    fn epochs_are_deduplicated_across_adjacent_intervals() {
        let e = epochs_from_intervals(&[(0, 5), (6, 9)], 10, 100);
        assert_eq!(e, vec![0]);
    }

    #[test]
    fn epochs_clip_to_horizon() {
        let e = epochs_from_intervals(&[(95, 250)], 10, 100);
        assert_eq!(e, vec![9]);
        assert!(epochs_from_intervals(&[(150, 250)], 10, 100).is_empty());
    }

    #[test]
    fn epoch_count_rounds_up() {
        assert_eq!(epoch_count(10, 100), 10);
        assert_eq!(epoch_count(10, 101), 11);
        assert_eq!(epoch_count(30_000, 86_400_000), 2880);
    }

    #[test]
    fn stats_measure_ratio_and_concurrency() {
        let per_tenant = vec![
            vec![(0, 50)],   // busy half the horizon
            vec![(25, 75)],  // overlaps the first tenant for 25 ms
            vec![],          // never active
            vec![(90, 200)], // clipped to (90, 100)
        ];
        let s = activity_stats(&per_tenant, 100);
        assert!((s.average_active_ratio - 110.0 / 400.0).abs() < 1e-12);
        assert_eq!(s.max_concurrent_active, 2);
    }
}
