//! Drift-and-churn scenario: activity ratios shift mid-horizon while the
//! tenant population churns.
//!
//! Consolidation quality rots when the activity shape the Deployment
//! Advisor designed for stops describing the tenants (Chapter 5.1). This
//! scenario manufactures exactly that rot, deterministically:
//!
//! * **Phase 1** (before [`DriftConfig::shift_at_ms`]): tenants are active
//!   in *overlapping* slots — tenant `i` wakes in slot `i mod phase1_stride`
//!   of every cycle with a small stride, so many tenants are concurrently
//!   active and the day-one design needs many small groups.
//! * **Phase 2** (after the shift): the same tenants spread over a *large*
//!   stride, so activity is close to disjoint and far fewer groups (and
//!   nodes) suffice — but only a re-consolidation cycle can realize that.
//! * **Churn** at the shift point: a prefix of the population departs and
//!   a smaller set of new tenants arrives (parked on a tuning MPPDB until
//!   the next cycle). Departures outnumber arrivals, so the right-sized
//!   deployment shrinks.
//!
//! The generator emits the *estimated* day-one histories (phase-1 shape
//! extended over the whole horizon — what the provider believed), the
//! query log (phase-aware, churn-aware), and the churn events, all from
//! one seed. Replaying the same scenario with and without periodic
//! re-consolidation is the drift experiment in `thrifty-bench`.

use crate::rng::stream_rng;
use crate::templates::Benchmark;
use crate::tenant::TenantSpec;
use mppdb_sim::query::{SimTenantId, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Template id reserved for drift-scenario queries.
pub const DRIFT_TEMPLATE: TemplateId = TemplateId(900);

/// Configuration of the drift-and-churn generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Initial tenant population.
    pub tenants: u32,
    /// Nodes each tenant requests (`n_i`).
    pub node_size: u32,
    /// Data per requested node in GB (§7.1 uses 100; drift defaults to a
    /// small value so bulk loads finish within a few slots).
    pub gb_per_node: f64,
    /// Activity slot length in ms.
    pub slot_ms: u64,
    /// Phase-1 stride: tenant `i` is active in slot `i % phase1_stride` of
    /// each cycle. Small stride = heavy overlap.
    pub phase1_stride: u32,
    /// Phase-2 stride (after the shift). Large stride = near-disjoint.
    pub phase2_stride: u32,
    /// Instant the activity pattern shifts and churn happens.
    pub shift_at_ms: u64,
    /// End of the log timeline.
    pub horizon_ms: u64,
    /// Tenants (a prefix by id) deregistering at the shift.
    pub departures: u32,
    /// New tenants registering at the shift.
    pub arrivals: u32,
    /// Settle time after the shift before arrived tenants submit queries
    /// (covers their bulk load onto the tuning MPPDB).
    pub settle_ms: u64,
    /// Per-query template coefficient: dedicated latency is
    /// `query_coef × data_gb / nodes` ms.
    pub query_coef: f64,
    /// Maximum submission jitter inside a slot, ms.
    pub jitter_ms: u64,
}

impl DriftConfig {
    /// A compact configuration that exercises drift, churn, and at least
    /// one full re-consolidation cycle inside a ~16 h horizon.
    pub fn small(seed: u64) -> Self {
        DriftConfig {
            seed,
            tenants: 12,
            node_size: 2,
            gb_per_node: 10.0,
            slot_ms: 30 * 60_000,
            phase1_stride: 2,
            phase2_stride: 6,
            shift_at_ms: 6 * 3_600_000,
            horizon_ms: 16 * 3_600_000,
            departures: 4,
            arrivals: 2,
            settle_ms: 3_600_000,
            query_coef: 12_000.0,
            jitter_ms: 20_000,
        }
    }
}

/// One churn action on the live service, on the log timeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A tenant joins the service (to be parked until the next cycle).
    Register {
        /// When the registration arrives.
        at: SimTime,
        /// The new tenant.
        spec: TenantSpec,
    },
    /// A tenant leaves the service.
    Deregister {
        /// When the deregistration arrives.
        at: SimTime,
        /// The departing tenant.
        tenant: SimTenantId,
    },
}

impl ChurnEvent {
    /// The instant the event takes effect.
    pub fn at(&self) -> SimTime {
        match self {
            ChurnEvent::Register { at, .. } | ChurnEvent::Deregister { at, .. } => *at,
        }
    }
}

/// One query submission of the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftQuery {
    /// The submitting tenant.
    pub tenant: SimTenantId,
    /// Submission instant on the log timeline.
    pub submit: SimTime,
    /// The template ([`DRIFT_TEMPLATE`]).
    pub template: TemplateId,
    /// The tenant's dedicated-MPPDB latency for this query (the SLA).
    pub baseline: SimDuration,
}

/// The generated scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftScenario {
    /// The configuration it was generated from.
    pub config: DriftConfig,
    /// The initial tenant population (ids `0..tenants`).
    pub initial: Vec<TenantSpec>,
    /// The day-one activity estimate per initial tenant: the phase-1 shape
    /// extended over the whole horizon — what the provider designs for.
    pub design_histories: Vec<(SimTenantId, Vec<(u64, u64)>)>,
    /// All query submissions, ordered by (submit, tenant).
    pub queries: Vec<DriftQuery>,
    /// Churn events, ordered by time (deregistrations first at ties so the
    /// freed capacity is visible to the registrations).
    pub churn: Vec<ChurnEvent>,
}

impl DriftScenario {
    /// Generates the scenario. Deterministic in `config`.
    pub fn generate(config: &DriftConfig) -> DriftScenario {
        let spec = |id: u32| TenantSpec {
            id: SimTenantId(id),
            nodes: config.node_size,
            data_gb: config.gb_per_node * f64::from(config.node_size),
            benchmark: Benchmark::TpcH,
            offset_hours: 0,
        };
        let initial: Vec<TenantSpec> = (0..config.tenants).map(spec).collect();
        let baseline_ms = (config.query_coef * config.gb_per_node).max(1.0) as u64;

        let phase1 = config.phase1_stride.max(1);
        let phase2 = config.phase2_stride.max(1);
        let slot = config.slot_ms.max(1);

        // Day-one estimate: every tenant keeps its phase-1 slot for the
        // whole horizon.
        let mut design_histories = Vec::with_capacity(initial.len());
        for t in &initial {
            let mut intervals = Vec::new();
            let my_slot = u64::from(t.id.0 % phase1);
            let cycle = slot * u64::from(phase1);
            let mut start = my_slot * slot;
            while start < config.horizon_ms {
                let end = (start + baseline_ms)
                    .min(start + slot)
                    .min(config.horizon_ms);
                if end > start {
                    intervals.push((start, end));
                }
                start += cycle;
            }
            design_histories.push((t.id, intervals));
        }

        // Churn at the shift: the lowest ids depart, fresh ids arrive.
        let mut churn = Vec::new();
        let at = SimTime::from_ms(config.shift_at_ms);
        for id in 0..config.departures.min(config.tenants) {
            churn.push(ChurnEvent::Deregister {
                at,
                tenant: SimTenantId(id),
            });
        }
        for i in 0..config.arrivals {
            churn.push(ChurnEvent::Register {
                at,
                spec: spec(config.tenants + i),
            });
        }

        // Queries: one per active slot per tenant, phase-aware.
        let mut queries = Vec::new();
        let mut emit =
            |tenant: SimTenantId, from_ms: u64, until_ms: u64, stride: u32, substream: u64| {
                let mut rng = stream_rng(config.seed, u64::from(tenant.0), substream);
                let my_slot = u64::from(tenant.0 % stride);
                let cycle = slot * u64::from(stride);
                // First cycle whose slot lies at or after `from_ms`.
                let mut start = my_slot * slot;
                while start < from_ms {
                    start += cycle;
                }
                while start < until_ms {
                    let jitter = if config.jitter_ms == 0 {
                        0
                    } else {
                        rng.gen_range(0..config.jitter_ms)
                    };
                    queries.push(DriftQuery {
                        tenant,
                        submit: SimTime::from_ms(start + jitter),
                        template: DRIFT_TEMPLATE,
                        baseline: SimDuration::from_ms(baseline_ms),
                    });
                    start += cycle;
                }
            };
        for t in &initial {
            // Phase 1 for everyone; departures stop at the shift.
            emit(t.id, 0, config.shift_at_ms, phase1, 1);
            if t.id.0 >= config.departures {
                emit(t.id, config.shift_at_ms, config.horizon_ms, phase2, 2);
            }
        }
        for i in 0..config.arrivals {
            let id = SimTenantId(config.tenants + i);
            emit(
                id,
                config.shift_at_ms + config.settle_ms,
                config.horizon_ms,
                phase2,
                2,
            );
        }
        queries.sort_by_key(|q| (q.submit, q.tenant));

        DriftScenario {
            config: *config,
            initial,
            design_histories,
            queries,
            churn,
        }
    }

    /// The dedicated-MPPDB latency of one scenario query, in ms — also the
    /// linear coefficient to register [`DRIFT_TEMPLATE`] with.
    pub fn baseline_ms(&self) -> u64 {
        (self.config.query_coef * self.config.gb_per_node).max(1.0) as u64
    }

    /// Tenant ids alive at the end of the horizon, ascending.
    pub fn final_population(&self) -> Vec<SimTenantId> {
        let mut alive: Vec<SimTenantId> = self
            .initial
            .iter()
            .map(|t| t.id)
            .filter(|t| t.0 >= self.config.departures)
            .collect();
        for ev in &self.churn {
            if let ChurnEvent::Register { spec, .. } = ev {
                alive.push(spec.id);
            }
        }
        alive.sort_unstable();
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> DriftScenario {
        DriftScenario::generate(&DriftConfig::small(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = scenario();
        let b = scenario();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.churn, b.churn);
        assert_eq!(a.design_histories, b.design_histories);
    }

    #[test]
    fn phase_one_overlaps_and_phase_two_spreads() {
        let s = scenario();
        let cfg = s.config;
        // In phase 1 two tenants with the same `id % phase1_stride` share a
        // slot; in phase 2 their slots differ (strides chosen coprime-ish).
        let before: Vec<&DriftQuery> = s
            .queries
            .iter()
            .filter(|q| q.submit.as_ms() < cfg.shift_at_ms)
            .collect();
        let after: Vec<&DriftQuery> = s
            .queries
            .iter()
            .filter(|q| q.submit.as_ms() >= cfg.shift_at_ms)
            .collect();
        assert!(!before.is_empty() && !after.is_empty());
        // Max concurrent same-slot submitters shrinks after the shift.
        let peak = |qs: &[&DriftQuery]| {
            let mut per_slot: std::collections::BTreeMap<u64, std::collections::BTreeSet<u32>> =
                std::collections::BTreeMap::new();
            for q in qs {
                per_slot
                    .entry(q.submit.as_ms() / cfg.slot_ms)
                    .or_default()
                    .insert(q.tenant.0);
            }
            per_slot.values().map(|s| s.len()).max().unwrap_or(0)
        };
        assert!(
            peak(&before) > peak(&after),
            "drift must reduce concurrency: {} -> {}",
            peak(&before),
            peak(&after)
        );
    }

    #[test]
    fn departed_tenants_stop_submitting() {
        let s = scenario();
        for q in &s.queries {
            if q.tenant.0 < s.config.departures {
                assert!(q.submit.as_ms() < s.config.shift_at_ms);
            }
        }
    }

    #[test]
    fn arrivals_wait_for_the_settle_window() {
        let s = scenario();
        let first_new = s
            .queries
            .iter()
            .filter(|q| q.tenant.0 >= s.config.tenants)
            .map(|q| q.submit.as_ms())
            .min();
        if let Some(first) = first_new {
            assert!(first >= s.config.shift_at_ms + s.config.settle_ms);
        }
        assert_eq!(
            s.churn.len(),
            (s.config.departures + s.config.arrivals) as usize
        );
    }

    #[test]
    fn final_population_reflects_churn() {
        let s = scenario();
        let alive = s.final_population();
        assert_eq!(
            alive.len() as u32,
            s.config.tenants - s.config.departures + s.config.arrivals
        );
        assert!(alive.iter().all(|t| t.0 >= s.config.departures));
    }

    #[test]
    fn design_histories_cover_every_initial_tenant() {
        let s = scenario();
        assert_eq!(s.design_histories.len(), s.initial.len());
        assert!(s
            .design_histories
            .iter()
            .all(|(_, iv)| iv.iter().all(|&(a, b)| b > a)));
    }
}
