//! # thrifty-workload — close-to-realistic MPPDBaaS tenant logs
//!
//! Implements the two-step log-generation methodology of §7.1 of *Parallel
//! Analytics as a Service* (SIGMOD 2013). Multi-tenant DaaS logs are never
//! public, so the paper *generates* them and this crate follows the recipe
//! verbatim:
//!
//! 1. **Real query log collection** ([`session`], [`library`]): simulate a
//!    tenant with `S ∈ [1,5]` autonomous users submitting single queries or
//!    batches of `M ∈ [1,10]` TPC-H/TPC-DS queries against a dedicated MPPDB,
//!    with think times `W ∈ [3,600]` s, for 3 hours; collect the query log.
//!    Repeat per parallelism level (2/4/8/16/32 nodes) and benchmark.
//! 2. **Multi-tenant log composition** ([`composition`]): sample `T` tenant
//!    sizes from a Zipf(θ) CDF, give each tenant a time zone, and paste three
//!    randomly chosen sessions per working day (morning / post-lunch
//!    afternoon / evening) over a 30-day horizon with weekends and two shared
//!    public holidays.
//!
//! The §7.4 "higher active tenant ratio" variants are configuration switches
//! ([`config::ActivityScenario`]).
//!
//! ```
//! use thrifty_workload::prelude::*;
//!
//! let mut cfg = GenerationConfig::small(42, 16);
//! cfg.parallelism_levels = vec![2, 4];
//! cfg.session_trials = 2;
//! let library = SessionLibrary::generate(&cfg);
//! let composer = Composer::new(&cfg, &library);
//! let specs = composer.tenant_specs();
//! let log = composer.compose_log(&specs[0]);
//! assert!(!log.events.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod composition;
pub mod config;
pub mod drift;
pub mod library;
pub mod log;
pub mod persist;
pub mod rng;
pub mod scenarios;
pub mod session;
pub mod templates;
pub mod tenant;
pub mod wakeup;
pub mod zipf;

/// Commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::activity::{
        activity_stats, epoch_count, epochs_from_intervals, merge_intervals, ActivityStats,
    };
    pub use crate::composition::Composer;
    pub use crate::config::{ActivityScenario, GenerationConfig};
    pub use crate::drift::{ChurnEvent, DriftConfig, DriftQuery, DriftScenario, DRIFT_TEMPLATE};
    pub use crate::library::SessionLibrary;
    pub use crate::log::{LoggedQuery, MultiTenantLog, QueryEvent, SessionLog, TenantLog};
    pub use crate::persist::SavedCorpus;
    pub use crate::scenarios::{
        AdversarialScenario, ScenarioConfig, ScenarioKind, ScenarioQuery, SCENARIO_TEMPLATE,
    };
    pub use crate::templates::{
        catalog, template_name, tpch_q1, tpch_q19, Benchmark, NamedTemplate,
    };
    pub use crate::tenant::TenantSpec;
    pub use crate::wakeup::WakeupHeap;
    pub use crate::zipf::ZipfSampler;
}
