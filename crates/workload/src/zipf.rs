//! Zipf sampling of tenant sizes.
//!
//! §7.1 Step 2: "The skewness of the tenant size is chosen by sampling from
//! the CDF of a Zipf distribution with a parameter 0 < θ < 1, where a smaller
//! θ tends to uniform whereas a larger θ tends to skew. The default θ is
//! 0.8." Rank 1 is the smallest size (2-node tenants are the most common, as
//! in Figure 5.2 where counts decrease with parallelism).

use rand::Rng;

/// A sampler over `n` ranks with Zipf weight `1 / rank^θ`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative distribution over ranks `0..n`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew parameter `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must lie in (0, 1), got {theta}"
        );
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            // Order pinned: the CDF prefix sum walks ranks 1..=n in a
            // fixed sequential loop.
            // lint: allow(float-merge)
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating point: the last entry must cover u = 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k` (0-based).
    pub fn probability(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Samples a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(5, 0.8);
        let total: f64 = (0..5).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_ranks_are_more_likely() {
        let z = ZipfSampler::new(5, 0.8);
        for k in 1..5 {
            assert!(z.probability(k) < z.probability(k - 1));
        }
    }

    #[test]
    fn small_theta_tends_to_uniform() {
        let near_uniform = ZipfSampler::new(5, 0.01);
        let skewed = ZipfSampler::new(5, 0.99);
        // Ratio of most to least likely rank.
        let ratio_u = near_uniform.probability(0) / near_uniform.probability(4);
        let ratio_s = skewed.probability(0) / skewed.probability(4);
        assert!(ratio_u < 1.1, "near-uniform ratio {ratio_u}");
        assert!(ratio_s > 3.0, "skewed ratio {ratio_s}");
    }

    #[test]
    fn sampling_matches_probabilities() {
        let z = ZipfSampler::new(5, 0.8);
        let mut rng = stream_rng(1, 0, 0);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / n as f64;
            assert!(
                (empirical - z.probability(k)).abs() < 0.01,
                "rank {k}: empirical {empirical}, expected {}",
                z.probability(k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_of_one() {
        let _ = ZipfSampler::new(5, 1.0);
    }
}
