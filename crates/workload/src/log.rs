//! Log data structures: session logs (Step 1) and multi-tenant activity logs
//! (Step 2).

use crate::templates::Benchmark;
use crate::tenant::TenantSpec;
use mppdb_sim::query::{SimTenantId, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One query observed in a Step-1 session, relative to the session start.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoggedQuery {
    /// Submission offset from the session start.
    pub offset: SimDuration,
    /// The template that was instantiated.
    pub template: TemplateId,
    /// Observed latency on the tenant's *dedicated* MPPDB, including any
    /// intra-tenant concurrency from the tenant's own users. This is the
    /// latency the tenant experienced before consolidation — i.e. the SLA.
    pub latency: SimDuration,
}

/// A 3-hour "real query log of an artificial tenant" (Step 1 of §7.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionLog {
    /// Parallelism of the dedicated MPPDB the session ran on.
    pub parallelism: u32,
    /// Benchmark flavour of the queries.
    pub benchmark: Benchmark,
    /// Number of autonomous users (`S`) in this session.
    pub users: u32,
    /// The queries, ordered by submission offset.
    pub queries: Vec<LoggedQuery>,
    /// Merged busy intervals `[start_ms, end_ms)` relative to the session
    /// start: the spans during which at least one query was executing.
    pub busy: Vec<(u64, u64)>,
}

impl SessionLog {
    /// Total busy milliseconds in the session.
    pub fn busy_ms(&self) -> u64 {
        self.busy.iter().map(|(s, e)| e - s).sum()
    }

    /// Instant (relative ms) at which the last query finishes, or 0 if the
    /// session is empty.
    pub fn end_ms(&self) -> u64 {
        self.busy.last().map(|&(_, e)| e).unwrap_or(0)
    }
}

/// One query submission in a tenant's composed activity log.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryEvent {
    /// The submitting tenant.
    pub tenant: SimTenantId,
    /// Absolute submission instant on the 30-day timeline.
    pub submit: SimTime,
    /// The template to execute.
    pub template: TemplateId,
    /// The SLA latency: what the tenant observed for this query on its
    /// dedicated MPPDB (Step 1). After consolidation Thrifty must not exceed
    /// it (up to the P% guarantee).
    pub sla_latency: SimDuration,
}

/// The composed activity log of one tenant over the full horizon.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantLog {
    /// The tenant.
    pub spec: TenantSpec,
    /// Query submissions ordered by submit time.
    pub events: Vec<QueryEvent>,
}

impl TenantLog {
    /// Busy intervals `[start_ms, end_ms)` of this tenant: spans where at
    /// least one of its queries is executing, merged.
    pub fn busy_intervals(&self) -> Vec<(u64, u64)> {
        let raw: Vec<(u64, u64)> = self
            .events
            .iter()
            .map(|e| (e.submit.as_ms(), e.submit.as_ms() + e.sla_latency.as_ms()))
            .collect();
        crate::activity::merge_intervals(raw)
    }
}

/// The full multi-tenant corpus produced by Step 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiTenantLog {
    /// Horizon of the timeline in ms.
    pub horizon_ms: u64,
    /// Per-tenant logs, indexed by tenant id order.
    pub tenants: Vec<TenantLog>,
}

impl MultiTenantLog {
    /// All query events across tenants, globally ordered by submit time
    /// (ties broken by tenant id) — the replay order for the service loop.
    pub fn merged_events(&self) -> Vec<QueryEvent> {
        let mut all: Vec<QueryEvent> = self
            .tenants
            .iter()
            .flat_map(|t| t.events.iter().copied())
            .collect();
        all.sort_by_key(|e| (e.submit, e.tenant));
        all
    }

    /// Total number of query events.
    pub fn event_count(&self) -> usize {
        self.tenants.iter().map(|t| t.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tenant: u32, submit_ms: u64, latency_ms: u64) -> QueryEvent {
        QueryEvent {
            tenant: SimTenantId(tenant),
            submit: SimTime::from_ms(submit_ms),
            template: TemplateId(101),
            sla_latency: SimDuration::from_ms(latency_ms),
        }
    }

    fn spec(id: u32) -> TenantSpec {
        TenantSpec {
            id: SimTenantId(id),
            nodes: 2,
            data_gb: 200.0,
            benchmark: Benchmark::TpcH,
            offset_hours: 0,
        }
    }

    #[test]
    fn busy_intervals_merge_overlaps() {
        let log = TenantLog {
            spec: spec(0),
            events: vec![ev(0, 0, 100), ev(0, 50, 100), ev(0, 500, 50)],
        };
        assert_eq!(log.busy_intervals(), vec![(0, 150), (500, 550)]);
    }

    #[test]
    fn merged_events_are_globally_sorted() {
        let m = MultiTenantLog {
            horizon_ms: 1000,
            tenants: vec![
                TenantLog {
                    spec: spec(0),
                    events: vec![ev(0, 10, 5), ev(0, 300, 5)],
                },
                TenantLog {
                    spec: spec(1),
                    events: vec![ev(1, 5, 5), ev(1, 300, 5)],
                },
            ],
        };
        let merged = m.merged_events();
        assert_eq!(m.event_count(), 4);
        assert_eq!(merged[0].tenant, SimTenantId(1));
        assert_eq!(merged[1].tenant, SimTenantId(0));
        // Tie at 300 ms broken by tenant id.
        assert_eq!(merged[2].tenant, SimTenantId(0));
        assert_eq!(merged[3].tenant, SimTenantId(1));
    }
}
