//! Grouping scaling benchmarks: serial vs shard-parallel 2-step on the
//! synthetic scale corpus — what the `scale` sweep's grouping column
//! measures, isolated for profiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thrifty::prelude::*;
use thrifty_bench::experiments::scale::{synthetic_histories, HORIZON_MS};
use thrifty_bench::sharded::two_step_grouping_sharded;

fn problem(tenants: usize) -> GroupingProblem {
    let epoch = EpochConfig::new(600_000, HORIZON_MS);
    synthetic_histories(42, tenants)
        .iter()
        .fold(GroupingProblem::builder(), |b, h| {
            b.tenant(
                h.tenant,
                ActivityVector::from_intervals(&h.intervals, epoch),
            )
        })
        .replication(1)
        .sla_p(0.999)
        .build()
        .expect("synthetic histories form a consistent grouping instance")
}

fn bench_two_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping_scale/two_step");
    group.sample_size(10);
    for tenants in [1_000usize, 2_500, 5_000] {
        let p = problem(tenants);
        let config = TwoStepConfig::default();
        group.bench_with_input(BenchmarkId::new("serial", tenants), &p, |b, p| {
            b.iter(|| black_box(two_step_grouping_with(p, config).groups.len()))
        });
        group.bench_with_input(BenchmarkId::new("sharded", tenants), &p, |b, p| {
            b.iter(|| black_box(two_step_grouping_sharded(p, config).groups.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_step);
criterion_main!(benches);
