//! Workload-generation benchmarks: Step-1 session simulation and Step-2
//! multi-tenant composition (§7.1) — the cost of regenerating a corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thrifty_workload::prelude::*;
use thrifty_workload::rng::stream_rng;
use thrifty_workload::session::generate_session;

fn bench_session_generation(c: &mut Criterion) {
    let cfg = GenerationConfig::small(7, 10);
    let mut group = c.benchmark_group("workload_session");
    group.sample_size(20);
    for parallelism in [2u32, 32] {
        group.bench_function(format!("{parallelism}-node_3h_session"), |b| {
            let mut trial = 0u64;
            b.iter(|| {
                trial += 1;
                black_box(generate_session(
                    &cfg,
                    parallelism,
                    Benchmark::TpcH,
                    &mut stream_rng(1, 2, trial),
                ))
            })
        });
    }
    group.finish();
}

fn bench_tenant_composition(c: &mut Criterion) {
    let mut cfg = GenerationConfig::small(7, 50);
    cfg.session_trials = 6;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let spec = composer.tenant_specs()[0];
    let mut group = c.benchmark_group("workload_composition");
    group.bench_function("tenant_7day_log", |b| {
        b.iter(|| black_box(composer.compose_log(&spec)))
    });
    group.bench_function("tenant_7day_busy_intervals", |b| {
        b.iter(|| black_box(composer.busy_intervals(&spec)))
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let z = ZipfSampler::new(5, 0.8);
    c.bench_function("workload/zipf_sample", |b| {
        let mut rng = stream_rng(3, 0, 0);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_session_generation,
    bench_tenant_composition,
    bench_zipf
);
criterion_main!(benches);
