//! Discrete-event engine benchmarks: processor-sharing throughput under
//! varying concurrency — the substrate cost of every replay experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mppdb_sim::prelude::*;
use std::hint::black_box;

fn bench_sequential_queries(c: &mut Criterion) {
    let template = QueryTemplate::new(TemplateId(1), 100.0, 0.0);
    c.bench_function("sim/sequential_1000_queries", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(4));
            let inst = cluster
                .provision_instance(4, &[(SimTenantId(0), 100.0)])
                .unwrap();
            for _ in 0..1000 {
                cluster
                    .submit(inst, QuerySpec::new(template, 100.0, SimTenantId(0)))
                    .unwrap();
                cluster.run_to_quiescence();
            }
            black_box(cluster.now())
        })
    });
}

fn bench_concurrent_queries(c: &mut Criterion) {
    // Worst case for processor sharing: k concurrent queries cause O(k)
    // work per arrival/completion reschedule.
    let template = QueryTemplate::new(TemplateId(1), 100.0, 0.0);
    let mut group = c.benchmark_group("sim_concurrent_batch");
    group.sample_size(20);
    for k in [10usize, 100, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(4));
                let inst = cluster
                    .provision_instance(4, &[(SimTenantId(0), 100.0)])
                    .unwrap();
                for _ in 0..k {
                    cluster
                        .submit(inst, QuerySpec::new(template, 100.0, SimTenantId(0)))
                        .unwrap();
                }
                black_box(cluster.run_to_quiescence().len())
            })
        });
    }
    group.finish();
}

fn bench_many_instances(c: &mut Criterion) {
    // A fleet of instances with interleaved traffic — the shape of a full
    // service replay.
    let template = QueryTemplate::new(TemplateId(1), 100.0, 0.0);
    c.bench_function("sim/fleet_50_instances_interleaved", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(100));
            let instances: Vec<InstanceId> = (0..50u32)
                .map(|i| {
                    cluster
                        .provision_instance(2, &[(SimTenantId(i), 100.0)])
                        .unwrap()
                })
                .collect();
            for round in 0..10u32 {
                for (i, &inst) in instances.iter().enumerate() {
                    cluster
                        .submit(inst, QuerySpec::new(template, 100.0, SimTenantId(i as u32)))
                        .unwrap();
                }
                cluster.run_until(SimTime::from_secs(u64::from(round + 1) * 600));
            }
            black_box(cluster.run_to_quiescence().len())
        })
    });
}

criterion_group!(
    benches,
    bench_sequential_queries,
    bench_concurrent_queries,
    bench_many_instances
);
criterion_main!(benches);
