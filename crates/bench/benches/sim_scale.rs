//! Service-replay scaling benchmarks: the heap-scheduled simulator driven
//! through [`ThriftyService`] at growing tenant counts — the per-iteration
//! shape of one `scale` sweep point (generate → plan → deploy → replay).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mppdb_sim::prelude::{QueryTemplate, TemplateId};
use std::hint::black_box;
use thrifty::prelude::*;
use thrifty_bench::experiments::scale::{direct_plan, query_log, synthetic_histories};

fn replay(histories: &[TenantHistory], per_tenant: usize) -> usize {
    let template = QueryTemplate::new(TemplateId(9_000), 600.0, 0.0);
    let plan = direct_plan(histories);
    let queries = query_log(histories, per_tenant, &template);
    let cfg = ServiceConfig::builder()
        .elastic_scaling(false)
        .telemetry(TelemetryConfig::disabled())
        .build()
        .expect("valid service config");
    let mut service = ThriftyService::deploy(&plan, plan.nodes_used() as usize, [template], cfg)
        .expect("direct plan deploys");
    service
        .replay(queries)
        .expect("scale replay succeeds")
        .summary
        .total
}

fn bench_full_day_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scale/full_day_replay");
    group.sample_size(10);
    for tenants in [1_000usize, 5_000, 20_000] {
        let histories = synthetic_histories(42, tenants);
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &histories,
            |b, histories| b.iter(|| black_box(replay(histories, 4))),
        );
    }
    group.finish();
}

fn bench_history_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scale/history_generation");
    group.sample_size(10);
    for tenants in [10_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| b.iter(|| black_box(synthetic_histories(42, tenants).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_day_replay, bench_history_generation);
criterion_main!(benches);
