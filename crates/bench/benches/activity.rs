//! Activity-vector benchmarks: interval → epoch conversion and histogram
//! maintenance — the inner loops of the grouping pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thrifty::prelude::*;

/// Synthetic busy intervals: `n` sessions of ~20 min spread over 7 days.
fn intervals(n: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|k| {
            let start = k * (7 * 86_400_000 / n);
            (start, start + 1_200_000)
        })
        .collect()
}

fn bench_from_intervals(c: &mut Criterion) {
    let mut group = c.benchmark_group("activity_from_intervals");
    let horizon = 7 * 86_400_000u64;
    for epoch_ms in [1_000u64, 10_000, 90_000] {
        let iv = intervals(400);
        let cfg = EpochConfig::new(epoch_ms, horizon);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}s", epoch_ms / 1000)),
            &cfg,
            |b, &cfg| b.iter(|| black_box(ActivityVector::from_intervals(black_box(&iv), cfg))),
        );
    }
    group.finish();
}

fn bench_histogram_add(c: &mut Criterion) {
    let horizon = 7 * 86_400_000u64;
    let cfg = EpochConfig::new(10_000, horizon);
    let v = ActivityVector::from_intervals(&intervals(400), cfg);
    c.bench_function("activity/histogram_add", |b| {
        b.iter_with_setup(
            || ActiveCountHistogram::new(cfg.epoch_count()),
            |mut h| {
                h.add(black_box(&v));
                black_box(h)
            },
        )
    });
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    let horizon = 7 * 86_400_000u64;
    let cfg = EpochConfig::new(10_000, horizon);
    let mut h = ActiveCountHistogram::new(cfg.epoch_count());
    for k in 0..10u64 {
        let shifted: Vec<(u64, u64)> = intervals(400)
            .iter()
            .map(|&(s, e)| (s + k * 60_000, e + k * 60_000))
            .collect();
        h.add(&ActivityVector::from_intervals(&shifted, cfg));
    }
    let candidate = ActivityVector::from_intervals(&intervals(400), cfg);
    c.bench_function("activity/ttp_with_candidate", |b| {
        b.iter(|| black_box(h.ttp_with(black_box(&candidate), 3)))
    });
}

criterion_group!(
    benches,
    bench_from_intervals,
    bench_histogram_add,
    bench_candidate_evaluation
);
criterion_main!(benches);
