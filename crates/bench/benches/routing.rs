//! Query-routing benchmarks: Algorithm 1 decision latency — the router sits
//! on the critical path of every tenant query at run time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thrifty::prelude::*;

fn bench_route_complete_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for a in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("route_complete", a), &a, |b, &a| {
            let mut router = QueryRouter::new(a);
            let mut i = 0u32;
            b.iter(|| {
                let tenant = TenantId(i % 40);
                i = i.wrapping_add(1);
                let route = router.route(black_box(tenant));
                router.complete(route.mppdb, tenant).unwrap();
                black_box(route)
            })
        });
    }
    group.finish();
}

fn bench_route_under_load(c: &mut Criterion) {
    // Routing with many sticky tenants resident: the serving() scan must
    // stay cheap.
    c.bench_function("routing/route_under_load", |b| {
        let mut router = QueryRouter::new(4);
        for t in 0..4u32 {
            router.route(TenantId(t));
        }
        let mut i = 0u32;
        b.iter(|| {
            let tenant = TenantId(4 + (i % 60));
            i = i.wrapping_add(1);
            let route = router.route(black_box(tenant)); // overflow path
            router.complete(route.mppdb, tenant).unwrap();
            black_box(route)
        })
    });
}

criterion_group!(benches, bench_route_complete_cycle, bench_route_under_load);
criterion_main!(benches);
