//! Tenant-grouping benchmarks: the 2-step heuristic vs the FFD baseline,
//! plus the sparse-incremental vs dense-recompute TTP ablation
//! (DESIGN.md §6.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thrifty::prelude::*;
use thrifty_workload::prelude::*;

/// Builds a grouping problem from a generated corpus.
fn build_problem(tenants: usize, epoch_ms: u64) -> GroupingProblem {
    let mut cfg = GenerationConfig::small(101, tenants);
    cfg.session_trials = 6;
    let library = SessionLibrary::generate(&cfg);
    let composer = Composer::new(&cfg, &library);
    let epoch = EpochConfig::new(epoch_ms, cfg.horizon_ms());
    let mut ts = Vec::new();
    let mut activities = Vec::new();
    for s in composer.tenant_specs() {
        ts.push(Tenant::new(s.id, s.nodes, s.data_gb));
        activities.push(ActivityVector::from_intervals(
            &composer.busy_intervals(&s),
            epoch,
        ));
    }
    GroupingProblem::new(ts, activities, 3, 0.999)
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping_algorithms");
    group.sample_size(10);
    for tenants in [100usize, 300] {
        let problem = build_problem(tenants, 30_000);
        group.bench_with_input(BenchmarkId::new("two_step", tenants), &problem, |b, p| {
            b.iter(|| black_box(two_step_grouping(p)))
        });
        group.bench_with_input(BenchmarkId::new("ffd", tenants), &problem, |b, p| {
            b.iter(|| black_box(ffd_grouping(p)))
        });
    }
    group.finish();
}

fn bench_epoch_granularity(c: &mut Criterion) {
    // Figure 7.1c in bench form: runtime grows as epochs shrink.
    let mut group = c.benchmark_group("grouping_epoch_granularity");
    group.sample_size(10);
    for epoch_ms in [1_000u64, 10_000, 90_000] {
        let problem = build_problem(150, epoch_ms);
        group.bench_with_input(
            BenchmarkId::new("two_step", format!("{}s", epoch_ms / 1000)),
            &problem,
            |b, p| b.iter(|| black_box(two_step_grouping(p))),
        );
    }
    group.finish();
}

fn bench_representation_ablation(c: &mut Criterion) {
    // The incremental histogram makes candidate evaluation
    // O(active epochs); the dense reference recomputes O(d) per evaluation.
    let problem = build_problem(150, 10_000);
    let d = problem.d();
    let mut hist = ActiveCountHistogram::new(d);
    for v in problem.activities.iter().take(8) {
        hist.add(v);
    }
    let candidate = &problem.activities[9];
    let committed: Vec<&ActivityVector> = problem.activities.iter().take(10).collect();

    let mut group = c.benchmark_group("ttp_evaluation");
    group.bench_function("incremental_candidate", |b| {
        b.iter(|| black_box(hist.ttp_with(black_box(candidate), 3)))
    });
    group.bench_function("dense_recompute", |b| {
        b.iter(|| black_box(ActiveCountHistogram::ttp_dense(black_box(&committed), d, 3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_epoch_granularity,
    bench_representation_ablation
);
criterion_main!(benches);
