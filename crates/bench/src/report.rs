//! Plain-text table rendering for experiment output.
//!
//! Every experiment produces one or more [`Table`]s whose rows mirror the
//! series of the corresponding paper figure; the harness prints them with
//! aligned columns so EXPERIMENTS.md can quote them directly.

use crate::parallel::StageTiming;
use serde::Serialize;
use std::fmt;
use thrifty::telemetry::TelemetrySnapshot;

/// One table of an experiment's output.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Table caption, e.g. `"Figure 7.1a — consolidation effectiveness"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            line.push_str(&format!("{h:>w$}  "));
        }
        writeln!(f, "{}", line.trim_end())?;
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                line.push_str(&format!("{cell:>w$}  "));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// A complete experiment result: identifier, context line, tables, and the
/// parallel-stage timings recorded while producing them.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig7.1"`).
    pub id: String,
    /// Human description (paper artefact + setting).
    pub context: String,
    /// The tables.
    pub tables: Vec<Table>,
    /// Wall-clock accounting of every parallel stage that ran, attached by
    /// [`crate::experiments::run`] and persisted in `BENCH_<id>.json` so a
    /// `THRIFTY_THREADS=1` baseline can be compared against a parallel run.
    pub timings: Vec<StageTiming>,
    /// Telemetry recorded by the service replay backing this experiment,
    /// if one ran. Persisted in `BENCH_<id>.json` so the perf trajectory
    /// gains utilization / overflow / queue-depth columns.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {}", self.id, self.context)?;
        for t in &self.tables {
            writeln!(f)?;
            write!(f, "{t}")?;
        }
        if let Some(snap) = &self.telemetry {
            if snap.enabled {
                writeln!(f)?;
                write!(f, "{}", telemetry_counters_table(snap))?;
                writeln!(f)?;
                write!(f, "{}", telemetry_instances_table(snap))?;
            }
        }
        if !self.timings.is_empty() {
            writeln!(f)?;
            write!(f, "{}", timing_table(&self.timings))?;
        }
        Ok(())
    }
}

/// Renders the counters of a [`TelemetrySnapshot`] as a table.
pub fn telemetry_counters_table(snap: &TelemetrySnapshot) -> Table {
    let mut t = Table::new("Service telemetry — counters", &["counter", "value"]);
    for (name, value) in &snap.counters {
        t.push_row(vec![name.clone(), value.to_string()]);
    }
    if snap.dropped_events > 0 {
        t.push_row(vec![
            "(dropped events)".into(),
            snap.dropped_events.to_string(),
        ]);
    }
    t
}

/// Renders per-instance utilization of a [`TelemetrySnapshot`] as a table.
pub fn telemetry_instances_table(snap: &TelemetrySnapshot) -> Table {
    let mut t = Table::new(
        "Service telemetry — per-instance utilization",
        &[
            "instance", "nodes", "util", "avg q", "max q", "subm", "done", "canc", "slowdown",
        ],
    );
    for i in &snap.instances {
        t.push_row(vec![
            i.instance.to_string(),
            i.nodes.to_string(),
            pct(i.utilization),
            num(i.avg_concurrency, 2),
            i.max_concurrency.to_string(),
            i.submitted.to_string(),
            i.completed.to_string(),
            i.cancelled.to_string(),
            format!("{:.2}x", i.mean_slowdown),
        ]);
    }
    t
}

/// Renders stage timings as a standard [`Table`] (also used by the
/// `experiments` binary for its stderr summary).
pub fn timing_table(timings: &[StageTiming]) -> Table {
    let mut t = Table::new(
        "Parallel stage timings (busy = serial-equivalent cost)",
        &["stage", "tasks", "threads", "wall", "busy", "speedup"],
    );
    for s in timings {
        t.push_row(vec![
            s.stage.clone(),
            s.tasks.to_string(),
            s.threads.to_string(),
            dur(s.wall),
            dur(s.busy),
            format!("{:.1}x", s.speedup()),
        ]);
    }
    t
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with `digits` decimals.
pub fn num(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Renders a unicode sparkline of `values` scaled to `[lo, hi]` (values
/// outside the range are clamped). Handy for RT-TTP traces in terminal
/// output.
pub fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    assert!(hi > lo, "sparkline range must be non-empty");
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            BARS[((t * (BARS.len() - 1) as f64).round()) as usize]
        })
        .collect()
}

/// Formats a `Duration` compactly.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.0}ms", s * 1000.0)
    } else if s < 120.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10.0%".into()]);
        t.push_row(vec!["1000".into(), "9.5%".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("x"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn sparkline_scales_and_clamps() {
        let s = sparkline(&[0.0, 0.5, 1.0, 2.0, -1.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[0], '\u{2581}');
        assert_eq!(chars[2], '\u{2588}');
        assert_eq!(chars[3], '\u{2588}'); // clamped high
        assert_eq!(chars[4], '\u{2581}'); // clamped low
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.815), "81.5%");
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(dur(std::time::Duration::from_millis(250)), "250ms");
        assert_eq!(dur(std::time::Duration::from_secs(90)), "90.0s");
        assert_eq!(dur(std::time::Duration::from_secs(600)), "10.0min");
    }
}
