//! Deterministic parallel execution for the experiment pipeline.
//!
//! Every expensive stage of the harness — per-tenant history composition,
//! the FFD-vs-2-step advisor comparison, and the per-point sweep loops —
//! fans out through this module. Two primitives cover all of them:
//!
//! * [`par_map`] — apply a function to every element of a slice on a pool
//!   of scoped worker threads, returning results **in input order**.
//! * [`par_join2`] — run two independent closures concurrently.
//!
//! # Determinism contract
//!
//! Parallelism here never changes *what* is computed, only *when*. Each
//! task owns an independent input (tenant spec, sweep point, algorithm
//! configuration) and the workload generator derives every random stream
//! from `(seed, stream, substream)` rather than from generation order, so
//! a task's output is a pure function of its input. Because `par_map`
//! reassembles results by input index, the pipeline output is byte-for-byte
//! identical at any thread count — `tests/determinism.rs` enforces this
//! against the serial run. The only thing allowed to vary is wall-clock
//! time (`ConsolidationReport::runtime` and the [`StageTiming`] records).
//!
//! # Thread-count knob
//!
//! The pool width comes from, in order of precedence:
//!
//! 1. [`set_thread_override`] — a programmatic override, used by tests and
//!    benchmarks (avoids racy `std::env::set_var` calls);
//! 2. the `THRIFTY_THREADS` environment variable (read once; `1` forces
//!    the exact serial code path);
//! 3. [`std::thread::available_parallelism`].
//!
//! Stages nest (a sweep point runs its own history composition and advisor
//! comparison), but only the **outermost** stage on any thread fans out:
//! tasks already running on a worker thread execute nested stages on the
//! serial code path. This keeps the thread count bounded by the knob
//! instead of multiplying per nesting level, and gives the widest fan-out
//! (the one with the best load balance) all the cores.
//!
//! # Timings
//!
//! Every `par_map`/`par_join2` call records a [`StageTiming`] into a
//! process-global registry; [`take_timings`] drains it. The experiment
//! dispatcher attaches the drained records to each
//! [`ExperimentResult`](crate::report::ExperimentResult), and the
//! `experiments` binary persists them in `BENCH_<id>.json`, so the
//! speedup of a parallel run over `THRIFTY_THREADS=1` is directly
//! measurable from the recorded wall vs busy times.

use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Wall-clock accounting for one parallel stage.
#[derive(Clone, Debug, Serialize)]
pub struct StageTiming {
    /// Stage label, e.g. `"histories"` or `"sweep:fig7.1"`.
    pub stage: String,
    /// Worker threads the stage ran on (1 = the serial code path).
    pub threads: usize,
    /// Number of tasks in the stage.
    pub tasks: usize,
    /// Wall-clock time of the whole stage.
    pub wall: Duration,
    /// Sum of per-task times (the serial-equivalent cost). `busy / wall`
    /// is the stage's effective speedup.
    pub busy: Duration,
    /// The longest single task — the lower bound any thread count can
    /// reach for this stage.
    pub longest_task: Duration,
}

impl StageTiming {
    /// Effective speedup over a serial execution of the same tasks.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

/// `0` means "no override"; set via [`set_thread_override`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on scoped worker threads; nested stages then run serially so
    /// the process-wide thread count stays bounded by the knob.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Drained by [`take_timings`]; appended by every stage.
static TIMINGS: Mutex<Vec<StageTiming>> = Mutex::new(Vec::new());

/// Overrides the thread count programmatically (`None` restores the
/// `THRIFTY_THREADS` / `available_parallelism` default). Global: tests
/// that toggle it must do both runs within one `#[test]`.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

fn env_default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("THRIFTY_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// The configured maximum worker-thread count for a stage: 1 on worker
/// threads (nested stages run serially), the override / `THRIFTY_THREADS` /
/// `available_parallelism` setting otherwise.
pub fn max_threads() -> usize {
    if IN_WORKER.with(std::cell::Cell::get) {
        return 1;
    }
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_default_threads(),
        n => n,
    }
}

/// Drains all stage timings recorded since the last call, in the order
/// the stages completed.
pub fn take_timings() -> Vec<StageTiming> {
    std::mem::take(&mut TIMINGS.lock().expect("timings registry poisoned"))
}

fn record(stage: &str, threads: usize, wall: Duration, task_times: &[Duration]) {
    let timing = StageTiming {
        stage: stage.to_string(),
        threads,
        tasks: task_times.len(),
        wall,
        busy: task_times.iter().sum(),
        longest_task: task_times.iter().max().copied().unwrap_or_default(),
    };
    TIMINGS
        .lock()
        .expect("timings registry poisoned")
        .push(timing);
}

/// Applies `f` to every element of `items` on up to [`max_threads`]
/// scoped worker threads and returns the results **in input order**.
///
/// With one thread (or one item) this is exactly `items.iter().map(f)` —
/// the serial code path the determinism tests compare against. A panic in
/// any task is propagated to the caller with its original payload.
pub fn par_map<T, R, F>(stage: &str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let wall_start = Instant::now();
    let threads = max_threads().min(items.len().max(1));
    let mut task_times: Vec<Duration> = Vec::with_capacity(items.len());
    let results: Vec<R> = if threads <= 1 {
        items
            .iter()
            .map(|item| {
                let t0 = Instant::now();
                let r = f(item);
                task_times.push(t0.elapsed());
                r
            })
            .collect()
    } else {
        // Workers pull indices from a shared counter (cheap dynamic load
        // balancing — sweep points differ wildly in cost) and tag each
        // result with its index so the merge restores input order.
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R, Duration)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        IN_WORKER.with(|w| w.set(true));
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            let t0 = Instant::now();
                            let r = f(item);
                            local.push((i, r, t0.elapsed()));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => tagged.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        tagged.sort_unstable_by_key(|&(i, _, _)| i);
        tagged
            .into_iter()
            .map(|(_, r, t)| {
                task_times.push(t);
                r
            })
            .collect()
    };
    record(stage, threads, wall_start.elapsed(), &task_times);
    results
}

/// Runs two independent closures, concurrently when more than one thread
/// is configured, and returns both results. Panics propagate with their
/// original payload.
pub fn par_join2<A, B, FA, FB>(stage: &str, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let wall_start = Instant::now();
    let threads = max_threads();
    let (a, b, ta, tb) = if threads <= 1 {
        let t0 = Instant::now();
        let a = fa();
        let ta = t0.elapsed();
        let t0 = Instant::now();
        let b = fb();
        (a, b, ta, t0.elapsed())
    } else {
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                let t0 = Instant::now();
                let b = fb();
                (b, t0.elapsed())
            });
            let t0 = Instant::now();
            let a = fa();
            let ta = t0.elapsed();
            match handle.join() {
                Ok((b, tb)) => (a, b, ta, tb),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    };
    record(stage, threads.min(2), wall_start.elapsed(), &[ta, tb]);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..200).collect();
        let out = par_map("test:order", &items, |&x| x * 2);
        set_thread_override(None);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        set_thread_override(Some(1));
        let serial = par_map("test:serial", &items, |&x| x.wrapping_mul(0x9E37_79B9));
        set_thread_override(Some(8));
        let parallel = par_map("test:parallel", &items, |&x| x.wrapping_mul(0x9E37_79B9));
        set_thread_override(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_join2_returns_both_results() {
        set_thread_override(Some(2));
        let (a, b) = par_join2("test:join", || 1 + 1, || "two");
        set_thread_override(None);
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn par_map_propagates_panics() {
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..16).collect();
        // Restore the default before panicking so other tests in this
        // process are unaffected even under `--test-threads=1`.
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                set_thread_override(None);
            }
        }
        let _reset = Reset;
        let _ = par_map("test:panic", &items, |&x| {
            if x == 7 {
                panic!("task boom");
            }
            x
        });
    }

    #[test]
    fn timings_record_stage_shape() {
        let _ = take_timings();
        set_thread_override(Some(3));
        let items: Vec<u64> = (0..10).collect();
        let _ = par_map("test:timing", &items, |&x| x + 1);
        set_thread_override(None);
        let timings = take_timings();
        let t = timings
            .iter()
            .find(|t| t.stage == "test:timing")
            .expect("stage recorded");
        assert_eq!(t.tasks, 10);
        assert_eq!(t.threads, 3);
        assert!(t.busy >= t.longest_task);
        assert!(t.speedup() >= 0.0);
    }

    #[test]
    fn nested_stages_run_serially_on_workers() {
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..8).collect();
        let widths = par_map("test:nested", &items, |_| max_threads());
        set_thread_override(None);
        assert!(
            widths.iter().all(|&w| w == 1),
            "worker threads must not fan out again: {widths:?}"
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u64> = Vec::new();
        let out = par_map("test:empty", &items, |&x| x);
        assert!(out.is_empty());
    }
}
