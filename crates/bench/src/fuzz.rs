//! Randomized fault-injection invariant harness.
//!
//! Degradation, deferred replacement, and the telemetry that reports them
//! are easy to break silently: a missed `advance` or a dropped completion
//! check produces wrong latencies, not crashes. This module drives seeded
//! randomized schedules of submits, node failures, decommissions, and
//! scale-outs against the simulator ([`fuzz_cluster`]) and the full
//! service loop ([`fuzz_service`]), the tenant-lifecycle /
//! re-consolidation engine ([`fuzz_lifecycle`]), and the feedback-
//! controlled cadence ([`fuzz_controller`]), checking cluster-wide
//! invariants after every event batch:
//!
//! * **query conservation** — submitted = completed + cancelled + running,
//!   on the harness ledger *and* on the per-instance stats;
//! * **node bookkeeping** — free + powered + failed = total, and
//!   `effective_nodes ≥ 1` on every live instance;
//! * **repair liveness** — after quiescence the deferred-replacement queue
//!   and the free pool are never both non-empty;
//! * **telemetry reconciliation** — counters agree with the retained event
//!   stream and the SLA records;
//! * **monotone timestamps** — observable events never step backwards.
//!
//! Every schedule is a pure function of its seed, so a failing seed is a
//! deterministic reproducer. The `fault_fuzz` binary runs a seed range
//! (CI uses a fixed set); `tests/fault_fuzz.rs` additionally byte-compares
//! service outcomes across 1 and 4 harness threads.

use mppdb_sim::cluster::{Cluster, ClusterConfig, SimEvent};
use mppdb_sim::error::SimError;
use mppdb_sim::failure::FailurePlan;
use mppdb_sim::instance::{InstanceId, InstanceState};
use mppdb_sim::node::NodeId;
use mppdb_sim::query::{QueryId, QuerySpec, QueryTemplate, SimTenantId, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use thrifty::prelude::*;

/// Tenants every fuzzed instance hosts (keeps any submit routable).
const TENANTS: u32 = 3;

/// Deterministic digest of one cluster-level fuzz schedule. Two runs of
/// the same seed must produce equal outcomes (the driver asserts this via
/// serialization).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ClusterFuzzOutcome {
    /// The schedule seed.
    pub seed: u64,
    /// Actions executed.
    pub steps: u32,
    /// Queries submitted.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries cancelled (explicitly or by decommission).
    pub cancelled: u64,
    /// Node-failure events observed.
    pub node_failures: u64,
    /// Replacement joins observed.
    pub node_replacements: u64,
    /// Replacement deferrals observed (failure with an empty pool).
    pub deferrals: u64,
    /// Replacement retries observed (queue drained after a refill).
    pub retries: u64,
    /// Final simulated instant in ms.
    pub final_now_ms: u64,
}

/// Ledger + event bookkeeping shared by the invariant checks.
struct ClusterLedger {
    seed: u64,
    submitted: u64,
    completed: u64,
    cancelled: u64,
    node_failures: u64,
    node_replacements: u64,
    deferrals: u64,
    retries: u64,
    /// Live (instance, query) pairs the harness believes are running.
    running: Vec<(InstanceId, QueryId)>,
    /// Largest event timestamp seen so far.
    last_event_ms: u64,
}

impl ClusterLedger {
    fn absorb(&mut self, step: u32, events: &[SimEvent]) -> Result<(), String> {
        for e in events {
            let at = e.at().as_ms();
            if at < self.last_event_ms {
                return Err(format!(
                    "seed {} step {step}: event timestamp went backwards \
                     ({at} ms after {} ms): {e:?}",
                    self.seed, self.last_event_ms
                ));
            }
            self.last_event_ms = at;
            match e {
                SimEvent::QueryCompleted(c) => {
                    self.completed += 1;
                    let pos = self
                        .running
                        .iter()
                        .position(|&(i, q)| i == c.instance && q == c.query);
                    match pos {
                        Some(p) => {
                            self.running.swap_remove(p);
                        }
                        None => {
                            return Err(format!(
                                "seed {} step {step}: completion for untracked query {:?}",
                                self.seed, c.query
                            ));
                        }
                    }
                    if c.finished < c.submitted {
                        return Err(format!(
                            "seed {} step {step}: query {:?} finished before submission",
                            self.seed, c.query
                        ));
                    }
                }
                SimEvent::NodeFailed { .. } => self.node_failures += 1,
                SimEvent::NodeReplaced { .. } => self.node_replacements += 1,
                SimEvent::ReplacementDeferred { .. } => self.deferrals += 1,
                SimEvent::ReplacementRetried { .. } => self.retries += 1,
                SimEvent::InstanceReady { .. } | SimEvent::TenantLoaded { .. } => {}
            }
        }
        Ok(())
    }
}

fn fuzz_template() -> QueryTemplate {
    QueryTemplate::new(TemplateId(900), 400.0, 0.0)
}

fn check_cluster_invariants(c: &Cluster, ledger: &ClusterLedger, step: u32) -> Result<(), String> {
    let seed = ledger.seed;
    let total = c.config().total_nodes;
    let accounted = c.free_nodes() + c.powered_nodes() + c.failed_nodes();
    if accounted != total {
        return Err(format!(
            "seed {seed} step {step}: node bookkeeping broke: free {} + powered {} \
             + failed {} != total {total}",
            c.free_nodes(),
            c.powered_nodes(),
            c.failed_nodes()
        ));
    }
    let mut sim_submitted = 0u64;
    let mut sim_completed = 0u64;
    let mut sim_cancelled = 0u64;
    for inst in c.instances() {
        let stats = inst.stats();
        sim_submitted += stats.submitted;
        sim_completed += stats.completed;
        sim_cancelled += stats.cancelled;
        if inst.state() == InstanceState::Decommissioned {
            continue;
        }
        let eff = inst.effective_nodes();
        if eff < 1 || eff > inst.nodes().len() {
            return Err(format!(
                "seed {seed} step {step}: instance {:?} effective_nodes {eff} out of \
                 [1, {}]",
                inst.id(),
                inst.nodes().len()
            ));
        }
        let factor = inst.degradation_factor();
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(format!(
                "seed {seed} step {step}: instance {:?} degradation factor {factor}",
                inst.id()
            ));
        }
    }
    let running = ledger.running.len() as u64;
    if ledger.submitted != ledger.completed + ledger.cancelled + running {
        return Err(format!(
            "seed {seed} step {step}: ledger conservation broke: {} submitted != \
             {} completed + {} cancelled + {running} running",
            ledger.submitted, ledger.completed, ledger.cancelled
        ));
    }
    if (sim_submitted, sim_completed, sim_cancelled)
        != (ledger.submitted, ledger.completed, ledger.cancelled)
    {
        return Err(format!(
            "seed {seed} step {step}: instance stats disagree with the ledger: \
             sim ({sim_submitted}, {sim_completed}, {sim_cancelled}) != ledger ({}, {}, {})",
            ledger.submitted, ledger.completed, ledger.cancelled
        ));
    }
    Ok(())
}

/// Runs one seeded randomized schedule against [`Cluster`] directly and
/// checks the invariants after every event batch. Returns the outcome
/// digest, or a message pinpointing the violated invariant.
pub fn fuzz_cluster(seed: u64) -> Result<ClusterFuzzOutcome, String> {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
    let total_nodes = rng.gen_range(8usize..20);
    let mut c = Cluster::new(ClusterConfig::with_instant_provisioning(total_nodes));
    let hosted: Vec<(SimTenantId, f64)> = (0..TENANTS).map(|t| (SimTenantId(t), 25.0)).collect();
    let first = c
        .provision_instance(rng.gen_range(2usize..5), &hosted)
        .map_err(|e| format!("seed {seed}: initial provision failed: {e}"))?;

    let mut live: Vec<InstanceId> = vec![first];
    let mut ledger = ClusterLedger {
        seed,
        submitted: 0,
        completed: 0,
        cancelled: 0,
        node_failures: 0,
        node_replacements: 0,
        deferrals: 0,
        retries: 0,
        running: Vec::new(),
        last_event_ms: 0,
    };
    let steps = 70u32;
    for step in 0..steps {
        let roll: u32 = rng.gen_range(0u32..100);
        if roll < 35 {
            // Advance time, delivering completions / replacements.
            let dt = rng.gen_range(100u64..20_000);
            let until = c.now() + SimDuration::from_ms(dt);
            let events = c.run_until(until);
            ledger.absorb(step, &events)?;
            // After a drain the repair queue and the pool are exclusive.
            if c.deferred_replacements() > 0 && c.free_nodes() > 0 {
                return Err(format!(
                    "seed {seed} step {step}: {} deferred replacements while \
                     {} nodes sit free",
                    c.deferred_replacements(),
                    c.free_nodes()
                ));
            }
        } else if roll < 60 {
            // Submit to a random live instance (skipped while provisioning).
            if let Some(&target) = pick(&mut rng, &live) {
                let spec = QuerySpec::new(
                    fuzz_template(),
                    rng.gen_range(5.0..60.0),
                    SimTenantId(rng.gen_range(0u32..TENANTS)),
                );
                match c.submit(target, spec) {
                    Ok(q) => {
                        ledger.submitted += 1;
                        ledger.running.push((target, q));
                    }
                    Err(SimError::InstanceNotReady(_)) => {}
                    Err(e) => {
                        return Err(format!(
                            "seed {seed} step {step}: unexpected submit error: {e}"
                        ));
                    }
                }
            }
        } else if roll < 75 {
            // Fail a random node (any state; double failures are no-ops).
            let node = NodeId(rng.gen_range(0u32..total_nodes as u32));
            let at = c.now() + SimDuration::from_ms(rng.gen_range(0u64..5_000));
            c.inject_node_failure(node, at)
                .map_err(|e| format!("seed {seed} step {step}: inject failed: {e}"))?;
        } else if roll < 85 {
            // Decommission a live instance (keep at least one alive).
            if live.len() > 1 {
                let idx = rng.gen_range(0usize..live.len());
                let victim = live.swap_remove(idx);
                let aborted = c
                    .decommission(victim)
                    .map_err(|e| format!("seed {seed} step {step}: decommission: {e}"))?;
                ledger.cancelled += aborted as u64;
                ledger.running.retain(|&(i, _)| i != victim);
            }
        } else if roll < 95 {
            // Scale out: provision another instance if the pool allows.
            let want = rng.gen_range(1usize..4);
            if c.free_nodes() >= want {
                let id = c
                    .provision_instance(want, &hosted)
                    .map_err(|e| format!("seed {seed} step {step}: provision: {e}"))?;
                live.push(id);
            }
        } else {
            // Cancel a random running query.
            if !ledger.running.is_empty() {
                let idx = rng.gen_range(0usize..ledger.running.len());
                let (inst, q) = ledger.running.swap_remove(idx);
                c.cancel_query(inst, q)
                    .map_err(|e| format!("seed {seed} step {step}: cancel: {e}"))?;
                ledger.cancelled += 1;
            }
        }
        check_cluster_invariants(&c, &ledger, step)?;
    }

    let events = c.run_to_quiescence();
    ledger.absorb(steps, &events)?;
    check_cluster_invariants(&c, &ledger, steps)?;
    if !ledger.running.is_empty() {
        return Err(format!(
            "seed {seed}: {} queries never completed after quiescence",
            ledger.running.len()
        ));
    }
    if c.deferred_replacements() > 0 && c.free_nodes() > 0 {
        return Err(format!(
            "seed {seed}: quiescent cluster left {} deferred replacements with \
             {} free nodes",
            c.deferred_replacements(),
            c.free_nodes()
        ));
    }
    Ok(ClusterFuzzOutcome {
        seed,
        steps,
        submitted: ledger.submitted,
        completed: ledger.completed,
        cancelled: ledger.cancelled,
        node_failures: ledger.node_failures,
        node_replacements: ledger.node_replacements,
        deferrals: ledger.deferrals,
        retries: ledger.retries,
        final_now_ms: c.now().as_ms(),
    })
}

fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        items.get(rng.gen_range(0usize..items.len()))
    }
}

/// Deterministic digest of one service-level fuzz schedule, carrying the
/// full serialized [`ServiceReport`] so thread-count comparisons are byte
/// exact.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ServiceFuzzOutcome {
    /// The schedule seed.
    pub seed: u64,
    /// Queries replayed.
    pub queries: u64,
    /// Failures injected (before idempotent collapsing).
    pub failures: u64,
    /// The telemetry-enabled service report, serialized.
    pub report_json: String,
}

/// Runs one seeded randomized schedule through [`ThriftyService`] with
/// telemetry fully enabled and reconciles counters, events, and SLA
/// records against each other.
pub fn fuzz_service(seed: u64) -> Result<ServiceFuzzOutcome, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
    let template = QueryTemplate::new(TemplateId(1), 100.0, 0.0);
    let members: Vec<Tenant> = (0..TENANTS)
        .map(|i| Tenant::new(TenantId(i), 2, 200.0))
        .collect();
    let a = rng.gen_range(1u32..4);
    let plan = DeploymentPlan {
        groups: vec![TenantGroupPlan::new(members, a, 2)],
    };
    let mut service = ThriftyService::deploy(
        &plan,
        12,
        [template],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .telemetry(TelemetryConfig::default())
            .build()
            .expect("valid service config"),
    )
    .map_err(|e| format!("seed {seed}: deploy failed: {e}"))?;

    // Random failure plan on the log timeline, injected before replay.
    let baseline =
        SimDuration::from_ms_f64(mppdb_sim::cost::isolated_latency_ms(&template, 200.0, 2));
    let failures = rng.gen_range(0u64..4);
    let mut fplan = FailurePlan::none();
    for _ in 0..failures {
        fplan = fplan.fail_at(
            NodeId(rng.gen_range(0u32..12)),
            SimTime::from_secs(rng.gen_range(0u64..3_000)),
        );
    }
    service
        .apply_failure_plan(&fplan)
        .map_err(|e| format!("seed {seed}: failure plan rejected: {e}"))?;

    let n = rng.gen_range(20u64..60);
    let mut queries: Vec<IncomingQuery> = (0..n)
        .map(|_| IncomingQuery {
            tenant: TenantId(rng.gen_range(0u32..TENANTS)),
            submit: SimTime::from_secs(rng.gen_range(0u64..3_600)),
            template: template.id,
            baseline,
        })
        .collect();
    queries.sort_by_key(|q| (q.submit, q.tenant));
    let report = service
        .replay(queries)
        .map_err(|e| format!("seed {seed}: replay failed: {e}"))?;

    check_service_report(seed, n, &report)?;
    let report_json = serde_json::to_string(&report)
        .map_err(|e| format!("seed {seed}: report serialization failed: {e}"))?;
    Ok(ServiceFuzzOutcome {
        seed,
        queries: n,
        failures,
        report_json,
    })
}

/// Telemetry-reconciliation invariants over a drained service report.
fn check_service_report(seed: u64, n: u64, report: &ServiceReport) -> Result<(), String> {
    let t = &report.telemetry;
    if !t.enabled {
        return Err(format!("seed {seed}: telemetry unexpectedly disabled"));
    }
    if t.dropped_events != 0 {
        return Err(format!(
            "seed {seed}: {} events dropped; reconciliation needs the full stream",
            t.dropped_events
        ));
    }
    let submitted = t.counter("queries.submitted");
    let completed = t.counter("queries.completed");
    let cancelled = t.counter("queries.cancelled");
    if submitted != n {
        return Err(format!(
            "seed {seed}: {submitted} submissions counted for {n} replayed queries"
        ));
    }
    if submitted != completed + cancelled {
        return Err(format!(
            "seed {seed}: conservation broke: {submitted} submitted != \
             {completed} completed + {cancelled} cancelled after drain"
        ));
    }
    if report.records.len() as u64 != completed {
        return Err(format!(
            "seed {seed}: {} SLA records for {completed} counted completions",
            report.records.len()
        ));
    }
    if t.counter("sla.met") + t.counter("sla.violated") != completed {
        return Err(format!(
            "seed {seed}: SLA verdict counters do not add up to {completed}"
        ));
    }
    // Counters must agree with the retained event stream.
    let count = |pred: fn(&TelemetryEvent) -> bool| t.events_where(pred).count() as u64;
    let pairs: [(&str, u64); 6] = [
        (
            "queries.submitted",
            count(|e| matches!(e, TelemetryEvent::QuerySubmitted { .. })),
        ),
        (
            "queries.completed",
            count(|e| matches!(e, TelemetryEvent::QueryCompleted { .. })),
        ),
        (
            "nodes.failed",
            count(|e| matches!(e, TelemetryEvent::NodeFailed { .. })),
        ),
        (
            "nodes.replaced",
            count(|e| matches!(e, TelemetryEvent::NodeReplaced { .. })),
        ),
        (
            "nodes.replacement_deferred",
            count(|e| matches!(e, TelemetryEvent::ReplacementDeferred { .. })),
        ),
        (
            "nodes.replacement_retried",
            count(|e| matches!(e, TelemetryEvent::ReplacementRetried { .. })),
        ),
    ];
    for (name, from_events) in pairs {
        if t.counter(name) != from_events {
            return Err(format!(
                "seed {seed}: counter {name} = {} but the event stream holds \
                 {from_events}",
                t.counter(name)
            ));
        }
    }
    // Event timestamps never step backwards.
    let mut last = 0u64;
    for e in &t.events {
        let at = e.at_ms();
        if at < last {
            return Err(format!(
                "seed {seed}: event timestamp went backwards ({at} ms after {last} ms): \
                 {e:?}"
            ));
        }
        last = at;
    }
    // Degraded time only accrues when failures actually landed.
    let failed_events = count(|e| matches!(e, TelemetryEvent::NodeFailed { .. }));
    for inst in &t.instances {
        if failed_events == 0 && inst.degraded_ms != 0 {
            return Err(format!(
                "seed {seed}: instance {:?} reports {} degraded ms without any \
                 node failure",
                inst.instance, inst.degraded_ms
            ));
        }
    }
    Ok(())
}

/// Deterministic digest of one tenant-lifecycle fuzz schedule
/// (register / deregister / re-consolidation cycles interleaved with
/// queries and time).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LifecycleFuzzOutcome {
    /// The schedule seed.
    pub seed: u64,
    /// Actions executed.
    pub steps: u32,
    /// Tenants registered during the run.
    pub registered: u64,
    /// Tenants deregistered during the run.
    pub deregistered: u64,
    /// Re-consolidation cycles completed.
    pub cycles: u64,
    /// Queries submitted.
    pub submitted: u64,
    /// The final service report, serialized.
    pub report_json: String,
}

/// Runs one seeded randomized tenant-lifecycle schedule through
/// [`ThriftyService`]: queries, time, registrations, deregistrations, and
/// re-consolidation cycles interleave freely, and after every step the
/// harness checks that
///
/// * every live tenant stays **routable** — its serving group exists, is
///   not retired, and still has instances;
/// * a group's replica count never drops below the count it went live
///   with while it serves tenants (the mid-migration replica floor);
/// * at quiescence **no query is lost or double-completed** (submitted =
///   completed, zero cancelled, one SLA record per completion) and every
///   bulk load that started also finished.
pub fn fuzz_lifecycle(seed: u64) -> Result<LifecycleFuzzOutcome, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6A09_E667_F3BC_C908);
    let template = QueryTemplate::new(TemplateId(2), 150.0, 0.0);
    let a = rng.gen_range(1u32..3);
    let members = |base: u32| -> Vec<Tenant> {
        (base..base + 2)
            .map(|i| Tenant::new(TenantId(i), 2, 100.0 + f64::from(i) * 25.0))
            .collect()
    };
    let plan = DeploymentPlan {
        groups: vec![
            TenantGroupPlan::new(members(0), a, 2),
            TenantGroupPlan::new(members(2), a, 2),
        ],
    };
    let total_nodes = rng.gen_range(14usize..30);
    let mut service = ThriftyService::deploy(
        &plan,
        total_nodes,
        [template],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .monitor_window_ms(4 * 3_600_000)
            .telemetry(TelemetryConfig::default().with_event_capacity(20_000))
            .build()
            .map_err(|e| format!("seed {seed}: config: {e}"))?,
    )
    .map_err(|e| format!("seed {seed}: deploy failed: {e}"))?;
    let recon = Reconsolidator::new(
        AdvisorConfig {
            replication: a,
            sla_p: 0.999,
            epoch: EpochConfig::new(10_000, 4 * 3_600_000),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        },
        1,
    );

    let mut next_tenant = 100u32;
    let mut registered = 0u64;
    let mut deregistered = 0u64;
    let mut submitted = 0u64;
    // Replica floor: the instance count each group went live with.
    let mut floors: Vec<usize> = Vec::new();
    let steps = 60u32;
    for step in 0..steps {
        let roll: u32 = rng.gen_range(0u32..100);
        if roll < 30 {
            // Let time pass (bulk loads land, queries finish, groups drain).
            // Half the rolls advance to the instant, half also run the
            // in-flight work to quiescence — both public stepping entry
            // points stay under fuzz.
            let dt = rng.gen_range(60_000u64..1_200_000);
            let target = SimTime::from_ms(service.log_now().as_ms() + dt);
            if roll < 15 {
                service
                    .advance_log_time(target)
                    .map_err(|e| format!("seed {seed} step {step}: advance: {e}"))?;
            } else {
                service
                    .run_until_quiescent_at(target)
                    .map_err(|e| format!("seed {seed} step {step}: quiesce: {e}"))?;
            }
        } else if roll < 60 {
            // Submit a query for a random live tenant (parked included).
            let live = service.live_tenants();
            if let Some(&tenant) = pick(&mut rng, &live) {
                let data_gb = rng.gen_range(50.0..300.0);
                let baseline = SimDuration::from_ms_f64(mppdb_sim::cost::isolated_latency_ms(
                    &template, data_gb, 2,
                ));
                service
                    .submit(IncomingQuery {
                        tenant,
                        submit: service.log_now(),
                        template: template.id,
                        baseline,
                    })
                    .map_err(|e| format!("seed {seed} step {step}: submit: {e}"))?;
                submitted += 1;
            }
        } else if roll < 75 {
            // Register a fresh tenant.
            let t = Tenant::new(TenantId(next_tenant), 2, rng.gen_range(20.0..200.0));
            next_tenant += 1;
            service
                .register_tenant(t)
                .map_err(|e| format!("seed {seed} step {step}: register: {e}"))?;
            registered += 1;
        } else if roll < 85 {
            // Deregister a random live tenant, keeping a quorum alive.
            let live = service.live_tenants();
            if live.len() > 2 {
                if let Some(&tenant) = pick(&mut rng, &live) {
                    service
                        .deregister_tenant(tenant)
                        .map_err(|e| format!("seed {seed} step {step}: deregister: {e}"))?;
                    deregistered += 1;
                }
            }
        } else {
            // Attempt a re-consolidation cycle from observed activity.
            if !service.reconsolidation_active() && !service.has_pending_registrations() {
                let plan = recon.plan(&service);
                if !plan.is_noop() {
                    match service.begin_reconsolidation(&plan) {
                        Ok(()) => {}
                        // Tight pools legitimately reject a double-run.
                        Err(ThriftyError::Sim(SimError::InsufficientNodes { .. })) => {}
                        Err(e) => {
                            return Err(format!("seed {seed} step {step}: begin cycle: {e}"));
                        }
                    }
                }
            }
        }
        check_lifecycle_invariants(&service, &mut floors, seed, step)?;
    }

    service
        .drain()
        .map_err(|e| format!("seed {seed}: final drain: {e}"))?;
    check_lifecycle_invariants(&service, &mut floors, seed, steps)?;
    let report = service.report();
    check_lifecycle_quiescence(seed, submitted, registered, deregistered, a, &report)?;
    let report_json = serde_json::to_string(&report)
        .map_err(|e| format!("seed {seed}: report serialization failed: {e}"))?;
    Ok(LifecycleFuzzOutcome {
        seed,
        steps,
        registered,
        deregistered,
        cycles: service.reconsolidation_cycles(),
        submitted,
        report_json,
    })
}

/// Stepwise lifecycle invariants: live tenants routable, replica floors
/// respected.
fn check_lifecycle_invariants(
    service: &ThriftyService,
    floors: &mut Vec<usize>,
    seed: u64,
    step: u32,
) -> Result<(), String> {
    for tenant in service.live_tenants() {
        let Some(gi) = service.group_of(tenant) else {
            return Err(format!(
                "seed {seed} step {step}: live tenant {tenant:?} has no serving group"
            ));
        };
        if service.group_is_retired(gi) {
            return Err(format!(
                "seed {seed} step {step}: tenant {tenant:?} routed to retired group {gi}"
            ));
        }
        let instances = service.group_instances(gi).map_or(0, <[_]>::len);
        if instances == 0 {
            return Err(format!(
                "seed {seed} step {step}: tenant {tenant:?} routed to empty group {gi}"
            ));
        }
    }
    // A group's replica count, once live, never drops while it serves
    // tenants; it only goes to zero when the group retires and drains.
    for gi in 0..service.group_count() {
        let n = service.group_instances(gi).map_or(0, <[_]>::len);
        if gi >= floors.len() {
            floors.push(n);
            continue;
        }
        let serving = service
            .group_members(gi)
            .is_some_and(|members| !members.is_empty());
        if serving && !service.group_is_retired(gi) && n < floors[gi] {
            return Err(format!(
                "seed {seed} step {step}: group {gi} dropped to {n} replicas below \
                 its floor {}",
                floors[gi]
            ));
        }
    }
    Ok(())
}

/// Quiescence invariants: query conservation across cutovers, bulk-load
/// and lifecycle counter reconciliation.
fn check_lifecycle_quiescence(
    seed: u64,
    submitted: u64,
    registered: u64,
    deregistered: u64,
    replication: u32,
    report: &ServiceReport,
) -> Result<(), String> {
    let t = &report.telemetry;
    let counted = t.counter("queries.submitted");
    let completed = t.counter("queries.completed");
    let cancelled = t.counter("queries.cancelled");
    if counted != submitted {
        return Err(format!(
            "seed {seed}: {counted} submissions counted for {submitted} driven queries"
        ));
    }
    if cancelled != 0 {
        return Err(format!(
            "seed {seed}: {cancelled} queries cancelled — cutover must not drop queries"
        ));
    }
    if completed != submitted {
        return Err(format!(
            "seed {seed}: {completed} completions for {submitted} submissions after drain"
        ));
    }
    if report.records.len() as u64 != completed {
        return Err(format!(
            "seed {seed}: {} SLA records for {completed} completions (lost or \
             double-completed queries)",
            report.records.len()
        ));
    }
    if t.counter("tenants.registered") != registered {
        return Err(format!(
            "seed {seed}: counter tenants.registered = {} but the driver registered \
             {registered}",
            t.counter("tenants.registered")
        ));
    }
    if t.counter("tenants.deregistered") != deregistered {
        return Err(format!(
            "seed {seed}: counter tenants.deregistered = {} but the driver \
             deregistered {deregistered}",
            t.counter("tenants.deregistered")
        ));
    }
    let started = t.counter("bulk_loads.started");
    let finished = t.counter("bulk_loads.finished");
    if finished > started {
        return Err(format!(
            "seed {seed}: {finished} bulk loads finished but only {started} started"
        ));
    }
    // Unfinished loads can only belong to cancelled registrations or
    // scrubbed cycle members; each deregistration can orphan at most one
    // park load or one pending cycle load per replica.
    if started - finished > deregistered * u64::from(replication) {
        return Err(format!(
            "seed {seed}: {} bulk loads never finished with only {deregistered} \
             deregistrations (replication {replication}) to explain them",
            started - finished
        ));
    }
    Ok(())
}

/// Deterministic digest of one feedback-controller fuzz schedule.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ControllerFuzzOutcome {
    /// The schedule seed.
    pub seed: u64,
    /// Actions executed.
    pub steps: u32,
    /// Due instants the controller evaluated.
    pub evaluations: u64,
    /// Cycles actually started.
    pub cycles: u64,
    /// Period/window adaptations applied.
    pub adaptations: u64,
    /// Queries submitted.
    pub submitted: u64,
    /// The final service report, serialized.
    pub report_json: String,
}

/// Runs one seeded randomized schedule against the feedback-controlled
/// [`Reconsolidator`] (random cadence/window bounds, build cap, and
/// hysteresis) and checks the controller invariants after every probe:
///
/// * **cadence bounds** — the adapted period and window never leave their
///   configured `[min, max]` ranges;
/// * **due-grid discipline** — the next due instant is always in the
///   future, never steps backwards, and every advance is a whole multiple
///   of the period in force at the evaluation (a late probe catches up
///   along the grid instead of re-anchoring or bunching);
/// * **decision accounting** — evaluations = cycles planned + skips across
///   all causes, and the per-cause skip / deferral / adaptation counters
///   reconcile exactly with the service's telemetry;
/// * **routability** — the lifecycle invariants of [`fuzz_lifecycle`] keep
///   holding while the controller moves tenants around.
pub fn fuzz_controller(seed: u64) -> Result<ControllerFuzzOutcome, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBB67_AE85_84CA_A73B);
    let template = QueryTemplate::new(TemplateId(3), 150.0, 0.0);
    let a = rng.gen_range(1u32..3);
    let members = |base: u32| -> Vec<Tenant> {
        (base..base + 2)
            .map(|i| Tenant::new(TenantId(i), 2, 100.0 + f64::from(i) * 25.0))
            .collect()
    };
    let plan = DeploymentPlan {
        groups: vec![
            TenantGroupPlan::new(members(0), a, 2),
            TenantGroupPlan::new(members(2), a, 2),
        ],
    };
    let mut service = ThriftyService::deploy(
        &plan,
        rng.gen_range(16usize..30),
        [template],
        ServiceConfig::builder()
            .elastic_scaling(false)
            .monitor_window_ms(4 * 3_600_000)
            .telemetry(TelemetryConfig::default().with_event_capacity(20_000))
            .build()
            .map_err(|e| format!("seed {seed}: config: {e}"))?,
    )
    .map_err(|e| format!("seed {seed}: deploy failed: {e}"))?;

    let min_interval = rng.gen_range(5u64..30) * 60_000;
    let max_interval = min_interval * rng.gen_range(2u64..8);
    let min_window = rng.gen_range(30u64..120) * 60_000;
    let mut recon = Reconsolidator::with_controller(
        AdvisorConfig {
            replication: a,
            sla_p: 0.999,
            epoch: EpochConfig::new(10_000, 4 * 3_600_000),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        },
        ControllerConfig {
            initial_interval_ms: rng.gen_range(min_interval..=max_interval),
            min_interval_ms: min_interval,
            max_interval_ms: max_interval,
            initial_window_ms: min_window,
            min_window_ms: min_window,
            max_window_ms: min_window * rng.gen_range(2u64..6),
            error_high: 0.02,
            error_low: 0.005,
            max_builds_per_cycle: rng.gen_range(1usize..4),
            hysteresis_cycles: rng.gen_range(0u32..4),
            force_after: rng.gen_range(0u32..6),
        },
    );

    let mut next_tenant = 200u32;
    let mut registered = 0u64;
    let mut submitted = 0u64;
    let mut floors: Vec<usize> = Vec::new();
    let steps = 80u32;
    for step in 0..steps {
        let roll: u32 = rng.gen_range(0u32..100);
        if roll < 40 {
            // Let time pass, crossing due instants — sometimes by several
            // periods at once so the grid catch-up path stays under fuzz.
            let dt = rng.gen_range(5u64..40) * 60_000 * u64::from(1 + (roll % 3));
            let target = SimTime::from_ms(service.log_now().as_ms() + dt);
            service
                .run_until_quiescent_at(target)
                .map_err(|e| format!("seed {seed} step {step}: quiesce: {e}"))?;
        } else if roll < 70 {
            // Submit a query for a random live tenant.
            let live = service.live_tenants();
            if let Some(&tenant) = pick(&mut rng, &live) {
                let data_gb = rng.gen_range(50.0..300.0);
                let baseline = SimDuration::from_ms_f64(mppdb_sim::cost::isolated_latency_ms(
                    &template, data_gb, 2,
                ));
                service
                    .submit(IncomingQuery {
                        tenant,
                        submit: service.log_now(),
                        template: template.id,
                        baseline,
                    })
                    .map_err(|e| format!("seed {seed} step {step}: submit: {e}"))?;
                submitted += 1;
            }
        } else if roll < 80 {
            // Register a fresh tenant: its placement is a mandatory
            // component the churn bounds must never defer.
            let t = Tenant::new(TenantId(next_tenant), 2, rng.gen_range(20.0..200.0));
            next_tenant += 1;
            service
                .register_tenant(t)
                .map_err(|e| format!("seed {seed} step {step}: register: {e}"))?;
            registered += 1;
        } else {
            // Probe the controller, then check the cadence invariants.
            let now_ms = service.log_now().as_ms();
            let due_before = recon.next_due_ms();
            let interval_before = recon.interval_ms();
            let evals_before = recon.evaluations();
            let started = recon
                .maybe_cycle(&mut service)
                .map_err(|e| format!("seed {seed} step {step}: maybe_cycle: {e}"))?;
            if started && !service.reconsolidation_active() {
                return Err(format!(
                    "seed {seed} step {step}: cycle reported started but nothing executes"
                ));
            }
            check_controller_invariants(
                &recon,
                seed,
                step,
                now_ms,
                due_before,
                interval_before,
                evals_before,
            )?;
        }
        check_lifecycle_invariants(&service, &mut floors, seed, step)?;
    }

    service
        .drain()
        .map_err(|e| format!("seed {seed}: final drain: {e}"))?;
    check_lifecycle_invariants(&service, &mut floors, seed, steps)?;
    let report = service.report();
    let t = &report.telemetry;
    let skips = recon.skip_counts();
    let counter_pairs: [(&str, u64); 6] = [
        ("controller.skipped_busy", skips.busy),
        ("controller.skipped_noop", skips.noop),
        ("controller.skipped_nodes", skips.insufficient_nodes),
        ("controller.skipped_deferred", skips.deferred),
        ("controller.moves_deferred", recon.moves_deferred()),
        ("controller.builds_capped", recon.builds_capped()),
    ];
    for (name, driver) in counter_pairs {
        if t.counter(name) != driver {
            return Err(format!(
                "seed {seed}: counter {name} = {} but the driver holds {driver}",
                t.counter(name)
            ));
        }
    }
    if t.counter("controller.adapt_shrink") + t.counter("controller.adapt_grow")
        != recon.adaptations()
    {
        return Err(format!(
            "seed {seed}: adaptation counters do not add up to {}",
            recon.adaptations()
        ));
    }
    if registered > 0 && t.counter("tenants.registered") != registered {
        return Err(format!(
            "seed {seed}: counter tenants.registered = {} but the driver registered \
             {registered}",
            t.counter("tenants.registered")
        ));
    }
    let report_json = serde_json::to_string(&report)
        .map_err(|e| format!("seed {seed}: report serialization failed: {e}"))?;
    Ok(ControllerFuzzOutcome {
        seed,
        steps,
        evaluations: recon.evaluations(),
        cycles: recon.cycles_planned(),
        adaptations: recon.adaptations(),
        submitted,
        report_json,
    })
}

/// Cadence and accounting invariants after one `maybe_cycle` probe.
fn check_controller_invariants(
    recon: &Reconsolidator,
    seed: u64,
    step: u32,
    now_ms: u64,
    due_before: u64,
    interval_before: u64,
    evals_before: u64,
) -> Result<(), String> {
    let c = recon.controller();
    if !(c.min_interval_ms..=c.max_interval_ms).contains(&recon.interval_ms()) {
        return Err(format!(
            "seed {seed} step {step}: period {} left [{}, {}]",
            recon.interval_ms(),
            c.min_interval_ms,
            c.max_interval_ms
        ));
    }
    if !(c.min_window_ms..=c.max_window_ms).contains(&recon.window_ms()) {
        return Err(format!(
            "seed {seed} step {step}: window {} left [{}, {}]",
            recon.window_ms(),
            c.min_window_ms,
            c.max_window_ms
        ));
    }
    let due_after = recon.next_due_ms();
    if due_after <= now_ms {
        return Err(format!(
            "seed {seed} step {step}: next due {due_after} ms not in the future of \
             {now_ms} ms"
        ));
    }
    if due_after < due_before {
        return Err(format!(
            "seed {seed} step {step}: next due stepped backwards ({due_after} ms \
             after {due_before} ms)"
        ));
    }
    let evaluated = recon.evaluations() > evals_before;
    if evaluated {
        let advance = due_after - due_before;
        if advance == 0 || !advance.is_multiple_of(interval_before) {
            return Err(format!(
                "seed {seed} step {step}: due advance {advance} ms is not a whole \
                 multiple of the period {interval_before} ms (re-anchor or bunching)"
            ));
        }
    } else if due_after != due_before {
        return Err(format!(
            "seed {seed} step {step}: idle probe moved the due instant \
             ({due_before} -> {due_after} ms)"
        ));
    }
    if recon.evaluations() != recon.cycles_planned() + recon.skip_counts().total() {
        return Err(format!(
            "seed {seed} step {step}: {} evaluations != {} planned + {} skipped",
            recon.evaluations(),
            recon.cycles_planned(),
            recon.skip_counts().total()
        ));
    }
    Ok(())
}

/// Runs `fuzz_cluster`, `fuzz_service`, `fuzz_lifecycle`, and
/// `fuzz_controller` for every seed in `start..start + count`, returning
/// the failure messages (empty = pass).
pub fn run_seed_range(start: u64, count: u64) -> Vec<String> {
    let seeds: Vec<u64> = (start..start + count).collect();
    let results = crate::parallel::par_map("fuzz:seeds", &seeds, |&seed| {
        let mut errors = Vec::new();
        if let Err(e) = fuzz_cluster(seed) {
            errors.push(format!("cluster fuzz: {e}"));
        }
        if let Err(e) = fuzz_service(seed) {
            errors.push(format!("service fuzz: {e}"));
        }
        if let Err(e) = fuzz_lifecycle(seed) {
            errors.push(format!("lifecycle fuzz: {e}"));
        }
        if let Err(e) = fuzz_controller(seed) {
            errors.push(format!("controller fuzz: {e}"));
        }
        errors
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_fuzz_is_deterministic_per_seed() {
        let a = fuzz_cluster(7).unwrap();
        let b = fuzz_cluster(7).unwrap();
        assert_eq!(a, b);
        assert!(a.submitted > 0, "the schedule must exercise submissions");
    }

    #[test]
    fn service_fuzz_is_deterministic_per_seed() {
        let a = fuzz_service(3).unwrap();
        let b = fuzz_service(3).unwrap();
        assert_eq!(a.report_json, b.report_json);
    }

    #[test]
    fn a_small_seed_range_holds_every_invariant() {
        let failures = run_seed_range(0, 8);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn lifecycle_fuzz_is_deterministic_per_seed() {
        let a = fuzz_lifecycle(11).unwrap();
        let b = fuzz_lifecycle(11).unwrap();
        assert_eq!(a, b);
        assert!(a.submitted > 0, "the schedule must exercise submissions");
    }

    #[test]
    fn controller_fuzz_is_deterministic_per_seed() {
        let a = fuzz_controller(5).unwrap();
        let b = fuzz_controller(5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn controller_fuzz_exercises_the_cadence() {
        // Across a handful of seeds the schedule must actually cross due
        // instants and submit load; a schedule that never evaluates would
        // not test the controller.
        let outcomes: Vec<ControllerFuzzOutcome> =
            (0..6).map(|s| fuzz_controller(s).unwrap()).collect();
        assert!(outcomes.iter().any(|o| o.evaluations > 0));
        assert!(outcomes.iter().any(|o| o.submitted > 0));
    }

    #[test]
    fn lifecycle_fuzz_exercises_churn_and_cycles() {
        // Across a handful of seeds the schedule must hit every op kind at
        // least once; a schedule that never cycles or never churns would
        // not test the re-consolidation engine.
        let outcomes: Vec<LifecycleFuzzOutcome> =
            (0..6).map(|s| fuzz_lifecycle(s).unwrap()).collect();
        assert!(outcomes.iter().any(|o| o.registered > 0));
        assert!(outcomes.iter().any(|o| o.deregistered > 0));
        assert!(outcomes.iter().any(|o| o.cycles > 0));
    }
}
