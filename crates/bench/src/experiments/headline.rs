//! The headline result (Abstract / Chapter 1): serve all tenants with a
//! 99.9% performance SLA guarantee and replication factor 3 using ~18.7% of
//! the requested nodes.

use crate::pipeline::{compare_algorithms, defaults, CorpusView, Harness};
use crate::report::{num, pct, ExperimentResult, Table};
use thrifty::prelude::*;
use thrifty::telemetry::TelemetrySnapshot;
use thrifty_workload::prelude::*;

/// Replays day one of the consolidated deployment through the full service
/// loop with telemetry on, returning a summary table and the snapshot that
/// lands in `BENCH_headline.json`.
fn replay_day_one(harness: &Harness, corpus: &CorpusView) -> (Table, TelemetrySnapshot) {
    let advisor = DeploymentAdvisor::new(AdvisorConfig {
        replication: defaults::REPLICATION,
        sla_p: defaults::SLA_P,
        epoch: EpochConfig::new(defaults::EPOCH_MS, corpus.horizon_ms),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    });
    let advice = advisor.advise(&corpus.histories);
    // Membership-only set (never iterated). // lint: allow(unordered)
    let planned: std::collections::HashSet<TenantId> = advice
        .plan
        .groups
        .iter()
        .flat_map(|g| g.members.iter().map(|m| m.id))
        .collect();
    let composer = Composer::new(&corpus.cfg, harness.library());
    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let config = ServiceConfig::builder()
        .elastic_scaling(false)
        // Keep a bounded sample of the event stream in the JSON artefact;
        // counters and histograms stay exact.
        .telemetry(TelemetryConfig::default().with_event_capacity(5_000))
        .build()
        .expect("valid service config");
    let mut service = ThriftyService::deploy(
        &advice.plan,
        advice.plan.nodes_used() as usize + 8,
        templates,
        config,
    )
    .expect("headline plan deploys");
    let mut day_one: Vec<IncomingQuery> = corpus
        .specs
        .iter()
        .filter(|s| planned.contains(&s.id))
        .flat_map(|s| composer.compose_log(s).events)
        .filter(|e| e.submit.as_ms() < 24 * 3_600_000)
        .map(|e| IncomingQuery {
            tenant: e.tenant,
            submit: e.submit,
            template: e.template,
            baseline: e.sla_latency,
        })
        .collect();
    day_one.sort_by_key(|q| (q.submit, q.tenant));
    let report = service.replay(day_one).expect("replayable day-one log");
    let snap = report.telemetry;

    let mut t = Table::new(
        "Day-one service replay (2-step deployment, telemetry on)",
        &["metric", "value"],
    );
    t.push_row(vec![
        "queries completed".into(),
        snap.counter("queries.completed").to_string(),
    ]);
    t.push_row(vec![
        "SLA compliance".into(),
        pct(report.summary.compliance()),
    ]);
    let routed: u64 = snap.counter("queries.submitted").max(1);
    t.push_row(vec![
        "overflow routes".into(),
        format!(
            "{} ({})",
            snap.counter("route.overflow"),
            pct(snap.counter("route.overflow") as f64 / routed as f64)
        ),
    ]);
    let mean_util = if snap.instances.is_empty() {
        0.0
    } else {
        // Order pinned: the telemetry snapshot lists instances in
        // provisioning order, independent of the thread count.
        // lint: allow(float-merge)
        snap.instances.iter().map(|i| i.utilization).sum::<f64>() / snap.instances.len() as f64
    };
    t.push_row(vec![
        "instances / mean utilization".into(),
        format!("{} / {}", snap.instances.len(), pct(mean_util)),
    ]);
    if let Some(h) = snap.histograms.get("query.latency_ms") {
        t.push_row(vec![
            "query latency p50 / p99 (ms)".into(),
            format!("{} / {}", h.p50, h.p99),
        ]);
    }
    (t, snap)
}

/// Runs the headline consolidation.
pub fn headline(harness: &Harness) -> ExperimentResult {
    let corpus = harness.default_histories();
    // The paper picked E = 10 s because that was the plateau for *its*
    // query durations (tens of seconds to minutes). Our calibrated corpus
    // has ~10x shorter queries, so the equivalent duration-matched epoch is
    // ~1 s; report that operating point too (see EXPERIMENTS.md).
    let (point, matched) = crate::parallel::par_join2(
        "headline",
        || {
            compare_algorithms(
                &corpus,
                "default",
                defaults::EPOCH_MS,
                defaults::REPLICATION,
                defaults::SLA_P,
            )
        },
        || {
            compare_algorithms(
                &corpus,
                "matched-epoch",
                1_000,
                defaults::REPLICATION,
                defaults::SLA_P,
            )
        },
    );
    let mut t = Table::new(
        "Headline — default consolidation (R=3, P=99.9%, E=10s)",
        &["metric", "FFD", "2-step", "paper (2-step)"],
    );
    t.push_row(vec![
        "tenants".into(),
        corpus.cfg.tenants.to_string(),
        corpus.cfg.tenants.to_string(),
        "5000".into(),
    ]);
    t.push_row(vec![
        "nodes requested".into(),
        point.ffd.nodes_requested.to_string(),
        point.two_step.nodes_requested.to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "nodes used".into(),
        point.ffd.nodes_used.to_string(),
        point.two_step.nodes_used.to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "fraction of requested nodes used".into(),
        pct(point.ffd.nodes_used as f64 / point.ffd.nodes_requested as f64),
        pct(point.two_step.nodes_used as f64 / point.two_step.nodes_requested as f64),
        "18.7%".into(),
    ]);
    t.push_row(vec![
        "nodes saved".into(),
        pct(point.ffd.effectiveness),
        pct(point.two_step.effectiveness),
        "81.3%".into(),
    ]);
    t.push_row(vec![
        "tenant-groups".into(),
        point.ffd.groups.to_string(),
        point.two_step.groups.to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "avg group size".into(),
        num(point.ffd.average_group_size, 1),
        num(point.two_step.average_group_size, 1),
        "~15".into(),
    ]);
    t.push_row(vec![
        "nodes saved @ duration-matched epoch (E=1s)".into(),
        pct(matched.ffd.effectiveness),
        pct(matched.two_step.effectiveness),
        "81.3% @ E=10s".into(),
    ]);
    t.push_row(vec![
        "avg group size @ E=1s".into(),
        num(matched.ffd.average_group_size, 1),
        num(matched.two_step.average_group_size, 1),
        "~15".into(),
    ]);
    let (replay_table, telemetry) = replay_day_one(harness, &corpus);
    ExperimentResult {
        id: "headline".into(),
        context: format!(
            "active ratio {:.1}% (paper: 11.9%)",
            corpus.average_active_ratio() * 100.0
        ),
        tables: vec![t, replay_table],
        timings: Vec::new(),
        telemetry: Some(telemetry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_workload::prelude::GenerationConfig;

    #[test]
    fn headline_lands_in_the_paper_band() {
        let mut cfg = GenerationConfig::small(31, 200);
        cfg.session_trials = 8;
        let h = Harness::from_config(cfg);
        let corpus = h.default_histories();
        let point = compare_algorithms(
            &corpus,
            "default",
            defaults::EPOCH_MS,
            defaults::REPLICATION,
            defaults::SLA_P,
        );
        // The paper's usual-settings band is 73.1–86.5% saved; effectiveness
        // grows with tenant count (more grouping choices), so this tiny
        // 200-tenant unit-test corpus sits below it. The integration tests
        // and the harness check the regime at the real scales.
        assert!(
            (0.40..=0.95).contains(&point.two_step.effectiveness),
            "2-step saved {:.1}%",
            point.two_step.effectiveness * 100.0
        );
        assert!(point.two_step.nodes_used <= point.ffd.nodes_used);
    }
}
