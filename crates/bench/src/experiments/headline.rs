//! The headline result (Abstract / Chapter 1): serve all tenants with a
//! 99.9% performance SLA guarantee and replication factor 3 using ~18.7% of
//! the requested nodes.

use crate::pipeline::{compare_algorithms, defaults, Harness};
use crate::report::{num, pct, ExperimentResult, Table};

/// Runs the headline consolidation.
pub fn headline(harness: &Harness) -> ExperimentResult {
    let corpus = harness.default_histories();
    // The paper picked E = 10 s because that was the plateau for *its*
    // query durations (tens of seconds to minutes). Our calibrated corpus
    // has ~10x shorter queries, so the equivalent duration-matched epoch is
    // ~1 s; report that operating point too (see EXPERIMENTS.md).
    let (point, matched) = crate::parallel::par_join2(
        "headline",
        || {
            compare_algorithms(
                &corpus,
                "default",
                defaults::EPOCH_MS,
                defaults::REPLICATION,
                defaults::SLA_P,
            )
        },
        || {
            compare_algorithms(
                &corpus,
                "matched-epoch",
                1_000,
                defaults::REPLICATION,
                defaults::SLA_P,
            )
        },
    );
    let mut t = Table::new(
        "Headline — default consolidation (R=3, P=99.9%, E=10s)",
        &["metric", "FFD", "2-step", "paper (2-step)"],
    );
    t.push_row(vec![
        "tenants".into(),
        corpus.cfg.tenants.to_string(),
        corpus.cfg.tenants.to_string(),
        "5000".into(),
    ]);
    t.push_row(vec![
        "nodes requested".into(),
        point.ffd.nodes_requested.to_string(),
        point.two_step.nodes_requested.to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "nodes used".into(),
        point.ffd.nodes_used.to_string(),
        point.two_step.nodes_used.to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "fraction of requested nodes used".into(),
        pct(point.ffd.nodes_used as f64 / point.ffd.nodes_requested as f64),
        pct(point.two_step.nodes_used as f64 / point.two_step.nodes_requested as f64),
        "18.7%".into(),
    ]);
    t.push_row(vec![
        "nodes saved".into(),
        pct(point.ffd.effectiveness),
        pct(point.two_step.effectiveness),
        "81.3%".into(),
    ]);
    t.push_row(vec![
        "tenant-groups".into(),
        point.ffd.groups.to_string(),
        point.two_step.groups.to_string(),
        "-".into(),
    ]);
    t.push_row(vec![
        "avg group size".into(),
        num(point.ffd.average_group_size, 1),
        num(point.two_step.average_group_size, 1),
        "~15".into(),
    ]);
    t.push_row(vec![
        "nodes saved @ duration-matched epoch (E=1s)".into(),
        pct(matched.ffd.effectiveness),
        pct(matched.two_step.effectiveness),
        "81.3% @ E=10s".into(),
    ]);
    t.push_row(vec![
        "avg group size @ E=1s".into(),
        num(matched.ffd.average_group_size, 1),
        num(matched.two_step.average_group_size, 1),
        "~15".into(),
    ]);
    ExperimentResult {
        id: "headline".into(),
        context: format!(
            "active ratio {:.1}% (paper: 11.9%)",
            corpus.average_active_ratio() * 100.0
        ),
        tables: vec![t],
        timings: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_workload::prelude::GenerationConfig;

    #[test]
    fn headline_lands_in_the_paper_band() {
        let mut cfg = GenerationConfig::small(31, 200);
        cfg.session_trials = 8;
        let h = Harness::from_config(cfg);
        let corpus = h.default_histories();
        let point = compare_algorithms(
            &corpus,
            "default",
            defaults::EPOCH_MS,
            defaults::REPLICATION,
            defaults::SLA_P,
        );
        // The paper's usual-settings band is 73.1–86.5% saved; effectiveness
        // grows with tenant count (more grouping choices), so this tiny
        // 200-tenant unit-test corpus sits below it. The integration tests
        // and the harness check the regime at the real scales.
        assert!(
            (0.40..=0.95).contains(&point.two_step.effectiveness),
            "2-step saved {:.1}%",
            point.two_step.effectiveness * 100.0
        );
        assert!(point.two_step.nodes_used <= point.ffd.nodes_used);
    }
}
