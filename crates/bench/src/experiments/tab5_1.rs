//! Table 5.1 — starting and bulk loading an MPPDB.
//!
//! Prints the calibrated provisioning model's predictions next to the
//! paper's measured values for the five published rows.

use crate::report::{num, ExperimentResult, Table};
use mppdb_sim::loading::ProvisioningModel;

/// The published rows: (nodes, data GB, startup s, bulk load s).
pub const PAPER_ROWS: [(usize, f64, f64, f64); 5] = [
    (2, 200.0, 462.0, 10_172.0),
    (4, 400.0, 850.0, 20_302.0),
    (6, 600.0, 1_248.0, 30_121.0),
    (8, 800.0, 1_504.0, 40_853.0),
    (10, 1_000.0, 1_779.0, 50_446.0),
];

/// Runs the Table 5.1 reproduction.
pub fn tab_5_1() -> ExperimentResult {
    let model = ProvisioningModel::paper_calibrated();
    let mut t = Table::new(
        "Table 5.1 — starting and bulk loading a MPPDB (model vs paper)",
        &[
            "tenant / data",
            "startup model (s)",
            "startup paper (s)",
            "load model (s)",
            "load paper (s)",
        ],
    );
    for (nodes, gb, startup_paper, load_paper) in PAPER_ROWS {
        t.push_row(vec![
            format!("{nodes}-node / {gb:.0} GB"),
            num(model.startup_time(nodes).as_secs_f64(), 0),
            num(startup_paper, 0),
            num(model.bulk_load_time(gb).as_secs_f64(), 0),
            num(load_paper, 0),
        ]);
    }
    ExperimentResult {
        id: "tab5.1".into(),
        context: "provisioning model calibrated to the paper's EC2 measurements (~1.2 GB/min \
                  bulk load; loading dominates start-up)"
            .into(),
        tables: vec![t],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_every_published_row() {
        let model = ProvisioningModel::paper_calibrated();
        for (nodes, gb, startup_paper, load_paper) in PAPER_ROWS {
            let su = model.startup_time(nodes).as_secs_f64();
            let ld = model.bulk_load_time(gb).as_secs_f64();
            assert!((su - startup_paper).abs() / startup_paper < 0.10);
            assert!((ld - load_paper).abs() / load_paper < 0.05);
        }
    }

    #[test]
    fn table_renders_five_rows() {
        let r = tab_5_1();
        assert_eq!(r.tables[0].rows.len(), 5);
    }
}
