//! Drift experiment — static day-one design vs periodic re-consolidation
//! under activity drift and tenant churn (Chapter 5.1).
//!
//! The drift-and-churn scenario (`thrifty_workload::drift`) deploys a
//! day-one design estimated from phase-1 activity, then shifts the
//! activity pattern mid-horizon while a third of the population departs
//! and a couple of new tenants arrive. The same log is replayed twice —
//! once on the frozen day-one deployment, once with a periodic
//! [`Reconsolidator`] — and the two arms are compared on the powered-node
//! footprint over time and on SLA attainment.

use crate::report::{num, pct, ExperimentResult, Table};
use mppdb_sim::query::QueryTemplate;
use mppdb_sim::time::SimTime;
use thrifty::prelude::*;
use thrifty_workload::prelude::*;

/// Sampling step for the powered-node trajectory.
const SAMPLE_MS: u64 = 30 * 60_000;
/// Re-consolidation cadence in the periodic arm.
const CYCLE_MS: u64 = 2 * 3_600_000;
/// RT-TTP / activity observation window — shorter than the horizon so a
/// post-shift cycle plans from post-shift behaviour.
const WINDOW_MS: u64 = 4 * 3_600_000;
/// Replication factor of both the day-one design and the cycle plans.
const REPLICATION: u32 = 2;

/// Outcome of one arm of the comparison.
pub struct DriftRun {
    /// The service report (SLA records + telemetry).
    pub report: ServiceReport,
    /// `(log ms, powered nodes)` samples over the horizon.
    pub nodes: Vec<(u64, usize)>,
    /// Re-consolidation cycles completed (0 in the static arm).
    pub cycles: u64,
}

impl DriftRun {
    /// Mean powered nodes over samples in `[from_ms, to_ms)`.
    pub fn mean_nodes(&self, from_ms: u64, to_ms: u64) -> f64 {
        let window: Vec<usize> = self
            .nodes
            .iter()
            .filter(|(t, _)| (from_ms..to_ms).contains(t))
            .map(|&(_, n)| n)
            .collect();
        if window.is_empty() {
            return 0.0;
        }
        window.iter().sum::<usize>() as f64 / window.len() as f64
    }

    /// Powered nodes at the last sample.
    pub fn final_nodes(&self) -> usize {
        self.nodes.last().map_or(0, |&(_, n)| n)
    }
}

/// The day-one deployment plan: the advisor run over the scenario's
/// *estimated* (phase-1-shaped) histories.
pub fn day_one_plan(scenario: &DriftScenario) -> DeploymentPlan {
    let histories: Vec<TenantHistory> = scenario
        .initial
        .iter()
        .map(|s| {
            let (_, iv) = scenario
                .design_histories
                .iter()
                .find(|(id, _)| *id == s.id)
                .expect("every initial tenant has a design history");
            TenantHistory::new(Tenant::new(s.id, s.nodes, s.data_gb), iv.clone())
        })
        .collect();
    let advisor = DeploymentAdvisor::new(advisor_config(scenario.config.horizon_ms));
    advisor.advise(&histories).plan
}

fn advisor_config(horizon_ms: u64) -> AdvisorConfig {
    AdvisorConfig {
        replication: REPLICATION,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, horizon_ms),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    }
}

/// Replays the scenario on one service arm. `periodic` enables the
/// re-consolidation driver; the static arm replays the identical log
/// (including churn) on the frozen day-one deployment.
pub fn run_arm(scenario: &DriftScenario, plan: &DeploymentPlan, periodic: bool) -> DriftRun {
    let cfg = &scenario.config;
    // Headroom: enough free nodes to double-run the largest plausible
    // rebuild next to the day-one deployment.
    let total_nodes = plan.nodes_used() as usize * 2;
    let template = QueryTemplate::new(DRIFT_TEMPLATE, cfg.query_coef, 0.0);
    let service_cfg = ServiceConfig::builder()
        .sla_p(0.999)
        .elastic_scaling(false)
        .monitor_window_ms(WINDOW_MS)
        .telemetry(TelemetryConfig::default().with_event_capacity(5_000))
        .build()
        .expect("valid service config");
    let mut service = ThriftyService::deploy(plan, total_nodes, [template], service_cfg)
        .expect("deployable day-one design");
    let mut recon = periodic.then(|| Reconsolidator::new(advisor_config(WINDOW_MS), CYCLE_MS));

    // Merge queries and churn into one chronological driver stream;
    // deregistrations precede registrations at equal instants so freed
    // capacity is visible to the newcomers.
    enum Ev {
        Churn(ChurnEvent),
        Query(DriftQuery),
    }
    let mut events: Vec<(u64, u8, Ev)> = Vec::new();
    for c in &scenario.churn {
        let rank = match c {
            ChurnEvent::Deregister { .. } => 0,
            ChurnEvent::Register { .. } => 1,
        };
        events.push((c.at().as_ms(), rank, Ev::Churn(*c)));
    }
    for q in &scenario.queries {
        events.push((q.submit.as_ms(), 2, Ev::Query(*q)));
    }
    events.sort_by_key(|&(t, rank, _)| (t, rank));

    let mut nodes = Vec::new();
    let mut next_sample = 0u64;
    let mut drive_to = |service: &mut ThriftyService,
                        recon: &mut Option<Reconsolidator>,
                        nodes: &mut Vec<(u64, usize)>,
                        target_ms: u64| {
        while next_sample <= target_ms {
            service
                .advance_log_time(SimTime::from_ms(next_sample))
                .expect("advance to sample");
            if let Some(r) = recon.as_mut() {
                r.maybe_cycle(service).expect("cycle check");
            }
            nodes.push((next_sample, service.cluster().powered_nodes()));
            next_sample += SAMPLE_MS;
        }
    };
    for (at_ms, _, ev) in events {
        drive_to(&mut service, &mut recon, &mut nodes, at_ms);
        match ev {
            Ev::Churn(ChurnEvent::Register { spec, .. }) => {
                service
                    .register_tenant(Tenant::new(spec.id, spec.nodes, spec.data_gb))
                    .expect("registration");
            }
            Ev::Churn(ChurnEvent::Deregister { tenant, .. }) => {
                service.deregister_tenant(tenant).expect("deregistration");
            }
            Ev::Query(q) => {
                service
                    .submit(IncomingQuery {
                        tenant: q.tenant,
                        submit: q.submit,
                        template: q.template,
                        baseline: q.baseline,
                    })
                    .expect("query submits");
            }
        }
    }
    drive_to(&mut service, &mut recon, &mut nodes, cfg.horizon_ms);
    service.drain().expect("final drain");
    // One last cycle check at the drained horizon, then settle whatever it
    // started so the final footprint reflects the re-consolidated state.
    if let Some(r) = recon.as_mut() {
        r.maybe_cycle(&mut service).expect("final cycle check");
        service.drain().expect("post-cycle drain");
    }
    nodes.push((cfg.horizon_ms, service.cluster().powered_nodes()));
    let cycles = service.reconsolidation_cycles();
    DriftRun {
        report: service.report(),
        nodes,
        cycles,
    }
}

/// Runs the drift experiment end to end.
pub fn drift() -> ExperimentResult {
    let scenario = DriftScenario::generate(&DriftConfig::small(42));
    let plan = day_one_plan(&scenario);
    let (static_run, periodic_run) = crate::parallel::par_join2(
        "drift:replay",
        || run_arm(&scenario, &plan, false),
        || run_arm(&scenario, &plan, true),
    );
    let cfg = &scenario.config;
    let shift = cfg.shift_at_ms;

    let mut trajectory = Table::new(
        "Powered-node footprint over the horizon (drift + churn at the shift)",
        &["hour", "static", "periodic recon"],
    );
    let sample = |run: &DriftRun, ms: u64| {
        run.nodes
            .iter()
            .rfind(|&&(t, _)| t <= ms)
            .map_or(0, |&(_, n)| n)
    };
    let mut h = 0u64;
    while h * 3_600_000 <= cfg.horizon_ms {
        let ms = h * 3_600_000;
        trajectory.push_row(vec![
            format!("{h}h{}", if ms == shift { " (shift)" } else { "" }),
            sample(&static_run, ms).to_string(),
            sample(&periodic_run, ms).to_string(),
        ]);
        h += 2;
    }

    let post = |run: &DriftRun| run.mean_nodes(shift + 2 * CYCLE_MS, cfg.horizon_ms + 1);
    let attainment = |run: &DriftRun| {
        let total = run.report.records.len();
        if total == 0 {
            return 1.0;
        }
        run.report.records.iter().filter(|r| r.met).count() as f64 / total as f64
    };
    let mut summary = Table::new(
        "Static day-one design vs periodic re-consolidation",
        &["metric", "static", "periodic recon"],
    );
    summary.push_row(vec![
        "mean powered nodes (settled post-shift)".into(),
        num(post(&static_run), 1),
        num(post(&periodic_run), 1),
    ]);
    summary.push_row(vec![
        "final powered nodes".into(),
        static_run.final_nodes().to_string(),
        periodic_run.final_nodes().to_string(),
    ]);
    summary.push_row(vec![
        "SLA attainment".into(),
        pct(attainment(&static_run)),
        pct(attainment(&periodic_run)),
    ]);
    summary.push_row(vec![
        "queries completed".into(),
        static_run.report.records.len().to_string(),
        periodic_run.report.records.len().to_string(),
    ]);
    summary.push_row(vec![
        "re-consolidation cycles".into(),
        static_run.cycles.to_string(),
        periodic_run.cycles.to_string(),
    ]);

    ExperimentResult {
        id: "drift".into(),
        context: format!(
            "{} tenants ({}-node, {:.0} GB), shift at {}h, {} depart / {} arrive; \
             day-one design {} nodes, cycle every {}h",
            cfg.tenants,
            cfg.node_size,
            cfg.gb_per_node * f64::from(cfg.node_size),
            shift / 3_600_000,
            cfg.departures,
            cfg.arrivals,
            plan.nodes_used(),
            CYCLE_MS / 3_600_000,
        ),
        tables: vec![trajectory, summary],
        timings: Vec::new(),
        telemetry: Some(periodic_run.report.telemetry.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs() -> (DriftScenario, DriftRun, DriftRun) {
        let scenario = DriftScenario::generate(&DriftConfig::small(42));
        let plan = day_one_plan(&scenario);
        let s = run_arm(&scenario, &plan, false);
        let p = run_arm(&scenario, &plan, true);
        (scenario, s, p)
    }

    #[test]
    fn reconsolidation_frees_nodes_under_drift() {
        let (scenario, static_run, periodic_run) = runs();
        assert!(periodic_run.cycles >= 1, "at least one cycle must execute");
        assert_eq!(static_run.cycles, 0);
        assert!(
            periodic_run.final_nodes() < static_run.final_nodes(),
            "periodic re-consolidation must end on fewer nodes: {} vs {}",
            periodic_run.final_nodes(),
            static_run.final_nodes()
        );
        let from = scenario.config.shift_at_ms + 2 * CYCLE_MS;
        let to = scenario.config.horizon_ms + 1;
        assert!(
            periodic_run.mean_nodes(from, to) < static_run.mean_nodes(from, to),
            "settled post-shift footprint must shrink"
        );
    }

    #[test]
    fn no_query_is_lost_or_double_completed_across_cutovers() {
        let (scenario, static_run, periodic_run) = runs();
        // Departed tenants stop submitting before the shift, so every
        // scenario query is accepted; each must complete exactly once.
        assert_eq!(static_run.report.records.len(), scenario.queries.len());
        assert_eq!(periodic_run.report.records.len(), scenario.queries.len());
        let cancelled = periodic_run
            .report
            .telemetry
            .counters
            .get("queries.cancelled")
            .copied()
            .unwrap_or(0);
        assert_eq!(cancelled, 0, "cutover must not cancel in-flight queries");
    }

    #[test]
    fn sla_attainment_does_not_collapse() {
        let (_, static_run, periodic_run) = runs();
        let attainment = |r: &DriftRun| {
            r.report.records.iter().filter(|x| x.met).count() as f64
                / r.report.records.len().max(1) as f64
        };
        // Re-consolidating must not trade the node savings for a broken
        // SLA: attainment stays within a point of the static arm.
        assert!(
            attainment(&periodic_run) >= attainment(&static_run) - 0.01,
            "recon {} vs static {}",
            attainment(&periodic_run),
            attainment(&static_run)
        );
    }
}
