//! Figure 1.1 — the motivating measurements on a multi-tenant MPPDB.
//!
//! * **(a)** TPC-H Q1 speedup vs nodes for 1 tenant, and for 2/4 tenants
//!   submitting sequentially (`xT-SEQ`) vs concurrently (`xT-CON`).
//! * **(b)** Q1 latency: 4 tenants each owning a 2-node MPPDB (point A)
//!   vs a shared 6-node MPPDB with 1–4 tenants concurrently active
//!   (points B, C, E, F).
//! * **(c)** TPC-H Q19 speedup: non-linear scale-out.

use crate::report::{num, ExperimentResult, Table};
use mppdb_sim::prelude::*;
use thrifty_workload::templates::{tpch_q1, tpch_q19};

/// Data per tenant in the Figure 1.1 setting: TPC-H scale factor 100.
const DATA_GB: f64 = 100.0;

/// Runs one shared instance with `tenants` tenants submitting one query
/// each, either concurrently or sequentially, and returns the mean latency
/// in ms.
fn shared_latency_ms(template: QueryTemplate, nodes: usize, tenants: u32, concurrent: bool) -> f64 {
    let mut cluster = Cluster::new(ClusterConfig::with_instant_provisioning(nodes));
    let datasets: Vec<(SimTenantId, f64)> =
        (0..tenants).map(|i| (SimTenantId(i), DATA_GB)).collect();
    let instance = cluster
        .provision_instance(nodes, &datasets)
        .expect("cluster sized for the instance");
    let mut latencies = Vec::new();
    for i in 0..tenants {
        cluster
            .submit(instance, QuerySpec::new(template, DATA_GB, SimTenantId(i)))
            .expect("ready instance");
        if !concurrent {
            for e in cluster.run_to_quiescence() {
                if let SimEvent::QueryCompleted(c) = e {
                    latencies.push(c.latency.as_ms() as f64);
                }
            }
        }
    }
    if concurrent {
        for e in cluster.run_to_quiescence() {
            if let SimEvent::QueryCompleted(c) = e {
                latencies.push(c.latency.as_ms() as f64);
            }
        }
    }
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

/// Speedup of the multi-tenant setting relative to single-tenant 1-node
/// execution (the y-axis of Figures 1.1a/1.1c).
fn speedup_vs_one_node(
    template: QueryTemplate,
    nodes: usize,
    tenants: u32,
    concurrent: bool,
) -> f64 {
    let base = isolated_latency_ms(&template, DATA_GB, 1);
    base / shared_latency_ms(template, nodes, tenants, concurrent)
}

/// Runs Figure 1.1a.
pub fn fig_1_1a() -> ExperimentResult {
    let q1 = tpch_q1();
    let mut t = Table::new(
        "Figure 1.1a — TPC-H Q1 speedup (vs 1 tenant on 1 node)",
        &["nodes", "1T", "2T-SEQ", "2T-CON", "4T-SEQ", "4T-CON"],
    );
    for nodes in [1usize, 2, 4, 8] {
        t.push_row(vec![
            nodes.to_string(),
            num(speedup_vs_one_node(q1, nodes, 1, false), 2),
            num(speedup_vs_one_node(q1, nodes, 2, false), 2),
            num(speedup_vs_one_node(q1, nodes, 2, true), 2),
            num(speedup_vs_one_node(q1, nodes, 4, false), 2),
            num(speedup_vs_one_node(q1, nodes, 4, true), 2),
        ]);
    }
    ExperimentResult {
        id: "fig1.1a".into(),
        context:
            "shared-process multi-tenancy: sequential sharing is free, concurrency costs x-fold"
                .into(),
        tables: vec![t],
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Runs Figure 1.1b.
pub fn fig_1_1b() -> ExperimentResult {
    let q1 = tpch_q1();
    let dedicated_2node = isolated_latency_ms(&q1, DATA_GB, 2) / 1000.0;
    let mut t = Table::new(
        "Figure 1.1b — Q1 latency: 2-node dedicated vs 6-node shared",
        &[
            "setting",
            "active tenants",
            "latency (s)",
            "meets 2-node SLA",
        ],
    );
    t.push_row(vec![
        "A: 2-node dedicated".into(),
        "1".into(),
        num(dedicated_2node, 1),
        "baseline".into(),
    ]);
    for (label, k) in [("B", 1u32), ("C", 2), ("E", 3), ("F", 4)] {
        let lat = shared_latency_ms(q1, 6, k, true) / 1000.0;
        t.push_row(vec![
            format!("{label}: 6-node shared"),
            k.to_string(),
            num(lat, 1),
            if lat <= dedicated_2node * 1.001 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    ExperimentResult {
        id: "fig1.1b".into(),
        context: "the second consolidation opportunity: a 6-node shared MPPDB absorbs up to 3 \
                  concurrently active 2-node tenants for a linear query"
            .into(),
        tables: vec![t],
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Runs Figure 1.1c.
pub fn fig_1_1c() -> ExperimentResult {
    let q19 = tpch_q19();
    let mut t = Table::new(
        "Figure 1.1c — TPC-H Q19 speedup (non-linear scale-out)",
        &["nodes", "1T", "2T-CON"],
    );
    for nodes in [1usize, 2, 4, 8] {
        t.push_row(vec![
            nodes.to_string(),
            num(speedup_vs_one_node(q19, nodes, 1, false), 2),
            num(speedup_vs_one_node(q19, nodes, 2, true), 2),
        ]);
    }
    ExperimentResult {
        id: "fig1.1c".into(),
        context: "Q19 saturates (Amdahl serial fraction), so over-parallelism cannot pay for \
                  concurrency — the second opportunity does not apply"
            .into(),
        tables: vec![t],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_scales_linearly_single_tenant() {
        let q1 = tpch_q1();
        for nodes in [1usize, 2, 4, 8] {
            let s = speedup_vs_one_node(q1, nodes, 1, false);
            // Millisecond rounding bounds the relative error.
            assert!(
                (s - nodes as f64).abs() / (nodes as f64) < 0.01,
                "{nodes} nodes: {s}"
            );
        }
    }

    #[test]
    fn sequential_tenants_match_single_tenant() {
        // The xT-SEQ observation: sequential sharing adds no slowdown.
        let q1 = tpch_q1();
        for tenants in [2u32, 4] {
            let seq = speedup_vs_one_node(q1, 4, tenants, false);
            let solo = speedup_vs_one_node(q1, 4, 1, false);
            assert!((seq - solo).abs() < 0.01);
        }
    }

    #[test]
    fn concurrent_tenants_divide_the_speedup() {
        // The xT-CON observation: x concurrent tenants run x-fold slower.
        let q1 = tpch_q1();
        let s2 = speedup_vs_one_node(q1, 4, 2, true);
        let s4 = speedup_vs_one_node(q1, 4, 4, true);
        assert!((s2 - 2.0).abs() < 0.05, "2T-CON on 4 nodes: {s2}");
        assert!((s4 - 1.0).abs() < 0.05, "4T-CON on 4 nodes: {s4}");
    }

    #[test]
    fn six_node_shared_absorbs_three_active_2node_tenants() {
        // Figure 1.1b points B and C: the shared 6-node MPPDB meets the
        // 2-node dedicated SLA with up to 3 concurrently active tenants for
        // the linear Q1 (6 nodes / 2 = 3x parallelism headroom).
        let q1 = tpch_q1();
        let sla = isolated_latency_ms(&q1, DATA_GB, 2);
        for k in 1..=3u32 {
            let lat = shared_latency_ms(q1, 6, k, true);
            assert!(lat <= sla * 1.001, "{k} active: {lat} vs {sla}");
        }
        let lat4 = shared_latency_ms(q1, 6, 4, true);
        assert!(lat4 > sla * 1.2, "4 active must violate: {lat4} vs {sla}");
    }

    #[test]
    fn q19_speedup_saturates() {
        let q19 = tpch_q19();
        let s8 = speedup_vs_one_node(q19, 8, 1, false);
        assert!(
            s8 < 8.0 * 0.5,
            "Q19 at 8 nodes must be far from linear: {s8}"
        );
    }

    #[test]
    fn experiments_render() {
        for r in [fig_1_1a(), fig_1_1b(), fig_1_1c()] {
            let s = r.to_string();
            assert!(s.contains(&r.id));
        }
    }
}
