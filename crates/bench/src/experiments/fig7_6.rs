//! Figure 7.6 — consolidation effectiveness under higher active-tenant
//! ratios (§7.4).
//!
//! The §7.4 modifications progressively concentrate tenant activity:
//! restrict the time zones to North America, drop the lunch break, and
//! finally put everyone in one zone. The more concentrated the activity,
//! the fewer tenants fit per group and the less is saved.

use crate::parallel::par_map;
use crate::pipeline::{compare_algorithms, defaults, ComparisonPoint, Harness};
use crate::report::{num, pct, ExperimentResult, Table};
use thrifty_workload::prelude::ActivityScenario;

/// The four §7.4 scenarios in the paper's order.
pub const SCENARIOS: [(ActivityScenario, &str); 4] = [
    (ActivityScenario::Default, "default (7 zones)"),
    (ActivityScenario::NorthAmericaOnly, "(1) North America only"),
    (ActivityScenario::NorthAmericaNoLunch, "(2) NA + no lunch"),
    (
        ActivityScenario::SingleZoneNoLunch,
        "(3) one zone + no lunch",
    ),
];

/// Runs Figure 7.6.
pub fn fig_7_6(harness: &Harness) -> ExperimentResult {
    let points: Vec<(ComparisonPoint, f64, f64)> =
        par_map("sweep:fig7.6", &SCENARIOS, |&(scenario, label)| {
            let corpus = harness.histories(|c| c.scenario = scenario);
            let stats = corpus.stats();
            let peak = stats.max_concurrent_active as f64 / corpus.histories.len().max(1) as f64;
            let point = compare_algorithms(
                &corpus,
                label,
                defaults::EPOCH_MS,
                defaults::REPLICATION,
                defaults::SLA_P,
            );
            (point, stats.average_active_ratio, peak)
        });
    // The §7.4 scenarios concentrate the *same* per-tenant activity into
    // fewer wall-clock windows, so the time-averaged ratio barely moves
    // while the peak concurrency (the quantity that kills grouping)
    // explodes — the paper's rising "active tenant ratio" corresponds to
    // the latter.
    let mut a = Table::new(
        "Figure 7.6a — consolidation effectiveness vs activity concentration",
        &[
            "scenario",
            "time-avg ratio",
            "peak concurrent",
            "FFD",
            "2-step",
        ],
    );
    let mut b = Table::new(
        "Figure 7.6b — average tenant-group size",
        &["scenario", "FFD", "2-step"],
    );
    for (p, ratio, peak) in &points {
        a.push_row(vec![
            p.label.clone(),
            pct(*ratio),
            pct(*peak),
            pct(p.ffd.effectiveness),
            pct(p.two_step.effectiveness),
        ]);
        b.push_row(vec![
            p.label.clone(),
            num(p.ffd.average_group_size, 1),
            num(p.two_step.average_group_size, 1),
        ]);
    }
    ExperimentResult {
        id: "fig7.6".into(),
        context: "activity concentration collapses the consolidation opportunity (paper: \
                  81.3% -> 34.8% saved as the active ratio rises to 34.4%)"
            .into(),
        tables: vec![a, b],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_workload::prelude::GenerationConfig;

    #[test]
    fn concentration_reduces_effectiveness_and_group_size() {
        let mut cfg = GenerationConfig::small(23, 150);
        cfg.session_trials = 6;
        let h = Harness::from_config(cfg);
        let r = fig_7_6(&h);
        let rows = &r.tables[0].rows;
        assert_eq!(rows.len(), 4);
        let eff =
            |row: &Vec<String>| -> f64 { row[4].trim_end_matches('%').parse::<f64>().unwrap() };
        // The Figure 7.6 shape: the single-zone no-lunch scenario saves
        // substantially fewer nodes than the default spread.
        assert!(
            eff(&rows[0]) > eff(&rows[3]) + 5.0,
            "default {} vs single-zone {}",
            rows[0][3],
            rows[3][3]
        );
        // Group sizes shrink too (Figure 7.6b).
        let size = |row: &Vec<String>| row[2].parse::<f64>().unwrap();
        let sizes = &r.tables[1].rows;
        assert!(size(&sizes[0]) > size(&sizes[3]));
    }
}
