//! Table 7.1 — the evaluation parameter grid, reproduced as the harness's
//! own configuration (defaults in **bold** in the paper; marked with `*`
//! here).

use crate::report::{ExperimentResult, Table};

/// Prints the parameter grid.
pub fn tab_7_1() -> ExperimentResult {
    let mut t = Table::new("Table 7.1 — evaluation parameters", &["parameter", "range"]);
    t.push_row(vec![
        "epoch size E".into(),
        "0.1s, 1s, 10s*, 30s, 90s, 600s, 1800s".into(),
    ]);
    t.push_row(vec![
        "number of tenants T".into(),
        "1000, 5000*, 10000 (small scale: 100, 400*, 1000)".into(),
    ]);
    t.push_row(vec![
        "tenant distribution θ".into(),
        "0.1, 0.2, 0.5, 0.8*, 0.99".into(),
    ]);
    t.push_row(vec!["replication factor R".into(), "1, 2, 3*, 4".into()]);
    t.push_row(vec![
        "performance SLA P".into(),
        "95%, 99%, 99.9%*, 99.99%".into(),
    ]);
    ExperimentResult {
        id: "tab7.1".into(),
        context: "the sweep grid driven by `experiments fig7.1 .. fig7.5` (* = default)".into(),
        tables: vec![t],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn grid_has_five_parameters() {
        assert_eq!(super::tab_7_1().tables[0].rows.len(), 5);
    }
}
