//! Figures 7.1–7.5 — consolidation effectiveness under different tenant
//! characteristics.
//!
//! Each figure sweeps one Table 7.1 knob (epoch size `E`, tenant count `T`,
//! size skew `θ`, replication factor `R`, SLA guarantee `P`) and reports,
//! per sweep point, the three sub-plots of the paper: (a) consolidation
//! effectiveness, (b) average tenant-group size, and (c) grouping runtime —
//! for both the FFD baseline and the 2-step heuristic.

use crate::parallel::par_map;
use crate::pipeline::{compare_algorithms, defaults, ComparisonPoint, Harness, Scale};
use crate::report::{dur, num, pct, ExperimentResult, Table};

/// Builds the three standard tables from a list of comparison points.
fn standard_tables(fig: &str, x_label: &str, points: &[ComparisonPoint]) -> Vec<Table> {
    let mut a = Table::new(
        format!("Figure {fig}a — consolidation effectiveness (% nodes saved)"),
        &[x_label, "FFD", "2-step", "2-step advantage (pp)"],
    );
    let mut b = Table::new(
        format!("Figure {fig}b — average tenant-group size"),
        &[x_label, "FFD", "2-step"],
    );
    let mut c = Table::new(
        format!("Figure {fig}c — grouping algorithm runtime"),
        &[x_label, "FFD", "2-step"],
    );
    for p in points {
        a.push_row(vec![
            p.label.clone(),
            pct(p.ffd.effectiveness),
            pct(p.two_step.effectiveness),
            num((p.two_step.effectiveness - p.ffd.effectiveness) * 100.0, 1),
        ]);
        b.push_row(vec![
            p.label.clone(),
            num(p.ffd.average_group_size, 1),
            num(p.two_step.average_group_size, 1),
        ]);
        c.push_row(vec![
            p.label.clone(),
            dur(p.ffd.runtime),
            dur(p.two_step.runtime),
        ]);
    }
    vec![a, b, c]
}

/// Figure 7.1 — varying the epoch size `E`.
pub fn fig_7_1(harness: &Harness) -> ExperimentResult {
    let corpus = harness.default_histories();
    let epochs_s: &[f64] = match harness.scale() {
        Scale::Small => &[0.1, 1.0, 10.0, 30.0, 90.0, 600.0, 1800.0],
        Scale::Full => &[0.1, 1.0, 10.0, 30.0, 90.0, 600.0, 1800.0],
    };
    let points: Vec<ComparisonPoint> = par_map("sweep:fig7.1", epochs_s, |&e| {
        let ms = (e * 1000.0) as u64;
        compare_algorithms(
            &corpus,
            format!("{e}s"),
            ms,
            defaults::REPLICATION,
            defaults::SLA_P,
        )
    });
    ExperimentResult {
        id: "fig7.1".into(),
        context: format!(
            "epoch size sweep at T={}, R={}, P={:.1}% (active ratio {:.1}%)",
            corpus.cfg.tenants,
            defaults::REPLICATION,
            defaults::SLA_P * 100.0,
            corpus.average_active_ratio() * 100.0
        ),
        tables: standard_tables("7.1", "epoch E", &points),
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Figure 7.2 — varying the number of tenants `T`.
pub fn fig_7_2(harness: &Harness) -> ExperimentResult {
    let points: Vec<ComparisonPoint> =
        par_map("sweep:fig7.2", &harness.scale().tenant_sweep(), |&t| {
            let corpus = harness.histories(|c| c.tenants = t);
            compare_algorithms(
                &corpus,
                t.to_string(),
                defaults::EPOCH_MS,
                defaults::REPLICATION,
                defaults::SLA_P,
            )
        });
    ExperimentResult {
        id: "fig7.2".into(),
        context: "tenant-count sweep at default epoch/R/P".into(),
        tables: standard_tables("7.2", "tenants T", &points),
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Figure 7.3 — varying the tenant size distribution `θ`.
pub fn fig_7_3(harness: &Harness) -> ExperimentResult {
    let points: Vec<ComparisonPoint> =
        par_map("sweep:fig7.3", &[0.1, 0.2, 0.5, 0.8, 0.99], |&theta| {
            let corpus = harness.histories(|c| c.theta = theta);
            compare_algorithms(
                &corpus,
                format!("{theta}"),
                defaults::EPOCH_MS,
                defaults::REPLICATION,
                defaults::SLA_P,
            )
        });
    ExperimentResult {
        id: "fig7.3".into(),
        context: "tenant-size skew sweep (Zipf θ; larger = more small tenants)".into(),
        tables: standard_tables("7.3", "θ", &points),
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Figure 7.4 — varying the replication factor `R`.
pub fn fig_7_4(harness: &Harness) -> ExperimentResult {
    let corpus = harness.default_histories();
    let points: Vec<ComparisonPoint> = par_map("sweep:fig7.4", &[1, 2, 3, 4], |&r| {
        compare_algorithms(
            &corpus,
            r.to_string(),
            defaults::EPOCH_MS,
            r,
            defaults::SLA_P,
        )
    });
    ExperimentResult {
        id: "fig7.4".into(),
        context: "replication-factor sweep: higher R admits more concurrently active tenants \
                  per group but multiplies the replica cost"
            .into(),
        tables: standard_tables("7.4", "R", &points),
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Figure 7.5 — varying the performance SLA guarantee `P`.
pub fn fig_7_5(harness: &Harness) -> ExperimentResult {
    let corpus = harness.default_histories();
    let points: Vec<ComparisonPoint> =
        par_map("sweep:fig7.5", &[0.95, 0.99, 0.999, 0.9999], |&p| {
            compare_algorithms(
                &corpus,
                format!("{}%", p * 100.0),
                defaults::EPOCH_MS,
                defaults::REPLICATION,
                p,
            )
        });
    ExperimentResult {
        id: "fig7.5".into(),
        context: "SLA-guarantee sweep: a looser P packs more tenants per group".into(),
        tables: standard_tables("7.5", "P", &points),
        timings: Vec::new(),
        telemetry: None,
    }
}

/// Assertable invariant used by the shape tests: the 2-step heuristic uses
/// no more nodes than the published FFD baseline. The paper reports this at
/// every sweep point; in this reproduction it reliably holds at the useful
/// epoch sizes (≤ 90 s) while the coarsest epochs (600/1800 s) occasionally
/// let FFD edge ahead by a few points — our replayed queries are shorter
/// than the paper's, so coarse epochs inflate apparent activity more (see
/// EXPERIMENTS.md).
pub fn two_step_dominates(points: &[ComparisonPoint]) -> bool {
    points
        .iter()
        .all(|p| p.two_step.nodes_used <= p.ffd.nodes_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_workload::prelude::GenerationConfig;

    /// A very small harness for unit tests (the integration tests and the
    /// binary run the real scales).
    fn test_harness() -> Harness {
        let mut cfg = GenerationConfig::small(17, 120);
        cfg.session_trials = 6;
        Harness::from_config(cfg)
    }

    #[test]
    fn epoch_sweep_shapes_hold() {
        let h = test_harness();
        let corpus = h.default_histories();
        let coarse = compare_algorithms(&corpus, "1800s", 1_800_000, 3, 0.999);
        let fine = compare_algorithms(&corpus, "10s", 10_000, 3, 0.999);
        // Figure 7.1a: smaller epochs improve (or match) the effectiveness.
        assert!(
            fine.two_step.effectiveness >= coarse.two_step.effectiveness,
            "fine {:.3} vs coarse {:.3}",
            fine.two_step.effectiveness,
            coarse.two_step.effectiveness
        );
        // The 2-step heuristic must beat the published FFD baseline at the
        // default epoch size (the paper's 3.6–11.1 pp claim).
        assert!(two_step_dominates(&[fine]));
    }

    #[test]
    fn replication_sweep_grows_group_sizes() {
        let h = test_harness();
        let corpus = h.default_histories();
        let r1 = compare_algorithms(&corpus, "1", 10_000, 1, 0.999);
        let r4 = compare_algorithms(&corpus, "4", 10_000, 4, 0.999);
        // Figure 7.4b: higher R packs more tenants per group.
        assert!(
            r4.two_step.average_group_size > r1.two_step.average_group_size,
            "R=4 {:.2} vs R=1 {:.2}",
            r4.two_step.average_group_size,
            r1.two_step.average_group_size
        );
    }

    #[test]
    fn sla_sweep_orders_effectiveness() {
        let h = test_harness();
        let corpus = h.default_histories();
        let loose = compare_algorithms(&corpus, "95%", 10_000, 3, 0.95);
        let strict = compare_algorithms(&corpus, "99.99%", 10_000, 3, 0.9999);
        // Figure 7.5a: a looser guarantee saves at least as many nodes.
        assert!(loose.two_step.effectiveness >= strict.two_step.effectiveness);
    }

    #[test]
    fn tables_have_one_row_per_point() {
        let h = test_harness();
        let r = fig_7_4(&h);
        assert_eq!(r.tables.len(), 3);
        for t in &r.tables {
            assert_eq!(t.rows.len(), 4);
        }
    }
}
