//! Figure 5.3 — the 2-step tenant-grouping walk-through.
//!
//! Replays the published 6-tenant example (R = 3, P = 99.9%) and prints the
//! insertion order, per-group TTP, and the rejection of `T1` that opens the
//! second group.

use crate::report::{pct, ExperimentResult, Table};
use thrifty::prelude::*;

/// The reconstructed Figure 5.1 activity vectors (see
/// `thrifty::grouping::livbpwfc` for the derivation from the published
/// walk-through).
pub fn figure_5_1_instance(r: u32, p: f64) -> GroupingProblem {
    let d = 10;
    let epochs: [&[u32]; 6] = [
        &[0, 1, 2, 3, 4, 5], // T1
        &[6, 7, 8, 9],       // T2
        &[1, 2, 3],          // T3
        &[4, 5, 6, 8, 9],    // T4
        &[0, 1, 4, 5],       // T5
        &[2, 3, 4, 6, 7, 8], // T6
    ];
    epochs
        .iter()
        .enumerate()
        .fold(GroupingProblem::builder(), |b, (i, e)| {
            b.tenant(
                Tenant::new(TenantId(i as u32), 4, 400.0),
                ActivityVector::from_epochs(e.to_vec(), d),
            )
        })
        .replication(r)
        .sla_p(p)
        .build()
        .expect("the published walk-through instance is consistent")
}

/// Runs the walk-through.
pub fn fig_5_3() -> ExperimentResult {
    let problem = figure_5_1_instance(3, 0.999);
    let solution = two_step_grouping(&problem);
    let mut t = Table::new(
        "Figure 5.3 — 2-step grouping on the Figure 5.1 tenants (R=3, P=99.9%)",
        &["group", "members (insertion order)", "TTP", "nodes (R*n1)"],
    );
    for (gi, g) in solution.groups.iter().enumerate() {
        let members: Vec<String> = g
            .members
            .iter()
            .map(|&i| format!("T{}", i + 1)) // paper's 1-based names
            .collect();
        t.push_row(vec![
            format!("TG{}", gi + 1),
            members.join(", "),
            pct(problem.group_ttp(&g.members)),
            problem.group_nodes(&g.members).to_string(),
        ]);
    }
    let mut reject = Table::new(
        "The rejected insertion (Figure 5.3e)",
        &["candidate", "group", "TTP if added", "verdict"],
    );
    let mut with_t1 = solution.groups[0].members.clone();
    with_t1.push(0);
    reject.push_row(vec![
        "T1".into(),
        "TG1".into(),
        pct(problem.group_ttp(&with_t1)),
        "rejected (< 99.9%) -> opens TG2".into(),
    ]);
    ExperimentResult {
        id: "fig5.3".into(),
        context: "the worked example of Chapter 5: TG1 = {T3,T2,T5,T4,T6}, T1 alone".into(),
        tables: vec![t, reject],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_matches_the_paper() {
        let r = fig_5_3();
        let rows = &r.tables[0].rows;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], "T3, T2, T5, T4, T6");
        assert_eq!(rows[1][1], "T1");
        assert_eq!(rows[0][2], "100.0%");
        // T1 added to TG1 would yield 90% TTP, as the paper computes.
        assert_eq!(r.tables[1].rows[0][2], "90.0%");
    }
}
