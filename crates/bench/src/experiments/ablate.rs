//! Design-choice ablations (DESIGN.md §6).
//!
//! * **Tie-breaking depth** — the paper's full lexicographic rule vs
//!   comparing only the top concurrency level.
//! * **Step-1 homogeneous size grouping** — on vs off: without it, the
//!   greedy step mixes node sizes and the largest-item objective charges
//!   every mixed group for its biggest member.

use crate::pipeline::{defaults, Harness};
use crate::report::{dur, num, pct, ExperimentResult, Table};
use std::time::Instant;
use thrifty::grouping::ffd_grouping_with;
use thrifty::prelude::*;

/// Runs the grouping ablations on the default corpus.
pub fn ablate(harness: &Harness) -> ExperimentResult {
    let corpus = harness.default_histories();
    let variants: [(&str, TwoStepConfig); 3] = [
        (
            "2-step (paper: full lexicographic)",
            TwoStepConfig::default(),
        ),
        (
            "tie-break: top level only",
            TwoStepConfig {
                tie_breaking: TieBreaking::TopLevelOnly,
                ..TwoStepConfig::default()
            },
        ),
        (
            "no homogeneous size buckets",
            TwoStepConfig {
                skip_size_grouping: true,
                ..TwoStepConfig::default()
            },
        ),
    ];
    let mut t = Table::new(
        "Ablations — 2-step design choices (R=3, P=99.9%, E=10s)",
        &["variant", "saved", "avg group size", "runtime"],
    );
    for row in crate::parallel::par_map("ablate:two-step", &variants, |&(label, config)| {
        let advisor = DeploymentAdvisor::new(AdvisorConfig {
            replication: defaults::REPLICATION,
            sla_p: defaults::SLA_P,
            epoch: EpochConfig::new(defaults::EPOCH_MS, corpus.horizon_ms),
            algorithm: GroupingAlgorithm::TwoStepWith(config),
            exclusion: ExclusionPolicy::default(),
        });
        let started = std::time::Instant::now();
        let mut advice = advisor.advise(&corpus.histories);
        advice.report.runtime = started.elapsed();
        vec![
            label.into(),
            pct(advice.report.effectiveness),
            num(advice.report.average_group_size, 1),
            dur(advice.report.runtime),
        ]
    }) {
        t.push_row(row);
    }
    // FFD baseline variants: the published baseline (product order, hard
    // capacity) against fuzzy-capacity and size-ordered upgrades.
    let epoch = EpochConfig::new(defaults::EPOCH_MS, corpus.horizon_ms);
    let problem = corpus
        .histories
        .iter()
        .fold(GroupingProblem::builder(), |b, h| {
            b.tenant(
                h.tenant,
                ActivityVector::from_intervals(&h.intervals, epoch),
            )
        })
        .replication(defaults::REPLICATION)
        .sla_p(defaults::SLA_P)
        .build()
        .expect("generated corpus is a consistent grouping instance");
    let ffd_variants: [(&str, FfdConfig); 3] = [
        (
            "FFD as published (product order, hard capacity)",
            FfdConfig::default(),
        ),
        (
            "FFD + fuzzy capacity",
            FfdConfig {
                capacity: FfdCapacity::Fuzzy,
                ..FfdConfig::default()
            },
        ),
        (
            "FFD + fuzzy capacity + size-first order",
            FfdConfig {
                capacity: FfdCapacity::Fuzzy,
                order: FfdOrder::SizeFirst,
            },
        ),
    ];
    let mut f = Table::new(
        "FFD baseline variants (same corpus and defaults)",
        &["variant", "saved", "avg group size", "runtime"],
    );
    for row in crate::parallel::par_map("ablate:ffd", &ffd_variants, |&(label, config)| {
        let started = Instant::now();
        let solution = ffd_grouping_with(&problem, config);
        let runtime = started.elapsed();
        vec![
            label.into(),
            pct(solution.effectiveness(&problem)),
            num(solution.average_group_size(), 1),
            dur(runtime),
        ]
    }) {
        f.push_row(row);
    }
    ExperimentResult {
        id: "ablate".into(),
        context: "why the paper's design choices matter".into(),
        tables: vec![t, f],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compare_algorithms;
    use thrifty_workload::prelude::GenerationConfig;

    #[test]
    fn size_bucketing_matters() {
        // Without Step 1, every group is charged for its largest member, so
        // mixing a 32-node tenant with 2-node tenants wastes nodes: the
        // bucketed variant must never be worse on a skew-sized corpus.
        let mut cfg = GenerationConfig::small(29, 150);
        cfg.session_trials = 6;
        let h = Harness::from_config(cfg);
        let corpus = h.default_histories();
        let problem_inputs = &corpus.histories;
        let mk = |skip| {
            DeploymentAdvisor::new(AdvisorConfig {
                replication: 3,
                sla_p: 0.999,
                epoch: EpochConfig::new(10_000, corpus.horizon_ms),
                algorithm: GroupingAlgorithm::TwoStepWith(TwoStepConfig {
                    skip_size_grouping: skip,
                    ..TwoStepConfig::default()
                }),
                exclusion: ExclusionPolicy::default(),
            })
            .advise(problem_inputs)
            .report
        };
        let bucketed = mk(false);
        let mixed = mk(true);
        assert!(
            bucketed.nodes_used <= mixed.nodes_used,
            "bucketed {} vs mixed {}",
            bucketed.nodes_used,
            mixed.nodes_used
        );
        // And both variants still beat or match FFD is checked elsewhere;
        // here assert a material gap for the mixed variant.
        let baseline = compare_algorithms(&corpus, "x", 10_000, 3, 0.999);
        assert_eq!(baseline.two_step.nodes_used, bucketed.nodes_used);
    }

    #[test]
    fn ablation_table_has_three_variants() {
        let mut cfg = GenerationConfig::small(29, 60);
        cfg.session_trials = 4;
        let h = Harness::from_config(cfg);
        let r = ablate(&h);
        assert_eq!(r.tables[0].rows.len(), 3);
    }
}
