//! Figure 7.7 — lightweight elastic scaling in a tenant group.
//!
//! Reproduces the §7.5 experiment: take one tenant-group produced by the
//! default grouping, replay its members' real logs through the full service
//! loop, and — exactly as the authors did — "manually take over a tenant"
//! partway through, submitting queries continuously on its behalf. Run the
//! scenario twice, with elastic scaling disabled (Figures 7.7a/b) and
//! enabled (Figures 7.7c/d), and compare the RT-TTP traces and the
//! normalized query performance.

use crate::pipeline::{defaults, Harness};
use crate::report::{num, pct, sparkline, ExperimentResult, Table};
use mppdb_sim::cost::isolated_latency_ms;
use thrifty::prelude::*;
use thrifty_workload::prelude::*;

/// Outcome of one Figure 7.7 run (per scaling setting).
pub struct Fig77Run {
    /// Per-query records.
    pub report: ServiceReport,
    /// The RT-TTP trace of the observed group.
    pub trace: Vec<TtpSample>,
}

/// The assembled scenario: the chosen group, the replay stream, and the
/// injected tenant.
pub struct Fig77Scenario {
    /// The single-group deployment plan.
    pub plan: DeploymentPlan,
    /// Per-member historical activity ratios (fraction of horizon active).
    pub historical_ratios: Vec<(TenantId, f64)>,
    /// The organic replay stream (the members' composed logs), sorted.
    pub queries: Vec<IncomingQuery>,
    /// Which tenant the experiment "takes over".
    pub injected: TenantId,
    /// The takeover query: template and dedicated baseline.
    pub inject_template: mppdb_sim::query::QueryTemplate,
    /// Dedicated latency of the takeover query in ms.
    pub inject_baseline_ms: f64,
    /// Takeover window on the log timeline.
    pub inject_window: (u64, u64),
    /// Latency profiles for every template that appears.
    pub templates: Vec<mppdb_sim::query::QueryTemplate>,
    /// Horizon of the replay in ms.
    pub horizon_ms: u64,
}

/// Builds the scenario from the harness corpus.
pub fn build_scenario(harness: &Harness) -> Fig77Scenario {
    let corpus = harness.default_histories();
    // Group the corpus with the default advisor and pick the most populous
    // tenant-group among the smaller node sizes (the paper's excerpt used a
    // 14-tenant 4-node group).
    let advisor = DeploymentAdvisor::new(AdvisorConfig {
        replication: defaults::REPLICATION,
        sla_p: defaults::SLA_P,
        epoch: EpochConfig::new(defaults::EPOCH_MS, corpus.horizon_ms),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    });
    let advice = advisor.advise(&corpus.histories);
    // Pick the group that sits closest to its concurrency budget: the one
    // with the most epochs at exactly R concurrently active members. Those
    // epochs are legal before the takeover and become violations the moment
    // a continuously active extra tenant joins — the same mechanism as the
    // paper's excerpt ("three other tenants became concurrently active").
    let epoch = EpochConfig::new(defaults::EPOCH_MS, corpus.horizon_ms);
    let activity_of = |id: TenantId| -> ActivityVector {
        let h = corpus
            .histories
            .iter()
            .find(|h| h.tenant.id == id)
            .expect("member has a history");
        ActivityVector::from_intervals(&h.intervals, epoch)
    };
    let group_plan = advice
        .plan
        .groups
        .iter()
        .filter(|g| g.members.len() >= 8 && g.largest_request() <= 4)
        .max_by_key(|g| {
            let mut hist = ActiveCountHistogram::new(epoch.epoch_count());
            for m in &g.members {
                hist.add(&activity_of(m.id));
            }
            let r = defaults::REPLICATION;
            hist.epochs_above(r - 1) - hist.epochs_above(r)
        })
        .or_else(|| advice.plan.groups.iter().max_by_key(|g| g.members.len()))
        .expect("the corpus forms at least one group")
        .clone();

    // Replay stream: the members' composed logs...
    let composer = Composer::new(&corpus.cfg, harness.library());
    let member_ids: Vec<TenantId> = group_plan.members.iter().map(|m| m.id).collect();
    let mut queries: Vec<IncomingQuery> = Vec::new();
    for spec in corpus.specs.iter().filter(|s| member_ids.contains(&s.id)) {
        for e in composer.compose_log(spec).events {
            queries.push(IncomingQuery {
                tenant: e.tenant,
                submit: e.submit,
                template: e.template,
                baseline: e.sla_latency,
            });
        }
    }

    // The manual takeover targets the group's first member between hours 26
    // and 50 of the horizon (time Y of the paper's excerpt). It is driven
    // *closed-loop* at replay time: the next query is submitted as soon as
    // the previous one completes — exactly like the paper's operator, who
    // "continuously submitted queries to the system on behalf of that
    // tenant" and, like any client, could only submit after getting results.
    let injected = group_plan.members[0].id;
    let spec = corpus
        .specs
        .iter()
        .find(|s| s.id == injected)
        .expect("member exists");
    let inject_template = catalog(spec.benchmark)[0].template; // the Q1-style scan
    let inject_baseline_ms =
        isolated_latency_ms(&inject_template, spec.data_gb, spec.nodes as usize);
    // Three working days of takeover: under the calibrated (sparse) corpus
    // a single day accumulates too few >R epochs to cross the 0.1% budget
    // of the 24 h window.
    let inject_window = (26 * 3_600_000, (96 * 3_600_000).min(corpus.horizon_ms));
    queries.sort_by_key(|q| (q.submit, q.tenant));

    let templates: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|&b| catalog(b).into_iter().map(|t| t.template))
        .collect();
    let historical_ratios: Vec<(TenantId, f64)> = corpus
        .histories
        .iter()
        .filter(|h| member_ids.contains(&h.tenant.id))
        .map(|h| {
            let busy: u64 = h.intervals.iter().map(|&(s, e)| e - s).sum();
            (h.tenant.id, busy as f64 / corpus.horizon_ms as f64)
        })
        .collect();
    Fig77Scenario {
        plan: DeploymentPlan {
            groups: vec![group_plan],
        },
        historical_ratios,
        queries,
        injected,
        inject_template,
        inject_baseline_ms,
        inject_window,
        templates,
        horizon_ms: corpus.horizon_ms,
    }
}

/// Replays the scenario with elastic scaling on or off.
pub fn run_scenario(scenario: &Fig77Scenario, elastic_scaling: bool) -> Fig77Run {
    let total_nodes = (scenario.plan.nodes_used() as usize) + 2 * 4;
    let config = ServiceConfig::builder()
        .sla_p(defaults::SLA_P)
        .elastic_scaling(elastic_scaling)
        .monitor_window_ms(24 * 3_600_000)
        .scaling_epoch_ms(defaults::EPOCH_MS)
        .scaling_check_interval_ms(300_000)
        .trace(TraceConfig::new(vec![0], 1_800_000)) // 30 min samples
        // Bounded event sample for the JSON artefact; counters stay exact.
        .telemetry(TelemetryConfig::default().with_event_capacity(5_000))
        .build()
        .expect("valid service config");
    let mut service = ThriftyService::deploy(
        &scenario.plan,
        total_nodes,
        scenario.templates.iter().copied(),
        config,
    )
    .expect("deployable scenario");
    service.set_historical_activity(scenario.historical_ratios.iter().copied());
    drive_with_takeover(&mut service, scenario);
    let report = service.report();
    let trace = report
        .ttp_trace
        .iter()
        .filter(|s| s.group == 0)
        .copied()
        .collect();
    Fig77Run { report, trace }
}

/// Replays the organic stream while running the closed-loop takeover: one
/// outstanding query at a time on behalf of the injected tenant, the next
/// submitted a think-pause after the previous completes — like the paper's
/// operator, who could only resubmit after getting results.
fn drive_with_takeover(service: &mut ThriftyService, scenario: &Fig77Scenario) {
    use mppdb_sim::time::{SimDuration, SimTime};
    const PAUSE_MS: u64 = 500; // near-continuous resubmission
    const POLL_MS: u64 = 600_000; // time step while waiting on a completion
    let (start_ms, end_ms) = scenario.inject_window;
    let mut organic = scenario.queries.iter().copied().peekable();

    enum Takeover {
        Idle { next_at: u64 },
        Outstanding { submit: SimTime },
        Finished,
    }
    let mut takeover = Takeover::Idle { next_at: start_ms };
    let mut scan_from = 0usize;
    let mut poll_clock = start_ms;
    let poll_limit = scenario.horizon_ms * 2;

    loop {
        // Resolve the outstanding takeover query, if its completion has
        // surfaced in the records.
        if let Takeover::Outstanding { submit } = takeover {
            let records = service.records();
            let found = records[scan_from..]
                .iter()
                .find(|r| r.tenant == scenario.injected && r.submit == submit)
                .map(|r| r.submit.as_ms() + r.achieved.as_ms());
            scan_from = records.len();
            if let Some(done_ms) = found {
                let next_at = done_ms + PAUSE_MS;
                takeover = if next_at < end_ms {
                    Takeover::Idle { next_at }
                } else {
                    Takeover::Finished
                };
            }
        }

        let next_organic = organic.peek().map(|q| q.submit.as_ms());
        let next_inject = match takeover {
            Takeover::Idle { next_at } => Some(next_at),
            _ => None,
        };
        match (next_organic, next_inject) {
            (Some(o), Some(i)) if o <= i => {
                let q = organic.next().expect("peeked");
                service.submit(q).expect("organic query");
            }
            (_, Some(i)) => {
                let submit = SimTime::from_ms(i);
                service
                    .submit(IncomingQuery {
                        tenant: scenario.injected,
                        submit,
                        template: scenario.inject_template.id,
                        baseline: SimDuration::from_ms_f64(scenario.inject_baseline_ms),
                    })
                    .expect("takeover query");
                takeover = Takeover::Outstanding { submit };
                poll_clock = i;
            }
            (Some(_), None) => {
                let q = organic.next().expect("peeked");
                let submit_ms = q.submit.as_ms();
                service.submit(q).expect("organic query");
                poll_clock = poll_clock.max(submit_ms);
            }
            (None, None) => match takeover {
                Takeover::Outstanding { .. } => {
                    // No organic traffic left: tick time forward until the
                    // takeover query completes (bounded defensively).
                    poll_clock += POLL_MS;
                    if poll_clock > poll_limit {
                        break;
                    }
                    service
                        .advance_log_time(SimTime::from_ms(poll_clock))
                        .expect("takeover poll");
                }
                _ => break,
            },
        }
    }
    service.drain().expect("final drain");
}

/// Fraction of queries violating the SLA and the worst normalized latency
/// within `[from_ms, to_ms)` of the log timeline.
fn phase_stats(report: &ServiceReport, from_ms: u64, to_ms: u64) -> (f64, f64) {
    let in_window: Vec<_> = report
        .records
        .iter()
        .filter(|r| (from_ms..to_ms).contains(&r.submit.as_ms()))
        .collect();
    if in_window.is_empty() {
        return (0.0, 1.0);
    }
    let rate = in_window.iter().filter(|r| !r.met).count() as f64 / in_window.len() as f64;
    // lint: allow(float-merge) — max is order-insensitive (no accumulation).
    let worst = in_window.iter().map(|r| r.normalized).fold(1.0, f64::max);
    (rate, worst)
}

/// Fraction of queries violating the SLA within `[from_ms, to_ms)` of the
/// log timeline (used by the shape tests).
#[cfg(test)]
fn violation_rate(report: &ServiceReport, from_ms: u64, to_ms: u64) -> f64 {
    phase_stats(report, from_ms, to_ms).0
}

/// Runs Figure 7.7 end to end.
pub fn fig_7_7(harness: &Harness) -> ExperimentResult {
    let scenario = build_scenario(harness);
    // The two replays (scaling off / on) are independent full-service runs
    // over the same immutable scenario.
    let (off, on) = crate::parallel::par_join2(
        "fig7.7:replay",
        || run_scenario(&scenario, false),
        || run_scenario(&scenario, true),
    );

    // Figures 7.7a/c: hourly RT-TTP excerpts around the takeover window.
    let mut ttp = Table::new(
        "Figures 7.7a/7.7c — RT-TTP of the tenant-group (24h sliding window)",
        &["hour", "scaling OFF", "scaling ON"],
    );
    let sample = |run: &Fig77Run, hour_ms: u64| -> Option<f64> {
        run.trace
            .iter()
            .rfind(|s| s.at_ms <= hour_ms)
            .map(|s| s.rt_ttp)
    };
    let horizon_h = scenario.horizon_ms / 3_600_000;
    let mut h = 20u64;
    while h <= horizon_h.min(120) {
        let ms = h * 3_600_000;
        if let (Some(o), Some(n)) = (sample(&off, ms), sample(&on, ms)) {
            ttp.push_row(vec![
                format!("{h}h"),
                format!("{:.3}%", o * 100.0),
                format!("{:.3}%", n * 100.0),
            ]);
        }
        h += 8;
    }

    // Figures 7.7b/d: SLA violation rates before / during / after scaling.
    // "Ready" is the moment the MPPDB serving the taken-over tenant came up
    // (falling back to the first completed scale-out).
    let ready_ms = on
        .report
        .scaling_events
        .iter()
        .filter(|e| e.over_active.contains(&scenario.injected))
        .find_map(|e| e.ready_at.map(|t| t.as_ms()))
        .or_else(|| {
            on.report
                .scaling_events
                .iter()
                .find_map(|e| e.ready_at.map(|t| t.as_ms()))
        })
        .unwrap_or(scenario.horizon_ms);
    let mut perf = Table::new(
        "Figures 7.7b/7.7d — SLA violations and worst normalized latency by phase",
        &[
            "phase (log time)",
            "OFF: violations",
            "OFF: worst norm",
            "ON: violations",
            "ON: worst norm",
        ],
    );
    let takeover = scenario.inject_window.0;
    for (label, from, to) in [
        ("before takeover", 0, takeover),
        ("takeover -> new MPPDB ready", takeover, ready_ms),
        ("after new MPPDB ready", ready_ms, scenario.horizon_ms),
    ] {
        if to > from {
            let (off_rate, off_worst) = phase_stats(&off.report, from, to);
            let (on_rate, on_worst) = phase_stats(&on.report, from, to);
            perf.push_row(vec![
                label.into(),
                pct(off_rate),
                num(off_worst, 2),
                pct(on_rate),
                num(on_worst, 2),
            ]);
        }
    }

    // Sparkline overview of the whole traces (clamped to [0.99, 1.0] so the
    // sub-P dips stand out).
    let mut spark = Table::new(
        "RT-TTP trace overview (each glyph = 2 h; scale 99.5%..100%)",
        &["run", "trace"],
    );
    let spark_of = |run: &Fig77Run| {
        // Downsample to one glyph per two hours, keeping the *minimum* of
        // each bucket so short dips below P stay visible.
        let values: Vec<f64> = run
            .trace
            .chunks(4)
            // lint: allow(float-merge) — min is order-insensitive.
            .map(|c| c.iter().map(|s| s.rt_ttp).fold(1.0, f64::min))
            .collect();
        sparkline(&values, 0.995, 1.0)
    };
    spark.push_row(vec!["scaling OFF".into(), spark_of(&off)]);
    spark.push_row(vec!["scaling ON".into(), spark_of(&on)]);

    let mut events = Table::new(
        "Elastic scaling actions (scaling ON run)",
        &[
            "triggered (h)",
            "over-active tenants",
            "new MPPDB ready (h)",
            "load time",
        ],
    );
    for e in &on.report.scaling_events {
        let trig_h = e.triggered_at.as_ms() as f64 / 3_600_000.0;
        let (ready_h, load) = match e.ready_at {
            Some(r) => (
                num(r.as_ms() as f64 / 3_600_000.0, 1),
                format!(
                    "{:.1}h",
                    (r.as_ms().saturating_sub(e.triggered_at.as_ms())) as f64 / 3_600_000.0
                ),
            ),
            None => ("-".into(), "still loading".into()),
        };
        events.push_row(vec![
            num(trig_h, 1),
            e.over_active
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            ready_h,
            load,
        ]);
    }

    ExperimentResult {
        id: "fig7.7".into(),
        context: format!(
            "group of {} tenants ({}-node MPPDBs, R={}); tenant {} taken over at hour 26",
            scenario.plan.groups[0].members.len(),
            scenario.plan.groups[0].largest_request(),
            scenario.plan.groups[0].replication(),
            scenario.injected,
        ),
        tables: vec![ttp, spark, perf, events],
        timings: Vec::new(),
        // The scaling-ON run's telemetry carries the scaling/migration
        // event stream the figure is about.
        telemetry: Some(on.report.telemetry.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrifty_workload::prelude::GenerationConfig;

    fn harness() -> Harness {
        let mut cfg = GenerationConfig::small(37, 150);
        cfg.session_trials = 6;
        Harness::from_config(cfg)
    }

    #[test]
    fn scaling_identifies_and_relieves_the_injected_tenant() {
        let h = harness();
        let scenario = build_scenario(&h);
        assert!(scenario.plan.groups[0].members.len() >= 4);
        let on = run_scenario(&scenario, true);
        assert!(
            !on.report.scaling_events.is_empty(),
            "the takeover must trigger elastic scaling"
        );
        assert!(
            on.report
                .scaling_events
                .iter()
                .any(|e| e.over_active.contains(&scenario.injected)),
            "the injected tenant must be identified as over-active: {:?}",
            on.report.scaling_events
        );
        assert!(on
            .report
            .scaling_events
            .iter()
            .any(|e| e.ready_at.is_some()));
    }

    #[test]
    fn scaling_off_keeps_violating_during_the_takeover() {
        let h = harness();
        let scenario = build_scenario(&h);
        let off = run_scenario(&scenario, false);
        assert!(off.report.scaling_events.is_empty());
        let during = violation_rate(&off.report, 26 * 3_600_000, 50 * 3_600_000);
        let before = violation_rate(&off.report, 0, 26 * 3_600_000);
        assert!(
            during > before,
            "takeover must raise the violation rate: {before:.4} -> {during:.4}"
        );
    }

    #[test]
    fn rt_ttp_drops_during_takeover_without_scaling() {
        let h = harness();
        let scenario = build_scenario(&h);
        let off = run_scenario(&scenario, false);
        let min_ttp = off
            .trace
            .iter()
            .filter(|s| s.at_ms >= 26 * 3_600_000)
            .map(|s| s.rt_ttp)
            .fold(1.0, f64::min);
        assert!(
            min_ttp < 0.999,
            "RT-TTP must fall below P during the takeover, got {min_ttp}"
        );
    }
}
