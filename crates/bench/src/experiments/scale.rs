//! Scale sweep — the million-tenant stress arm of the redesigned sim core.
//!
//! Every other experiment replays the paper's corpus (thousands of
//! tenants); this arm asks how far the heap-scheduled simulator and the
//! shard-parallel advisor actually stretch. For each tenant count in the
//! sweep it
//!
//! 1. synthesizes activity histories (one seeded burst per tenant — no
//!    session library, so generation stays `O(T)`),
//! 2. times the 2-step grouping serial vs sharded on a capped subset and
//!    checks the two solutions are identical,
//! 3. materializes a direct deployment plan for the *full* population and
//!    replays a full day of queries through [`ThriftyService`], and
//! 4. runs the whole pipeline twice — worker-thread override 1 and 4 —
//!    and compares output digests, extending the crate's byte-identity
//!    contract to the scale sweep.
//!
//! The grouping step is capped at [`GROUPING_CAP`] tenants because the
//! greedy Step-2 insertion is quadratic in the bucket size; the cap is
//! recorded in the result context so the table cannot be misread as a
//! million-tenant grouping benchmark. The replay covers the full tenant
//! count at every point.

use crate::pipeline::Scale;
use crate::report::{dur, num, ExperimentResult, Table};
use crate::sharded::two_step_grouping_sharded;
use mppdb_sim::prelude::{isolated_latency_ms, QueryTemplate, SimDuration, SimTime, TemplateId};
use std::time::{Duration, Instant};
use thrifty::prelude::*;

/// Upper bound on the tenant count fed to the grouping comparison.
pub const GROUPING_CAP: usize = 5_000;
/// Replayed horizon: one simulated day.
pub const HORIZON_MS: u64 = 24 * 3_600_000;
/// Length of each tenant's single busy burst.
const BURST_MS: u64 = 30 * 60_000;
/// Tenants per directly-constructed group (per node-size class).
const GROUP_SIZE: usize = 25;
/// Node sizes cycle through this list, giving four Step-1 buckets.
const NODE_SIZES: [u32; 4] = [1, 2, 4, 8];
/// Template id used by every synthetic query.
const SCALE_TEMPLATE: TemplateId = TemplateId(9_000);

/// SplitMix64 finalizer — the per-tenant seeded hash behind burst phases.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a accumulator for the cross-thread-count output digests.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Synthesizes `tenants` histories: node sizes cycling `NODE_SIZES`,
/// one `BURST_MS` busy burst whose phase is a seeded hash of the index.
/// Runs through [`crate::parallel::par_map`], so it is itself part of the
/// determinism surface the sweep digests.
pub fn synthetic_histories(seed: u64, tenants: usize) -> Vec<TenantHistory> {
    let idx: Vec<u64> = (0..tenants as u64).collect();
    crate::parallel::par_map("scale:gen", &idx, |&i| {
        let nodes = NODE_SIZES[(i % NODE_SIZES.len() as u64) as usize];
        let start = mix(seed ^ i) % (HORIZON_MS - BURST_MS);
        TenantHistory::new(
            Tenant::new(TenantId(i as u32), nodes, 100.0 * f64::from(nodes)),
            vec![(start, start + BURST_MS)],
        )
    })
}

/// Builds a deployment plan directly (no grouping pass): per node-size
/// class, chunks of `GROUP_SIZE` tenants share one single-MPPDB group of
/// `n_1` nodes. Linear in `T`, which is what lets the replay reach a
/// million tenants while the quadratic grouping stays capped.
pub fn direct_plan(histories: &[TenantHistory]) -> DeploymentPlan {
    let mut groups = Vec::new();
    for &size in &NODE_SIZES {
        let members: Vec<Tenant> = histories
            .iter()
            .map(|h| h.tenant)
            .filter(|t| t.nodes == size)
            .collect();
        for chunk in members.chunks(GROUP_SIZE) {
            groups.push(TenantGroupPlan::new(chunk.to_vec(), 1, size));
        }
    }
    DeploymentPlan { groups }
}

/// Generates the day's query log: `per_tenant` queries spaced through each
/// tenant's burst, globally sorted by `(submit, tenant)`.
pub fn query_log(
    histories: &[TenantHistory],
    per_tenant: usize,
    template: &QueryTemplate,
) -> Vec<IncomingQuery> {
    let spacing = BURST_MS / per_tenant as u64;
    let mut queries: Vec<IncomingQuery> = Vec::with_capacity(histories.len() * per_tenant);
    for h in histories {
        let (start, _) = h.intervals[0];
        let baseline = SimDuration::from_ms_f64(isolated_latency_ms(
            template,
            h.tenant.data_gb,
            h.tenant.nodes as usize,
        ));
        for j in 0..per_tenant as u64 {
            queries.push(IncomingQuery {
                tenant: h.tenant.id,
                submit: SimTime::from_ms(start + j * spacing),
                template: template.id,
                baseline,
            });
        }
    }
    queries.sort_unstable_by_key(|q| (q.submit, q.tenant));
    queries
}

/// One sweep point's measurements (from a single pipeline run).
pub struct PointRun {
    /// History-generation wall time.
    pub gen: Duration,
    /// Serial grouping wall time (on the capped subset).
    pub group_serial: Duration,
    /// Sharded grouping wall time (same subset).
    pub group_sharded: Duration,
    /// Whether the sharded solution equalled the serial one.
    pub grouping_identical: bool,
    /// Nodes in the directly-constructed full-population plan.
    pub plan_nodes: u64,
    /// Queries replayed.
    pub queries: usize,
    /// Replay wall time (deploy + submit loop + final drain).
    pub replay: Duration,
    /// SLA summary of the replay.
    pub summary: SlaSummary,
    /// FNV digest over histories, grouping solution, and replay records.
    pub digest: u64,
}

/// Runs the full pipeline once at the current thread setting.
pub fn run_point(seed: u64, tenants: usize, per_tenant: usize) -> PointRun {
    let t0 = Instant::now();
    let histories = synthetic_histories(seed, tenants);
    let gen = t0.elapsed();

    let mut digest = Digest::new();
    for h in &histories {
        digest.u64(u64::from(h.tenant.id.0));
        digest.u64(u64::from(h.tenant.nodes));
        for &(s, e) in &h.intervals {
            digest.u64(s);
            digest.u64(e);
        }
    }

    // Grouping comparison on the capped subset (Step 2 is quadratic per
    // bucket; the replay below still covers the full population).
    let cap = tenants.min(GROUPING_CAP);
    let epoch = EpochConfig::new(600_000, HORIZON_MS);
    let problem = histories[..cap]
        .iter()
        .fold(GroupingProblem::builder(), |b, h| {
            b.tenant(
                h.tenant,
                ActivityVector::from_intervals(&h.intervals, epoch),
            )
        })
        .replication(1)
        .sla_p(0.999)
        .build()
        .expect("synthetic histories form a consistent grouping instance");
    let config = TwoStepConfig::default();
    let t1 = Instant::now();
    let serial = two_step_grouping_with(&problem, config);
    let group_serial = t1.elapsed();
    let t2 = Instant::now();
    let sharded = two_step_grouping_sharded(&problem, config);
    let group_sharded = t2.elapsed();
    let grouping_identical = serial == sharded;
    for g in &serial.groups {
        for &m in &g.members {
            digest.u64(m as u64);
        }
        digest.u64(g.members.len() as u64);
    }

    // Full-population replay: direct plan, elastic scaling off, telemetry
    // counters only (no retained event stream at this scale).
    let template = QueryTemplate::new(SCALE_TEMPLATE, 600.0, 0.0);
    let plan = direct_plan(&histories);
    let plan_nodes = plan.nodes_used();
    let queries = query_log(&histories, per_tenant, &template);
    let n_queries = queries.len();
    let service_cfg = ServiceConfig::builder()
        .elastic_scaling(false)
        .telemetry(TelemetryConfig::default().with_event_capacity(0))
        .build()
        .expect("valid service config");
    let t3 = Instant::now();
    let mut service = ThriftyService::deploy(&plan, plan_nodes as usize, [template], service_cfg)
        .expect("direct plan deploys");
    let report = service.replay(queries).expect("scale replay succeeds");
    let replay = t3.elapsed();

    for r in &report.records {
        digest.u64(u64::from(r.tenant.0));
        digest.u64(r.submit.as_ms());
        digest.u64(r.achieved.as_ms());
        digest.u64(r.normalized.to_bits());
        digest.u64(u64::from(r.met));
    }
    digest.u64(report.summary.total as u64);
    digest.u64(report.summary.met as u64);

    PointRun {
        gen,
        group_serial,
        group_sharded,
        grouping_identical,
        plan_nodes,
        queries: n_queries,
        replay,
        summary: report.summary,
        digest: digest.finish(),
    }
}

/// Tenant counts and per-tenant query volumes at each scale.
pub fn sweep_points(scale: Scale) -> Vec<(usize, usize)> {
    match scale {
        Scale::Small => vec![(10_000, 8)],
        Scale::Full => vec![(10_000, 8), (100_000, 8), (1_000_000, 2)],
    }
}

/// Runs the scale sweep.
pub fn scale(scale: Scale, seed: u64) -> ExperimentResult {
    let mut perf = Table::new(
        "Scale sweep — heap-scheduled replay and shard-parallel grouping",
        &[
            "tenants",
            "gen",
            "group serial",
            "group sharded",
            "plan nodes",
            "queries",
            "replay",
            "queries/s",
            "SLA met",
        ],
    );
    let mut identity = Table::new(
        "Determinism — thread-count 1 vs 4 output digests",
        &[
            "tenants",
            "digest @1",
            "digest @4",
            "identical",
            "grouping shards identical",
        ],
    );
    let mut all_identical = true;
    for (tenants, per_tenant) in sweep_points(scale) {
        // Both runs inside the same point so the override round-trips even
        // if a later point panics mid-sweep.
        crate::parallel::set_thread_override(Some(1));
        let one = run_point(seed, tenants, per_tenant);
        crate::parallel::set_thread_override(Some(4));
        let four = run_point(seed, tenants, per_tenant);
        crate::parallel::set_thread_override(None);

        let identical = one.digest == four.digest;
        all_identical &= identical && one.grouping_identical && four.grouping_identical;
        let qps = four.queries as f64 / four.replay.as_secs_f64().max(1e-9);
        perf.push_row(vec![
            tenants.to_string(),
            dur(four.gen),
            dur(four.group_serial),
            dur(four.group_sharded),
            four.plan_nodes.to_string(),
            four.queries.to_string(),
            dur(four.replay),
            num(qps, 0),
            format!("{}/{}", four.summary.met, four.summary.total),
        ]);
        identity.push_row(vec![
            tenants.to_string(),
            format!("{:016x}", one.digest),
            format!("{:016x}", four.digest),
            identical.to_string(),
            (one.grouping_identical && four.grouping_identical).to_string(),
        ]);
    }
    assert!(
        all_identical,
        "scale sweep must be byte-identical across thread counts"
    );
    ExperimentResult {
        id: "scale".into(),
        context: format!(
            "synthetic single-burst day, sizes {NODE_SIZES:?}, direct plan \
             ({GROUP_SIZE}/group); grouping comparison capped at {GROUPING_CAP} \
             tenants (Step 2 is quadratic per bucket), replay covers the full count"
        ),
        tables: vec![perf, identity],
        timings: Vec::new(),
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_is_identical_across_thread_counts() {
        crate::parallel::set_thread_override(Some(1));
        let one = run_point(7, 2_000, 2);
        crate::parallel::set_thread_override(Some(4));
        let four = run_point(7, 2_000, 2);
        crate::parallel::set_thread_override(None);
        assert_eq!(one.digest, four.digest);
        assert!(one.grouping_identical && four.grouping_identical);
        assert_eq!(one.queries, 4_000);
        assert_eq!(one.summary.total, 4_000, "every query completes");
    }

    #[test]
    fn direct_plan_covers_every_tenant_homogeneously() {
        let histories = synthetic_histories(3, 403);
        let plan = direct_plan(&histories);
        assert_eq!(plan.tenant_count(), 403);
        for g in &plan.groups {
            let n1 = g.largest_request();
            assert!(g.members.iter().all(|t| t.nodes == n1));
            assert_eq!(g.mppdb_nodes, vec![n1]);
            assert!(g.members.len() <= GROUP_SIZE);
        }
    }

    #[test]
    fn query_log_is_sorted_and_in_burst() {
        let histories = synthetic_histories(11, 50);
        let template = QueryTemplate::new(SCALE_TEMPLATE, 600.0, 0.0);
        let queries = query_log(&histories, 4, &template);
        assert_eq!(queries.len(), 200);
        assert!(queries
            .windows(2)
            .all(|w| (w[0].submit, w[0].tenant) <= (w[1].submit, w[1].tenant)));
        for q in &queries {
            let h = &histories[q.tenant.0 as usize];
            let (s, e) = h.intervals[0];
            assert!((s..e).contains(&q.submit.as_ms()));
        }
    }
}
