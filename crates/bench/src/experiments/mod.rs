//! One module per paper artefact (table or figure). See DESIGN.md §4 for
//! the experiment index.

pub mod ablate;
pub mod controller;
pub mod drift;
pub mod fig1_1;
pub mod fig5_3;
pub mod fig7_6;
pub mod fig7_7;
pub mod headline;
pub mod scale;
pub mod sweeps;
pub mod tab5_1;
pub mod tab7_1;

use crate::pipeline::Harness;
use crate::report::ExperimentResult;

/// Every experiment id, in presentation order.
pub const ALL_IDS: [&str; 16] = [
    "fig1.1a",
    "fig1.1b",
    "fig1.1c",
    "tab5.1",
    "fig5.3",
    "tab7.1",
    "fig7.1",
    "fig7.2",
    "fig7.3",
    "fig7.4",
    "fig7.5",
    "fig7.6",
    "fig7.7",
    "drift",
    "controller",
    "scale",
];

/// Experiments that need the generated corpus (and therefore a harness).
pub const CORPUS_IDS: [&str; 9] = [
    "fig7.1", "fig7.2", "fig7.3", "fig7.4", "fig7.5", "fig7.6", "fig7.7", "headline", "ablate",
];

/// Runs one experiment by id. `harness` is only consulted for the corpus
/// experiments; pass the same harness across calls to reuse the session
/// library.
pub fn run(id: &str, harness: &Harness) -> Option<ExperimentResult> {
    // Drop stage timings left over from earlier work in this process so the
    // result carries only its own stages.
    let _ = crate::parallel::take_timings();
    let mut result = match id {
        "fig1.1a" => fig1_1::fig_1_1a(),
        "fig1.1b" => fig1_1::fig_1_1b(),
        "fig1.1c" => fig1_1::fig_1_1c(),
        "tab5.1" => tab5_1::tab_5_1(),
        "fig5.3" => fig5_3::fig_5_3(),
        "tab7.1" => tab7_1::tab_7_1(),
        "fig7.1" => sweeps::fig_7_1(harness),
        "fig7.2" => sweeps::fig_7_2(harness),
        "fig7.3" => sweeps::fig_7_3(harness),
        "fig7.4" => sweeps::fig_7_4(harness),
        "fig7.5" => sweeps::fig_7_5(harness),
        "fig7.6" => fig7_6::fig_7_6(harness),
        "fig7.7" => fig7_7::fig_7_7(harness),
        "drift" => drift::drift(),
        "controller" => controller::controller(),
        "scale" => scale::scale(harness.scale(), harness.base_config().seed),
        "headline" => headline::headline(harness),
        "ablate" => ablate::ablate(harness),
        _ => return None,
    };
    result.timings = crate::parallel::take_timings();
    Some(result)
}
