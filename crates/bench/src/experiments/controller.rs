//! Controller experiment — fixed-period vs feedback re-consolidation
//! across the adversarial scenario library.
//!
//! Every scenario of `thrifty_workload::scenarios` is replayed twice on
//! the same day-one deployment: once with the historical fixed-period
//! [`Reconsolidator`] and once with the Tempo-style feedback controller
//! (adaptive period and observation window, build cap, move hysteresis).
//! The arms are compared on SLA attainment, powered-node cost, and churn
//! (tenants moved by cutovers), with the controller's skip attribution
//! alongside. The planner-thrashing scenario is the acceptance gate: the
//! feedback controller must match the fixed arm's SLA with measurably
//! fewer tenant moves.

use crate::report::{num, pct, ExperimentResult, Table};
use mppdb_sim::query::QueryTemplate;
use mppdb_sim::time::SimTime;
use thrifty::prelude::*;
use thrifty_workload::prelude::*;

/// Sampling step for the powered-node trajectory (also the cadence of
/// `maybe_cycle` probes — finer than the shortest adapted period).
const SAMPLE_MS: u64 = 15 * 60_000;
/// Fixed-arm cycle period and the feedback arm's initial period.
const CYCLE_MS: u64 = 2 * 3_600_000;
/// The service's monitoring window (the fixed arm's lookback and the
/// ceiling of the feedback arm's adaptive window).
const WINDOW_MS: u64 = 8 * 3_600_000;
/// Replication factor of the day-one design and all cycle plans.
const REPLICATION: u32 = 2;
/// Workload generation seed.
const SEED: u64 = 42;

/// The feedback arm's controller knobs.
pub fn feedback_config() -> ControllerConfig {
    ControllerConfig {
        initial_interval_ms: CYCLE_MS,
        min_interval_ms: 30 * 60_000,
        max_interval_ms: WINDOW_MS,
        initial_window_ms: 2 * 3_600_000,
        // The floor must cover the slot pattern's full period (stride *
        // slot = 2h): a shorter window shows whole cohorts as idle and the
        // advisor packs the "idle" tenants together — the correlated
        // scenario flushes exactly that bug.
        min_window_ms: 2 * 3_600_000,
        max_window_ms: WINDOW_MS,
        error_high: 0.02,
        error_low: 0.005,
        max_builds_per_cycle: 2,
        hysteresis_cycles: 2,
        force_after: 4,
    }
}

fn advisor_config(horizon_ms: u64) -> AdvisorConfig {
    AdvisorConfig {
        replication: REPLICATION,
        sla_p: 0.999,
        epoch: EpochConfig::new(10_000, horizon_ms),
        algorithm: GroupingAlgorithm::TwoStep,
        exclusion: ExclusionPolicy::default(),
    }
}

/// The day-one deployment plan: the advisor run over the scenario's
/// steady-belief histories.
pub fn day_one_plan(scenario: &AdversarialScenario) -> DeploymentPlan {
    let histories: Vec<TenantHistory> = scenario
        .tenants
        .iter()
        .map(|s| {
            let (_, iv) = scenario
                .design_histories
                .iter()
                .find(|(id, _)| *id == s.id)
                .expect("every tenant has a design history");
            TenantHistory::new(Tenant::new(s.id, s.nodes, s.data_gb), iv.clone())
        })
        .collect();
    let advisor = DeploymentAdvisor::new(advisor_config(scenario.config.horizon_ms));
    advisor.advise(&histories).plan
}

/// Outcome of one (scenario, controller) arm.
pub struct ControllerRun {
    /// The service report (SLA records + telemetry).
    pub report: ServiceReport,
    /// `(log ms, powered nodes)` samples over the horizon.
    pub nodes: Vec<(u64, usize)>,
    /// Re-consolidation cycles completed.
    pub cycles: u64,
    /// Tenants moved by cutovers (the churn metric).
    pub moves: u64,
    /// The driver's per-cause skip counters.
    pub skips: SkipCounts,
    /// Due-instant evaluations the driver performed.
    pub evaluations: u64,
    /// The (possibly adapted) period at the end of the run.
    pub final_interval_ms: u64,
}

impl ControllerRun {
    /// SLA attainment over the whole run.
    pub fn attainment(&self) -> f64 {
        let total = self.report.records.len();
        if total == 0 {
            return 1.0;
        }
        self.report.records.iter().filter(|r| r.met).count() as f64 / total as f64
    }

    /// Mean powered nodes across all samples.
    pub fn mean_nodes(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|&(_, n)| n).sum::<usize>() as f64 / self.nodes.len() as f64
    }
}

/// Replays one scenario on one controller arm.
pub fn run_arm(
    scenario: &AdversarialScenario,
    plan: &DeploymentPlan,
    feedback: bool,
) -> ControllerRun {
    let cfg = &scenario.config;
    // Headroom: enough free nodes to double-run a full rebuild next to
    // the serving deployment, with slack for thrash-shaped regroupings.
    let total_nodes = plan.nodes_used() as usize * 3;
    let template = QueryTemplate::new(SCENARIO_TEMPLATE, cfg.query_coef, 0.0);
    let service_cfg = ServiceConfig::builder()
        .sla_p(0.999)
        .elastic_scaling(false)
        .monitor_window_ms(WINDOW_MS)
        .telemetry(TelemetryConfig::default().with_event_capacity(5_000))
        .build()
        .expect("valid service config");
    let mut service = ThriftyService::deploy(plan, total_nodes, [template], service_cfg)
        .expect("deployable day-one design");
    let mut recon = if feedback {
        Reconsolidator::with_controller(advisor_config(WINDOW_MS), feedback_config())
    } else {
        Reconsolidator::new(advisor_config(WINDOW_MS), CYCLE_MS)
    };

    let mut nodes = Vec::new();
    let mut next_sample = 0u64;
    let mut drive_to = |service: &mut ThriftyService,
                        recon: &mut Reconsolidator,
                        nodes: &mut Vec<(u64, usize)>,
                        target_ms: u64| {
        while next_sample <= target_ms {
            service
                .advance_log_time(SimTime::from_ms(next_sample))
                .expect("advance to sample");
            recon.maybe_cycle(service).expect("cycle check");
            nodes.push((next_sample, service.cluster().powered_nodes()));
            next_sample += SAMPLE_MS;
        }
    };
    for q in &scenario.queries {
        drive_to(&mut service, &mut recon, &mut nodes, q.submit.as_ms());
        service
            .submit(IncomingQuery {
                tenant: q.tenant,
                submit: q.submit,
                template: q.template,
                baseline: q.baseline,
            })
            .expect("query submits");
    }
    drive_to(&mut service, &mut recon, &mut nodes, cfg.horizon_ms);
    service.drain().expect("final drain");
    nodes.push((cfg.horizon_ms, service.cluster().powered_nodes()));
    let cycles = service.reconsolidation_cycles();
    let report = service.report();
    let moves = report
        .telemetry
        .counters
        .get("reconsolidation.tenants_moved")
        .copied()
        .unwrap_or(0);
    ControllerRun {
        report,
        nodes,
        cycles,
        moves,
        skips: recon.skip_counts(),
        evaluations: recon.evaluations(),
        final_interval_ms: recon.interval_ms(),
    }
}

/// Replays one scenario kind on both arms.
pub fn run_scenario(kind: ScenarioKind, feedback: bool) -> ControllerRun {
    let scenario = AdversarialScenario::generate(&ScenarioConfig::small(kind, SEED));
    let plan = day_one_plan(&scenario);
    run_arm(&scenario, &plan, feedback)
}

/// Runs the controller experiment end to end: every scenario kind, both
/// arms, in parallel.
pub fn controller() -> ExperimentResult {
    let arms: Vec<(ScenarioKind, bool)> = ScenarioKind::ALL
        .iter()
        .flat_map(|&k| [(k, false), (k, true)])
        .collect();
    let runs = crate::parallel::par_map("controller:arms", &arms, |&(kind, feedback)| {
        run_scenario(kind, feedback)
    });

    let mut summary = Table::new(
        "Fixed-period vs feedback re-consolidation per adversarial scenario",
        &[
            "scenario",
            "SLA fixed",
            "SLA feedback",
            "nodes fixed",
            "nodes feedback",
            "moves fixed",
            "moves feedback",
            "cycles fixed",
            "cycles feedback",
        ],
    );
    let mut attribution = Table::new(
        "Feedback-controller decision attribution per scenario",
        &[
            "scenario",
            "evaluations",
            "planned",
            "skip busy",
            "skip noop",
            "skip nodes",
            "skip deferred",
            "final period (min)",
        ],
    );
    let mut telemetry = None;
    for (i, kind) in ScenarioKind::ALL.iter().enumerate() {
        let fixed = &runs[2 * i];
        let fb = &runs[2 * i + 1];
        summary.push_row(vec![
            kind.name().into(),
            pct(fixed.attainment()),
            pct(fb.attainment()),
            num(fixed.mean_nodes(), 1),
            num(fb.mean_nodes(), 1),
            fixed.moves.to_string(),
            fb.moves.to_string(),
            fixed.cycles.to_string(),
            fb.cycles.to_string(),
        ]);
        let planned = fb.evaluations - fb.skips.total();
        attribution.push_row(vec![
            kind.name().into(),
            fb.evaluations.to_string(),
            planned.to_string(),
            fb.skips.busy.to_string(),
            fb.skips.noop.to_string(),
            fb.skips.insufficient_nodes.to_string(),
            fb.skips.deferred.to_string(),
            num(fb.final_interval_ms as f64 / 60_000.0, 0),
        ]);
        if *kind == ScenarioKind::PlannerThrash {
            telemetry = Some(fb.report.telemetry.clone());
        }
    }

    ExperimentResult {
        id: "controller".into(),
        context: format!(
            "{} scenarios × 2 arms; fixed cycle {}h, feedback period in \
             [0.5h, {}h] with 2-cycle hysteresis and a {}-build cap; churn \
             = tenants moved by cutovers",
            ScenarioKind::ALL.len(),
            CYCLE_MS / 3_600_000,
            WINDOW_MS / 3_600_000,
            feedback_config().max_builds_per_cycle,
        ),
        tables: vec![summary, attribution],
        timings: Vec::new(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thrash_feedback_matches_sla_with_less_churn() {
        // The acceptance gate: on the planner-thrashing adversary the
        // feedback controller keeps SLA attainment at least as high as
        // the fixed-period controller while moving measurably fewer
        // tenants.
        let fixed = run_scenario(ScenarioKind::PlannerThrash, false);
        let fb = run_scenario(ScenarioKind::PlannerThrash, true);
        assert!(
            fixed.moves > 0,
            "the thrash scenario must actually churn the fixed arm"
        );
        assert!(
            fb.moves * 2 <= fixed.moves,
            "feedback churn must be measurably lower: {} vs {}",
            fb.moves,
            fixed.moves
        );
        assert!(
            fb.attainment() >= fixed.attainment(),
            "feedback SLA must not regress: {} vs {}",
            fb.attainment(),
            fixed.attainment()
        );
    }

    #[test]
    fn steady_workload_converges_to_zero_moves() {
        // On a workload where the day-one belief holds, the feedback
        // controller must settle: after an initial alignment phase (N =
        // 4 evaluations) no tenant moves again, and the period backs off
        // from its initial value.
        let scenario =
            AdversarialScenario::generate(&ScenarioConfig::small(ScenarioKind::Steady, SEED));
        let plan = day_one_plan(&scenario);
        let run = run_arm(&scenario, &plan, true);
        let settle_ms = 4 * CYCLE_MS;
        let late_moves: u64 = run
            .report
            .telemetry
            .events
            .iter()
            .filter_map(|e| match *e {
                TelemetryEvent::GroupCutover { at_ms, tenants, .. } if at_ms >= settle_ms => {
                    Some(tenants as u64)
                }
                _ => None,
            })
            .sum();
        assert_eq!(
            late_moves, 0,
            "a stable workload must converge to zero moves"
        );
        assert!(
            run.final_interval_ms > CYCLE_MS,
            "no-op cycles must lengthen the period toward its ceiling"
        );
    }

    #[test]
    fn every_scenario_completes_all_queries_on_both_arms() {
        for kind in [ScenarioKind::FlashCrowd, ScenarioKind::BlackFriday] {
            let scenario = AdversarialScenario::generate(&ScenarioConfig::small(kind, SEED));
            let plan = day_one_plan(&scenario);
            for feedback in [false, true] {
                let run = run_arm(&scenario, &plan, feedback);
                assert_eq!(
                    run.report.records.len(),
                    scenario.queries.len(),
                    "{} feedback={feedback}: no query may be lost",
                    kind.name()
                );
            }
        }
    }
}
