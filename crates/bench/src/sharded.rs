//! Shard-parallel 2-step grouping.
//!
//! Step 1 of the heuristic partitions the tenant population into
//! homogeneous node-size buckets, and Step 2 never looks across a bucket
//! boundary — so the buckets are embarrassingly parallel shards. The core
//! exposes the partition ([`two_step_buckets`]) and the per-bucket split
//! ([`split_size_bucket`]); this module fans the splits out over
//! [`crate::parallel::par_map`] and concatenates the per-bucket groups in
//! the serial processing order (largest node size first).
//!
//! The merge is order-preserving and each shard's work is a pure function
//! of `(problem, bucket)`, so the result is **byte-identical** to
//! [`two_step_grouping_with`] at any thread count —
//! `tests/determinism.rs` pins this on seeded random problems. Within a
//! bucket the greedy grow loop is inherently sequential (every pick
//! depends on the group so far), which is why the bucket is the sharding
//! unit.

use thrifty::prelude::*;

/// Runs the 2-step heuristic with the per-size-bucket splits fanned out
/// across the deterministic thread pool. Byte-identical to
/// [`two_step_grouping_with`].
pub fn two_step_grouping_sharded(
    problem: &GroupingProblem,
    config: TwoStepConfig,
) -> GroupingSolution {
    let buckets = two_step_buckets(problem, config);
    let per_bucket = crate::parallel::par_map("two_step_shards", &buckets, |bucket| {
        split_size_bucket(problem, bucket, config)
    });
    GroupingSolution {
        groups: per_bucket.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_problem() -> GroupingProblem {
        // Deterministic but irregular: sizes cycle 2/4/8, activities tile
        // different epoch strides.
        let d = 60;
        let mut builder = GroupingProblem::builder().replication(2).sla_p(0.95);
        for i in 0..30u32 {
            let nodes = [2, 4, 8][(i % 3) as usize];
            let epochs: Vec<u32> = (0..d).filter(|e| (e + i) % (3 + i % 5) == 0).collect();
            builder = builder.tenant(
                Tenant::new(TenantId(i), nodes, f64::from(nodes) * 100.0),
                ActivityVector::from_epochs(epochs, d),
            );
        }
        builder.build().expect("consistent inputs")
    }

    #[test]
    fn sharded_matches_serial() {
        let problem = mixed_problem();
        for config in [
            TwoStepConfig::default(),
            TwoStepConfig {
                skip_size_grouping: true,
                ..TwoStepConfig::default()
            },
        ] {
            let serial = two_step_grouping_with(&problem, config);
            let sharded = two_step_grouping_sharded(&problem, config);
            assert_eq!(serial, sharded);
            sharded.validate(&problem).expect("valid partition");
        }
    }
}
