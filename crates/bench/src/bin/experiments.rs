//! CLI driver: regenerate the paper's tables and figures.

use std::process::ExitCode;
use thrifty_bench::experiments::{self, ALL_IDS, CORPUS_IDS};
use thrifty_bench::pipeline::{Harness, Scale};
use thrifty_bench::{parallel, report};

const USAGE: &str = "\
usage: experiments [--full] [--seed N] [--json] <id>... | all | list

ids: fig1.1a fig1.1b fig1.1c tab5.1 fig5.3 tab7.1
     fig7.1 fig7.2 fig7.3 fig7.4 fig7.5 fig7.6 fig7.7
     drift controller scale headline ablate

--full    run at the paper's scale (T = 5000, 30-day logs, 100 trials;
          scale: the 10k/100k/1M tenant sweep)
--seed N  workload generation seed (default 42)
--json    also write each result (tables + stage timings) to BENCH_<id>.json

THRIFTY_THREADS caps the worker threads of every parallel stage (default:
all cores; 1 reproduces the serial pipeline bit for bit).";

/// Writes the full result (tables + stage timings) to `BENCH_<id>.json` so
/// runs at different `THRIFTY_THREADS` settings can be diffed for output
/// identity and compared for speedup.
fn write_json(result: &report::ExperimentResult) -> Result<String, serde_json::Error> {
    let path = format!("BENCH_{}.json", result.id);
    let file = std::fs::File::create(&path).map_err(serde_json::Error::from)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), result)?;
    Ok(path)
}

fn main() -> ExitCode {
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut json = false;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for id in ALL_IDS.iter().chain(["headline", "ablate"].iter()) {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => {
                ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
                ids.push("headline".into());
                ids.push("ablate".into());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    ids.dedup();

    // Build the (possibly expensive) corpus harness only if needed.
    let needs_corpus = ids.iter().any(|id| CORPUS_IDS.contains(&id.as_str()));
    eprintln!(
        "# scale: {scale:?}, seed: {seed}, threads: {}{}",
        parallel::max_threads(),
        if needs_corpus {
            " — generating session library..."
        } else {
            ""
        }
    );
    let started = std::time::Instant::now();
    // Non-corpus runs (e.g. `--full scale`) get a near-free harness that
    // still carries the seed and scale — generating the full-scale session
    // library just to throw it away would dwarf the experiment itself.
    let harness = if needs_corpus {
        Harness::new(seed, scale)
    } else {
        Harness::minimal(seed, scale)
    };
    if needs_corpus {
        eprintln!("# session library ready in {:.1?}", started.elapsed());
    }

    let mut failed = false;
    for id in &ids {
        let t0 = std::time::Instant::now();
        match experiments::run(id, &harness) {
            Some(result) => {
                println!("{result}");
                for s in &result.timings {
                    eprintln!(
                        "# {id} stage {}: {} tasks on {} threads, wall {:.1?}, busy {:.1?} ({:.1}x)",
                        s.stage,
                        s.tasks,
                        s.threads,
                        s.wall,
                        s.busy,
                        s.speedup()
                    );
                }
                if json {
                    match write_json(&result) {
                        Ok(path) => eprintln!("# {id} result written to {path}"),
                        Err(e) => {
                            eprintln!("# {id} could not write JSON: {e}");
                            failed = true;
                        }
                    }
                }
                eprintln!("# {id} finished in {:.1?}\n", t0.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}\n{USAGE}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
