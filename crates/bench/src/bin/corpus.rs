//! Corpus tool: generate, save, and inspect §7.1 tenant-log corpora.
//!
//! ```text
//! corpus generate out.json [--seed N] [--tenants T] [--days D] [--trials K]
//! corpus inspect out.json
//! ```
//!
//! Generation at paper scale takes minutes; saving the corpus lets replay
//! experiments (and external tools) reuse the exact same logs.

use std::process::ExitCode;
use thrifty_workload::prelude::*;

const USAGE: &str = "\
usage: corpus generate <path> [--seed N] [--tenants T] [--days D] [--trials K]
       corpus inspect <path>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn generate(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("generate needs an output path\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut seed = 42u64;
    let mut tenants = 200usize;
    let mut days = 7u64;
    let mut trials = 12usize;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value\n{USAGE}");
            return ExitCode::FAILURE;
        };
        let parsed: Result<u64, _> = value.parse();
        let Ok(v) = parsed else {
            eprintln!("{flag} needs an integer, got {value}\n{USAGE}");
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--seed" => seed = v,
            "--tenants" => tenants = v as usize,
            "--days" => days = v,
            "--trials" => trials = v as usize,
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut config = GenerationConfig::small(seed, tenants);
    config.horizon_days = days;
    config.session_trials = trials;
    config.validate();

    eprintln!("generating {tenants} tenants over {days} days (seed {seed}) ...");
    let library = SessionLibrary::generate(&config);
    let composer = Composer::new(&config, &library);
    let log = composer.compose_all();
    eprintln!(
        "composed {} query events across {} tenants",
        log.event_count(),
        log.tenants.len()
    );
    let corpus = SavedCorpus { config, log };
    if let Err(e) = corpus.save(path) {
        eprintln!("failed to save {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("saved to {path}");
    ExitCode::SUCCESS
}

fn inspect(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("inspect needs a path\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let corpus = match SavedCorpus::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = &corpus.config;
    println!(
        "corpus: seed {}, T = {}, horizon {} days, θ = {}, scenario {:?}",
        cfg.seed, cfg.tenants, cfg.horizon_days, cfg.theta, cfg.scenario
    );
    println!("query events: {}", corpus.log.event_count());
    let per_tenant: Vec<Vec<(u64, u64)>> = corpus
        .log
        .tenants
        .iter()
        .map(TenantLog::busy_intervals)
        .collect();
    let stats = activity_stats(&per_tenant, corpus.log.horizon_ms);
    println!(
        "time-averaged active ratio: {:.2}%, peak concurrent tenants: {}",
        stats.average_active_ratio * 100.0,
        stats.max_concurrent_active
    );
    let mut by_size: std::collections::BTreeMap<u32, usize> = Default::default();
    for t in &corpus.log.tenants {
        *by_size.entry(t.spec.nodes).or_default() += 1;
    }
    println!("tenant sizes:");
    for (nodes, count) in by_size {
        println!("  {nodes:>3}-node: {count}");
    }
    ExitCode::SUCCESS
}
