//! Seeded fault-injection fuzz driver.
//!
//! Runs the randomized cluster- and service-level schedules of
//! [`thrifty_bench::fuzz`] over a seed range and fails (exit code 1) if any
//! invariant breaks. CI runs a fixed bounded seed set so regressions in the
//! failure model fail PRs:
//!
//! ```text
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --seeds 50
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --start 1000 --seeds 200
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --seeds 16 --threads 4
//! ```
//!
//! `--daemon` switches to the real-time harness mode: each seed's
//! schedule is replayed both through direct library dispatch and through
//! a spawned `thriftyd --sim-clock` over its unix socket, and every
//! answer must be byte-identical (see [`thrifty_bench::daemon_fuzz`]).
//! Requires a built `thriftyd` binary (`$THRIFTYD_BIN` or a sibling of
//! this executable):
//!
//! ```text
//! cargo build --release -p thrifty-daemon
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --daemon --seeds 8
//! ```

use std::process::ExitCode;
use thrifty_bench::{daemon_fuzz, fuzz, parallel};

fn usage() -> ! {
    eprintln!(
        "usage: fault_fuzz [--daemon] [--seeds N] [--start S] [--threads T]\n\
         \n\
         --daemon     replay each schedule through a spawned thriftyd and\n\
         \x20            byte-compare against direct library dispatch\n\
         --seeds N    number of consecutive seeds to run (default 50)\n\
         --start S    first seed of the range (default 0)\n\
         --threads T  worker threads for the seed sweep (default: auto)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut daemon = false;
    let mut seeds: Option<u64> = None;
    let mut start = 0u64;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--daemon" => daemon = true,
            "--seeds" => match value("--seeds").parse() {
                Ok(n) => seeds = Some(n),
                Err(_) => usage(),
            },
            "--start" => match value("--start").parse() {
                Ok(s) => start = s,
                Err(_) => usage(),
            },
            "--threads" => match value("--threads").parse() {
                Ok(t) => threads = Some(t),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    // Daemon mode spawns one thriftyd process per seed, so its default
    // sweep is smaller than the in-process one.
    let seeds = seeds.unwrap_or(if daemon { 8 } else { 50 });

    let bin = if daemon {
        match daemon_fuzz::find_thriftyd() {
            Some(bin) => Some(bin),
            None => {
                eprintln!(
                    "fault-fuzz: --daemon needs a built thriftyd binary \
                     (cargo build --release -p thrifty-daemon, or set THRIFTYD_BIN)"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    parallel::set_thread_override(threads);
    let t0 = std::time::Instant::now();
    let failures = match &bin {
        Some(bin) => daemon_fuzz::run_daemon_seed_range(start, seeds, bin),
        None => fuzz::run_seed_range(start, seeds),
    };
    let elapsed = t0.elapsed();
    parallel::set_thread_override(None);

    let mode = if daemon {
        "daemon byte-equivalence"
    } else {
        "every invariant"
    };
    if failures.is_empty() {
        println!(
            "fault-fuzz: {seeds} seeds ({start}..{}) passed {mode} in {:.2?}",
            start + seeds,
            elapsed
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        eprintln!(
            "fault-fuzz: {} violations across {seeds} seeds ({:.2?})",
            failures.len(),
            elapsed
        );
        ExitCode::FAILURE
    }
}
