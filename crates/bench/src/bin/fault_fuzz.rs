//! Seeded fault-injection fuzz driver.
//!
//! Runs the randomized cluster- and service-level schedules of
//! [`thrifty_bench::fuzz`] over a seed range and fails (exit code 1) if any
//! invariant breaks. CI runs a fixed bounded seed set so regressions in the
//! failure model fail PRs:
//!
//! ```text
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --seeds 50
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --start 1000 --seeds 200
//! cargo run --release -p thrifty-bench --bin fault_fuzz -- --seeds 16 --threads 4
//! ```

use std::process::ExitCode;
use thrifty_bench::{fuzz, parallel};

fn usage() -> ! {
    eprintln!(
        "usage: fault_fuzz [--seeds N] [--start S] [--threads T]\n\
         \n\
         --seeds N    number of consecutive seeds to run (default 50)\n\
         --start S    first seed of the range (default 0)\n\
         --threads T  worker threads for the seed sweep (default: auto)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut seeds = 50u64;
    let mut start = 0u64;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => match value("--seeds").parse() {
                Ok(n) => seeds = n,
                Err(_) => usage(),
            },
            "--start" => match value("--start").parse() {
                Ok(s) => start = s,
                Err(_) => usage(),
            },
            "--threads" => match value("--threads").parse() {
                Ok(t) => threads = Some(t),
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    parallel::set_thread_override(threads);
    let t0 = std::time::Instant::now();
    let failures = fuzz::run_seed_range(start, seeds);
    let elapsed = t0.elapsed();
    parallel::set_thread_override(None);

    if failures.is_empty() {
        println!(
            "fault-fuzz: {seeds} seeds ({start}..{}) passed every invariant in {:.2?}",
            start + seeds,
            elapsed
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        eprintln!(
            "fault-fuzz: {} invariant violations across {seeds} seeds ({:.2?})",
            failures.len(),
            elapsed
        );
        ExitCode::FAILURE
    }
}
