//! Daemon-mode lifecycle fuzz: the same seeded schedule, executed twice.
//!
//! [`fuzz_daemon`] generates one deterministic request schedule (time,
//! queries, registrations, deregistrations, cycles, node failures) and
//! runs it through
//!
//! 1. a **direct** in-process [`DaemonCore`] on a `SimClock` — plain
//!    library dispatch, no transport; and
//! 2. a **spawned `thriftyd --sim-clock` process** over its unix socket,
//!    the real daemon binary end to end;
//!
//! then asserts every answer envelope — success or structured error —
//! and the final service report are **byte-identical** across the two
//! paths. Under a simulated clock the only way time moves is an explicit
//! `Advance`/`Quiesce` request, so a request sequence is a complete
//! schedule and the daemon's socket/server layer must add exactly
//! nothing to the outcome.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::path::PathBuf;
use thrifty::clock::SimClock;
use thrifty_daemon::client::DaemonClient;
use thrifty_daemon::config::{DaemonConfig, TenantSection};
use thrifty_daemon::protocol::{encode_line, Request};
use thrifty_daemon::runtime::DaemonCore;

/// Steps per daemon-fuzz schedule (each step is one request).
const STEPS: u32 = 40;

/// Deterministic digest of one daemon-vs-direct schedule.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DaemonFuzzOutcome {
    /// The driving seed.
    pub seed: u64,
    /// Requests issued (shutdown handshake excluded).
    pub requests: usize,
    /// Requests answered with an error envelope (identically on both
    /// paths — clean rejections are part of the contract).
    pub errors: u64,
    /// The final service report both paths produced, serialized.
    pub report_json: String,
}

/// The daemon config every fuzzed pair runs: the stock example with
/// manual re-consolidation cadence (cycles happen via explicit `Cycle`
/// requests, mirroring the lifecycle fuzz) and seed-varied data sizes.
fn fuzz_config(seed: u64) -> DaemonConfig {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7A63_0F11_9C02_55B7);
    let mut cfg = DaemonConfig::example();
    cfg.reconsolidation.auto = false;
    for group in &mut cfg.groups {
        for member in &mut group.members {
            member.data_gb = rng.gen_range(40.0..250.0);
        }
    }
    cfg
}

/// Generates the seeded request schedule. Tenant liveness is tracked
/// locally and approximately — a request that the service refuses is
/// still a valid schedule entry, because both executors must refuse it
/// with the identical envelope.
fn schedule(seed: u64, cfg: &DaemonConfig) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51D6_E2C4_0B9A_73F5);
    let mut live: Vec<u32> = cfg
        .groups
        .iter()
        .flat_map(|g| g.members.iter().map(|m| m.id))
        .collect();
    let mut next_tenant = 500u32;
    let mut requests = Vec::with_capacity(STEPS as usize + 2);
    for _ in 0..STEPS {
        let roll = rng.gen_range(0u32..100);
        if roll < 30 {
            let ms = rng.gen_range(60_000u64..1_200_000);
            requests.push(if roll < 15 {
                Request::Advance { ms }
            } else {
                Request::Quiesce { ms }
            });
        } else if roll < 60 {
            let tenant = live[rng.gen_range(0..live.len())];
            requests.push(Request::Submit {
                tenant,
                template: 2,
                data_gb: rng.gen_range(20.0..200.0),
                nodes: 2,
            });
        } else if roll < 72 {
            requests.push(Request::Register(TenantSection {
                id: next_tenant,
                nodes: 2,
                data_gb: rng.gen_range(20.0..200.0),
            }));
            live.push(next_tenant);
            next_tenant += 1;
        } else if roll < 82 {
            if live.len() > 2 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                requests.push(Request::Deregister { id: victim });
            }
        } else if roll < 90 {
            requests.push(Request::InjectFailure {
                node: rng.gen_range(0u32..cfg.cluster.total_nodes as u32),
            });
        } else if roll < 95 {
            requests.push(Request::Cycle);
        } else {
            requests.push(if roll % 2 == 0 {
                Request::Status
            } else {
                Request::CutoverStatus
            });
        }
    }
    // Settle in-flight work so the final report is a quiescent one, then
    // fetch it — the byte-compared artifact.
    requests.push(Request::Quiesce { ms: 2 * 3_600_000 });
    requests.push(Request::Report);
    requests
}

/// Executes the schedule on an in-process [`DaemonCore`] (the direct
/// library path), returning one canonical envelope line per request.
fn run_direct(cfg: &DaemonConfig, requests: &[Request], seed: u64) -> Result<Vec<String>, String> {
    let mut core = DaemonCore::from_config(cfg.clone(), None, Box::new(SimClock::default()))
        .map_err(|e| format!("seed {seed}: direct deploy failed: {e}"))?;
    let mut lines = Vec::with_capacity(requests.len());
    for (step, req) in requests.iter().enumerate() {
        let envelope = core.handle(req);
        lines.push(
            encode_line(&envelope)
                .map_err(|e| format!("seed {seed} step {step}: direct encode: {e}"))?,
        );
    }
    Ok(lines)
}

/// Executes the schedule against a spawned `thriftyd --sim-clock` over
/// its socket, returning one canonical envelope line per request. The
/// daemon is stopped (drained) afterwards and must exit 0.
fn run_via_daemon(
    cfg: &DaemonConfig,
    requests: &[Request],
    seed: u64,
    bin: &PathBuf,
) -> Result<Vec<String>, String> {
    let dir = std::env::temp_dir().join(format!("thriftyd-fuzz-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("seed {seed}: tmp dir: {e}"))?;
    let config_path = dir.join("thriftyd.json");
    let socket = dir.join("thriftyd.sock");
    let text = serde_json::to_string_pretty(cfg)
        .map_err(|e| format!("seed {seed}: config encode: {e}"))?;
    std::fs::write(&config_path, text).map_err(|e| format!("seed {seed}: config write: {e}"))?;

    let mut child = std::process::Command::new(bin)
        .arg("start")
        .arg("--config")
        .arg(&config_path)
        .arg("--socket")
        .arg(&socket)
        .arg("--sim-clock")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn() // lint: allow(thread-spawn) — a child *process* (the daemon under test), joined below; no in-process threading.
        .map_err(|e| format!("seed {seed}: spawn {}: {e}", bin.display()))?;

    let outcome = (|| {
        let mut client = DaemonClient::connect_with_retry(&socket, 200, 25)
            .map_err(|e| format!("seed {seed}: daemon never came up: {e}"))?;
        let mut lines = Vec::with_capacity(requests.len());
        for (step, req) in requests.iter().enumerate() {
            let envelope = client
                .request_envelope(req)
                .map_err(|e| format!("seed {seed} step {step}: socket round trip: {e}"))?;
            lines.push(
                encode_line(&envelope)
                    .map_err(|e| format!("seed {seed} step {step}: daemon encode: {e}"))?,
            );
        }
        client
            .stop()
            .map_err(|e| format!("seed {seed}: stop failed: {e}"))?;
        Ok(lines)
    })();

    let status = match outcome {
        Ok(_) => child
            .wait()
            .map_err(|e| format!("seed {seed}: wait failed: {e}"))?,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_dir_all(&dir);
            return Err(e);
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    if !status.success() {
        return Err(format!(
            "seed {seed}: daemon exit status {status:?} after a clean stop"
        ));
    }
    outcome
}

/// Locates the `thriftyd` binary: `$THRIFTYD_BIN` wins, then siblings of
/// the current executable (`target/<profile>/thriftyd`, also found from
/// a test binary in `target/<profile>/deps/`).
pub fn find_thriftyd() -> Option<PathBuf> {
    if let Some(p) = std::env::var_os("THRIFTYD_BIN") {
        let p = PathBuf::from(p);
        return p.exists().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join("thriftyd"))
        .find(|cand| cand.exists())
}

/// Runs one seeded schedule through both paths and byte-compares every
/// envelope.
///
/// # Errors
/// A human-readable description of the first divergence or failure.
pub fn fuzz_daemon(seed: u64, bin: &PathBuf) -> Result<DaemonFuzzOutcome, String> {
    let cfg = fuzz_config(seed);
    let requests = schedule(seed, &cfg);
    let direct = run_direct(&cfg, &requests, seed)?;
    let daemon = run_via_daemon(&cfg, &requests, seed, bin)?;
    if direct.len() != daemon.len() {
        return Err(format!(
            "seed {seed}: {} direct answers vs {} daemon answers",
            direct.len(),
            daemon.len()
        ));
    }
    for (step, (d, s)) in direct.iter().zip(daemon.iter()).enumerate() {
        if d != s {
            return Err(format!(
                "seed {seed} step {step}: paths diverged on {:?}\n  direct: {d}\n  daemon: {s}",
                requests[step]
            ));
        }
    }
    let errors = direct
        .iter()
        .filter(|line| line.starts_with("{\"ok\":false"))
        .count() as u64;
    let report_json = direct
        .last()
        .and_then(|line| {
            line.split_once("\"json\":")
                .map(|(_, tail)| tail.to_string())
        })
        .unwrap_or_default();
    Ok(DaemonFuzzOutcome {
        seed,
        requests: requests.len(),
        errors,
        report_json,
    })
}

/// Runs [`fuzz_daemon`] for every seed in `start..start + count`,
/// returning the failure messages (empty = pass). Seeds run through
/// [`par_map`](crate::parallel::par_map) — each schedule gets its own
/// daemon process, socket, and temp dir, so they are independent.
pub fn run_daemon_seed_range(start: u64, count: u64, bin: &PathBuf) -> Vec<String> {
    let seeds: Vec<u64> = (start..start + count).collect();
    let results = crate::parallel::par_map("fuzz:daemon-seeds", &seeds, |&seed| {
        fuzz_daemon(seed, bin).err()
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schedule_is_deterministic_and_covers_the_lifecycle() {
        let cfg = fuzz_config(9);
        let a = schedule(9, &cfg);
        let b = schedule(9, &cfg);
        assert_eq!(a, b);
        assert!(a.iter().any(|r| matches!(r, Request::Submit { .. })));
        assert!(a.iter().any(|r| matches!(r, Request::Register(_))));
        assert!(a
            .iter()
            .any(|r| matches!(r, Request::Advance { .. } | Request::Quiesce { .. })));
        assert!(matches!(a.last(), Some(Request::Report)));
    }

    #[test]
    fn the_direct_path_is_deterministic_per_seed() {
        let cfg = fuzz_config(4);
        let requests = schedule(4, &cfg);
        let a = run_direct(&cfg, &requests, 4).unwrap();
        let b = run_direct(&cfg, &requests, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn daemon_and_direct_paths_are_byte_identical() {
        // Needs the thriftyd binary; `cargo test -p thrifty-bench` alone
        // does not build sibling-crate binaries, so skip (CI's fault-fuzz
        // job builds thriftyd first and runs `fault_fuzz --daemon`).
        let Some(bin) = find_thriftyd() else {
            eprintln!("skipping: thriftyd binary not built (set THRIFTYD_BIN)");
            return;
        };
        let outcome = fuzz_daemon(2, &bin).unwrap();
        assert!(outcome.requests > STEPS as usize / 2);
        assert!(!outcome.report_json.is_empty());
    }
}
