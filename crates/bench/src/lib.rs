//! # thrifty-bench — experiment harness for the Thrifty reproduction
//!
//! Regenerates every table and figure of *Parallel Analytics as a Service*
//! (SIGMOD 2013). Run via the `experiments` binary:
//!
//! ```text
//! cargo run --release -p thrifty-bench --bin experiments -- all
//! cargo run --release -p thrifty-bench --bin experiments -- fig7.1 fig7.4
//! cargo run --release -p thrifty-bench --bin experiments -- --full headline
//! cargo run --release -p thrifty-bench --bin experiments -- --seed 7 fig7.6
//! ```
//!
//! The default scale is reduced (fast; same statistical structure); `--full`
//! switches to the paper's Table 7.1 scale. See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded paper-vs-measured
//! results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon_fuzz;
pub mod experiments;
pub mod fuzz;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod sharded;
