//! The shared experiment pipeline: workload generation → activity histories
//! → grouping → consolidation reports.
//!
//! Experiments differ only in which Table 7.1 knob they sweep; everything
//! else (the Step-1 session library, the tenant→history conversion, the
//! FFD-vs-2-step comparison) is shared here. The session library depends
//! only on the session parameters — not on `T`, `θ`, `R`, `P`, epoch size,
//! or the activity scenario — so one library serves a whole sweep.

use thrifty::prelude::*;
use thrifty_workload::prelude::*;

/// Harness scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale: fast enough to regenerate every figure in minutes.
    /// Fewer tenants, 7-day horizon, 12 session trials per pool. The
    /// statistical structure of §7.1 is unchanged.
    Small,
    /// The paper's scale (Table 7.1 defaults: T = 5000, 30-day horizon,
    /// 100 trials). Expect the full sweep suite to take hours.
    Full,
}

impl Scale {
    /// Default tenant count at this scale.
    pub fn default_tenants(self) -> usize {
        match self {
            Scale::Small => 400,
            Scale::Full => 5000,
        }
    }

    /// Tenant counts for the Figure 7.2 sweep.
    pub fn tenant_sweep(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![100, 400, 1000],
            Scale::Full => vec![1000, 5000, 10000],
        }
    }

    /// The base generation config at this scale.
    pub fn base_config(self, seed: u64) -> GenerationConfig {
        match self {
            Scale::Small => GenerationConfig::small(seed, self.default_tenants()),
            Scale::Full => GenerationConfig::paper_default(seed),
        }
    }
}

/// The shared pipeline state: one session library reused across sweeps.
pub struct Harness {
    base: GenerationConfig,
    library: SessionLibrary,
    scale: Scale,
}

/// One tenant's consolidated inputs: core tenant + merged busy intervals.
pub type History = TenantHistory;

impl Harness {
    /// Builds the harness (runs Step 1 of the log generation once).
    pub fn new(seed: u64, scale: Scale) -> Self {
        Harness::with_scale(scale.base_config(seed), scale)
    }

    /// Builds a harness from an explicit configuration (used by tests and
    /// custom runs); treated as [`Scale::Small`] for sweep ranges.
    pub fn from_config(cfg: GenerationConfig) -> Self {
        Harness::with_scale(cfg, Scale::Small)
    }

    /// Builds a near-free harness that still carries `seed` and `scale`
    /// for experiments that never touch the corpus (e.g. the `scale`
    /// sweep, which synthesizes its own histories). The session library
    /// is generated from a one-tenant, one-trial config, so constructing
    /// this at [`Scale::Full`] costs milliseconds, not hours.
    pub fn minimal(seed: u64, scale: Scale) -> Self {
        let mut tiny = GenerationConfig::small(seed, 1);
        tiny.session_trials = 1;
        let library = SessionLibrary::generate(&tiny);
        // Keep the *reported* base config at the requested scale so
        // `base_config().seed` and sweep ranges stay truthful; corpus
        // generation is what `CORPUS_IDS` gates on, not this struct.
        let mut base = scale.base_config(seed);
        base.session_trials = tiny.session_trials;
        base.parallelism_levels = tiny.parallelism_levels.clone();
        Harness {
            base,
            library,
            scale,
        }
    }

    fn with_scale(base: GenerationConfig, scale: Scale) -> Self {
        let library = SessionLibrary::generate(&base);
        Harness {
            base,
            library,
            scale,
        }
    }

    /// The harness scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The base generation config.
    pub fn base_config(&self) -> &GenerationConfig {
        &self.base
    }

    /// Generates tenant histories under a modified configuration.
    /// The modification must not touch the Step-1 session parameters
    /// (`session_trials`, `session_hours`, user model, parallelism levels);
    /// those are baked into the shared library.
    pub fn histories(&self, mutate: impl FnOnce(&mut GenerationConfig)) -> CorpusView {
        let mut cfg = self.base.clone();
        mutate(&mut cfg);
        assert_eq!(
            cfg.parallelism_levels, self.base.parallelism_levels,
            "parallelism levels are baked into the session library"
        );
        assert_eq!(
            cfg.session_trials, self.base.session_trials,
            "session trials are baked into the session library"
        );
        let composer = Composer::new(&cfg, &self.library);
        let specs = composer.tenant_specs();
        // Per-tenant composition is the pipeline's hot loop; every tenant's
        // intervals derive from its own seeded stream, so the fan-out is
        // order-independent (see crate::parallel's determinism contract).
        let histories: Vec<History> = crate::parallel::par_map("histories", &specs, |s| {
            TenantHistory::new(
                Tenant::new(s.id, s.nodes, s.data_gb),
                composer.busy_intervals(s),
            )
        });
        CorpusView {
            horizon_ms: cfg.horizon_ms(),
            cfg,
            specs,
            histories,
        }
    }

    /// Histories under the base configuration.
    pub fn default_histories(&self) -> CorpusView {
        self.histories(|_| {})
    }

    /// The shared session library (for experiments that replay full logs).
    pub fn library(&self) -> &SessionLibrary {
        &self.library
    }
}

/// A generated corpus: specs, histories, and the config that produced them.
pub struct CorpusView {
    /// The effective generation config.
    pub cfg: GenerationConfig,
    /// Workload-level tenant specs (benchmark flavour, time zone, ...).
    pub specs: Vec<TenantSpec>,
    /// Core-level histories fed to the Deployment Advisor.
    pub histories: Vec<History>,
    /// Horizon of the histories in ms.
    pub horizon_ms: u64,
}

impl CorpusView {
    /// The corpus's time-averaged active-tenant ratio.
    pub fn average_active_ratio(&self) -> f64 {
        self.stats().average_active_ratio
    }

    /// Full corpus activity statistics (time-averaged ratio plus the peak
    /// number of concurrently active tenants).
    pub fn stats(&self) -> ActivityStats {
        let per_tenant: Vec<Vec<(u64, u64)>> =
            self.histories.iter().map(|h| h.intervals.clone()).collect();
        activity_stats(&per_tenant, self.horizon_ms)
    }
}

/// The FFD-vs-2-step comparison at one sweep point.
pub struct ComparisonPoint {
    /// Sweep label (e.g. `"10s"` for an epoch-size point).
    pub label: String,
    /// FFD baseline report.
    pub ffd: ConsolidationReport,
    /// 2-step heuristic report.
    pub two_step: ConsolidationReport,
}

/// Runs both grouping algorithms on a corpus at the given epoch size /
/// replication / SLA setting.
pub fn compare_algorithms(
    corpus: &CorpusView,
    label: impl Into<String>,
    epoch_ms: u64,
    replication: u32,
    sla_p: f64,
) -> ComparisonPoint {
    let mk = |algorithm| AdvisorConfig {
        replication,
        sla_p,
        epoch: EpochConfig::new(epoch_ms, corpus.horizon_ms),
        algorithm,
        exclusion: ExclusionPolicy::default(),
    };
    let (ffd, two_step) = crate::parallel::par_join2(
        "compare_algorithms",
        || {
            // The advisor is clock-free (core stays deterministic); wall
            // time is measured here, in the harness.
            let started = std::time::Instant::now();
            let mut report = DeploymentAdvisor::new(mk(GroupingAlgorithm::Ffd))
                .advise(&corpus.histories)
                .report;
            report.runtime = started.elapsed();
            report
        },
        || {
            let started = std::time::Instant::now();
            let mut report = DeploymentAdvisor::new(mk(GroupingAlgorithm::TwoStep))
                .advise(&corpus.histories)
                .report;
            report.runtime = started.elapsed();
            report
        },
    );
    ComparisonPoint {
        label: label.into(),
        ffd,
        two_step,
    }
}

/// Table 7.1 defaults used by every sweep unless it varies that knob.
pub mod defaults {
    /// Default epoch size (10 s).
    pub const EPOCH_MS: u64 = 10_000;
    /// Default replication factor.
    pub const REPLICATION: u32 = 3;
    /// Default performance SLA guarantee.
    pub const SLA_P: f64 = 0.999;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        let mut base = GenerationConfig::small(5, 60);
        base.parallelism_levels = vec![2, 4];
        base.session_trials = 4;
        let library = SessionLibrary::generate(&base);
        Harness {
            base,
            library,
            scale: Scale::Small,
        }
    }

    #[test]
    fn histories_match_specs() {
        let h = tiny_harness();
        let corpus = h.default_histories();
        assert_eq!(corpus.specs.len(), 60);
        assert_eq!(corpus.histories.len(), 60);
        for (spec, h) in corpus.specs.iter().zip(&corpus.histories) {
            assert_eq!(spec.id, h.tenant.id);
            assert_eq!(spec.nodes, h.tenant.nodes);
            assert!(!h.intervals.is_empty(), "every tenant has some activity");
        }
        let ratio = corpus.average_active_ratio();
        assert!((0.004..0.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn comparison_point_runs_both_algorithms() {
        let h = tiny_harness();
        let corpus = h.default_histories();
        let point = compare_algorithms(&corpus, "x", defaults::EPOCH_MS, 2, 0.99);
        assert_eq!(point.ffd.algorithm, "FFD");
        assert_eq!(point.two_step.algorithm, "2-step");
        assert!(point.two_step.effectiveness > 0.0);
        // The central claim: the 2-step heuristic never saves fewer nodes
        // than FFD on realistic corpora (Chapter 7: 3.6–11.1 pp better).
        assert!(point.two_step.nodes_used <= point.ffd.nodes_used);
    }

    #[test]
    fn sweep_mutation_changes_the_corpus() {
        let h = tiny_harness();
        let a = h.histories(|c| c.theta = 0.1);
        let b = h.histories(|c| c.theta = 0.99);
        let small_a = a.histories.iter().filter(|h| h.tenant.nodes == 2).count();
        let small_b = b.histories.iter().filter(|h| h.tenant.nodes == 2).count();
        assert!(small_b > small_a, "higher skew -> more small tenants");
    }

    #[test]
    #[should_panic(expected = "baked into")]
    fn library_invariants_are_enforced() {
        let h = tiny_harness();
        let _ = h.histories(|c| c.session_trials = 99);
    }
}
