//! Online re-consolidation (Chapter 5.1): periodic re-grouping of the
//! live tenant population with zero-downtime cutover.
//!
//! The paper's consolidation cycle makes Thrifty a *living* service: the
//! Tenant Activity Monitor's observed ratios — not the day-one estimates —
//! feed the next [`DeploymentAdvisor`] run, together with tenants that
//! arrived or departed since the last cycle and the re-consolidation list
//! of groups that went through elastic scaling. The resulting deployment
//! is diffed against the one currently serving:
//!
//! * groups whose member set, replication, and node size are unchanged are
//!   **kept** in place (no data moves);
//! * every other planned group becomes a **build**: its MPPDBs are
//!   provisioned from the free pool and every member is bulk-loaded onto
//!   every replica with the Table 5.1 delays, *while the old deployment
//!   keeps serving*;
//! * once a build is fully loaded, routing **cuts over** atomically for
//!   its tenants — queries in flight finish on their old instances, new
//!   submissions go to the new group, and SLA accounting never pauses;
//! * when the last build lands, superseded groups **retire**: their stale
//!   replicas are dropped via `Cluster::drop_tenant` and their instances
//!   decommission as soon as the last in-flight query drains, returning
//!   the freed nodes to the pool.
//!
//! # Feedback control
//!
//! A fixed cadence with a fixed lookback over-reacts to bursts and
//! under-reacts to drift — the failure mode Tempo-style self-tuning
//! resource managers address with feedback control. [`Reconsolidator`]
//! therefore runs as a closed loop, parameterized by
//! [`ControllerConfig`]:
//!
//! * **Error signal** — at every due evaluation the controller compares
//!   what the last plan *predicted* (normalized response times ≈ 1.0,
//!   compliance and per-group RT-TTP ≥ the advisor's `sla_p`) against
//!   what the service *observed* since the previous evaluation
//!   ([`ThriftyService::records`] / [`SlaSummary`] and the live groups'
//!   RT-TTP). The error is the worst relative shortfall, clamped to
//!   `[0, 1]`.
//! * **Adaptation law** — error at or above `error_high` halves both the
//!   cycle period and the observation window (react faster, plan from
//!   recent behaviour); a no-op plan with error at or below `error_low`
//!   grows both by 3/2 toward their ceilings (the workload is stable, so
//!   back off). Both stay clamped to their configured `[min, max]`.
//! * **Churn bounds** — `max_builds_per_cycle` caps the concurrent group
//!   builds a single cycle may start, and `hysteresis_cycles` requires a
//!   tenant to misfit its serving group — with the *same* proposed
//!   placement — for `K` consecutive evaluations before it is moved,
//!   preventing ping-pong when the workload oscillates at the planner's
//!   observation boundary. Deferral operates on whole *components* of
//!   the rebuild graph (builds plus the groups they retire), so every
//!   bounded plan is still a valid [`CyclePlan`]. Components that place
//!   parked registrations are mandatory: newcomers never wait out the
//!   hysteresis.
//!
//! [`Reconsolidator::new`] preserves the historical fixed-period
//! behaviour (a degenerate controller with `min == max` and no bounds);
//! [`Reconsolidator::with_controller`] enables the feedback loop.
//!
//! Embed the driver in a replay loop and call
//! [`Reconsolidator::maybe_cycle`] as log time advances. Planning is pure
//! ([`Reconsolidator::plan`]), so tests and benches can inspect or
//! hand-craft a [`CyclePlan`] and feed it straight to
//! [`ThriftyService::begin_reconsolidation`].

use crate::advisor::{AdvisorConfig, DeploymentAdvisor};
use crate::error::ThriftyResult;
use crate::service::ThriftyService;
use crate::sla::SlaSummary;
use crate::tenant::{Tenant, TenantId};
use mppdb_sim::error::SimError;
use std::collections::{BTreeMap, BTreeSet};

/// One replacement tenant-group a cycle will build: the members to load,
/// the replication factor `A`, and the per-MPPDB node size `n_1`.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedGroup {
    /// The tenants the group will serve (each replicated on all MPPDBs).
    pub members: Vec<Tenant>,
    /// Replicas to provision (the group's availability factor `A`).
    pub replication: u32,
    /// Nodes per MPPDB (sized for the group's largest member).
    pub node_size: u32,
}

impl PlannedGroup {
    /// Nodes this build will draw from the free pool.
    pub fn nodes_needed(&self) -> usize {
        (self.replication as usize) * (self.node_size as usize)
    }
}

/// The diff between the serving deployment and the advisor's new one: the
/// groups to build, the current group indices to keep serving unchanged,
/// and the current group indices to retire after cutover.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CyclePlan {
    /// Replacement groups to provision and bulk load.
    pub builds: Vec<PlannedGroup>,
    /// Current groups kept in place (member set, `A`, and node size all
    /// unchanged) — their data never moves.
    pub keep: Vec<usize>,
    /// Current groups superseded by the builds; retired after the last
    /// cutover.
    pub retire: Vec<usize>,
}

impl CyclePlan {
    /// Whether the cycle would change nothing (every group kept).
    pub fn is_noop(&self) -> bool {
        self.builds.is_empty() && self.retire.is_empty()
    }

    /// Peak extra nodes the cycle needs while old and new deployments
    /// coexist.
    pub fn nodes_needed(&self) -> usize {
        self.builds.iter().map(PlannedGroup::nodes_needed).sum()
    }
}

/// Knobs of the re-consolidation feedback loop (see the module docs for
/// the adaptation law). All bounds are inclusive; the constructor
/// sanitizes inverted ranges instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerConfig {
    /// Cycle period at deployment.
    pub initial_interval_ms: u64,
    /// Floor the period shrinks toward under high error.
    pub min_interval_ms: u64,
    /// Ceiling the period grows toward while plans are no-ops.
    pub max_interval_ms: u64,
    /// Observation window at deployment. `0` means "the service's full
    /// monitoring window" (the historical fixed-lookback behaviour); a
    /// window stuck at `0` never adapts.
    pub initial_window_ms: u64,
    /// Floor of the observation window.
    pub min_window_ms: u64,
    /// Ceiling of the observation window.
    pub max_window_ms: u64,
    /// Error at or above this shrinks period and window.
    pub error_high: f64,
    /// Error at or below this (on a no-op plan) grows period and window.
    pub error_low: f64,
    /// Maximum concurrent group builds one cycle may start; components
    /// placing parked registrations are exempt, and a single indivisible
    /// component larger than the cap may run alone in its own cycle
    /// (otherwise it would starve forever). `usize::MAX` disables the cap.
    pub max_builds_per_cycle: usize,
    /// Consecutive evaluations a tenant must misfit its group — with the
    /// same proposed placement — before a cycle may move it. `0` or `1`
    /// disables the hysteresis.
    pub hysteresis_cycles: u32,
    /// Escape valve: after this many consecutive misfit evaluations a
    /// tenant's component is released even though its proposed placement
    /// kept shifting (a too-narrow window over a long-period pattern
    /// rotates the proposal forever; serving a persistent misfit with the
    /// newest proposal beats freezing). It only fires while the measured
    /// error exceeds `error_low` — a deferred misfit that is not hurting
    /// the SLA stays deferred. `0` disables the escape; values below
    /// `hysteresis_cycles` are raised to it.
    pub force_after: u32,
}

impl ControllerConfig {
    /// A degenerate controller reproducing the historical fixed-period,
    /// fixed-lookback driver: no adaptation, no churn bounds.
    pub fn fixed(interval_ms: u64) -> Self {
        let interval_ms = interval_ms.max(1);
        ControllerConfig {
            initial_interval_ms: interval_ms,
            min_interval_ms: interval_ms,
            max_interval_ms: interval_ms,
            initial_window_ms: 0,
            min_window_ms: 0,
            max_window_ms: 0,
            error_high: f64::INFINITY,
            error_low: 0.0,
            max_builds_per_cycle: usize::MAX,
            hysteresis_cycles: 0,
            force_after: 0,
        }
    }

    /// Clamps inverted or zero ranges into a usable shape.
    fn sanitized(mut self) -> Self {
        self.min_interval_ms = self.min_interval_ms.max(1);
        self.max_interval_ms = self.max_interval_ms.max(self.min_interval_ms);
        self.initial_interval_ms = self
            .initial_interval_ms
            .clamp(self.min_interval_ms, self.max_interval_ms);
        self.max_window_ms = self.max_window_ms.max(self.min_window_ms);
        if self.initial_window_ms != 0 {
            self.min_window_ms = self.min_window_ms.max(1);
            self.max_window_ms = self.max_window_ms.max(self.min_window_ms);
            self.initial_window_ms = self
                .initial_window_ms
                .clamp(self.min_window_ms, self.max_window_ms);
        }
        if self.error_high.is_nan() || self.error_high <= 0.0 {
            // NaN and non-positive thresholds both disable shrinking.
            self.error_high = f64::INFINITY;
        }
        self.error_low = self.error_low.clamp(0.0, self.error_high);
        if self.force_after > 0 {
            self.force_after = self.force_after.max(self.hysteresis_cycles);
        }
        self
    }
}

impl Default for ControllerConfig {
    /// Feedback defaults: a 2 h period in `[30 min, 8 h]`, a 4 h window
    /// in `[1 h, 24 h]`, shrink at 2% shortfall, grow below 0.2%, at most
    /// 4 builds per cycle, and 2-cycle hysteresis.
    fn default() -> Self {
        ControllerConfig {
            initial_interval_ms: 2 * 3_600_000,
            min_interval_ms: 30 * 60_000,
            max_interval_ms: 8 * 3_600_000,
            initial_window_ms: 4 * 3_600_000,
            min_window_ms: 3_600_000,
            max_window_ms: 24 * 3_600_000,
            error_high: 0.02,
            error_low: 0.002,
            max_builds_per_cycle: 4,
            hysteresis_cycles: 2,
            force_after: 4,
        }
    }
}

/// A churn-bounded plan plus what the bounds held back.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BoundedPlan {
    /// The plan after hysteresis and the build cap.
    pub plan: CyclePlan,
    /// Tenant moves deferred by the hysteresis this evaluation.
    pub deferred_moves: u64,
    /// Builds deferred by `max_builds_per_cycle` this evaluation.
    pub capped_builds: u64,
}

/// Per-cause skip counters of one driver (satellite of the old conflated
/// `cycles_skipped`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipCounts {
    /// Previous cycle still executing or registrations still loading.
    pub busy: u64,
    /// The advisor's plan changed nothing.
    pub noop: u64,
    /// The free pool could not double-run the rebuilt groups.
    pub insufficient_nodes: u64,
    /// Every proposed change was held back by the churn bounds.
    pub deferred: u64,
}

impl SkipCounts {
    /// Skips across all causes.
    pub fn total(&self) -> u64 {
        self.busy + self.noop + self.insufficient_nodes + self.deferred
    }
}

/// One tenant's misfit state across consecutive evaluations.
#[derive(Clone, Copy, Debug, Default)]
struct Misfit {
    /// Signature of the most recent proposed placement.
    sig: u64,
    /// Consecutive evaluations proposing that same placement.
    streak: u32,
    /// Consecutive misfit evaluations regardless of placement.
    total: u32,
}

/// Per-tenant misfit streaks.
type MisfitStreaks = BTreeMap<TenantId, Misfit>;

/// Periodic re-consolidation driver with a feedback-controlled cadence.
///
/// Owns the cycle cadence and the advisor configuration; the observation
/// horizon of [`AdvisorConfig::epoch`] is overridden per cycle with the
/// controller's current observation window (clamped to the service's
/// monitoring window and uptime), so the configured horizon only seeds
/// the initial (pre-deployment) design.
#[derive(Clone, Debug)]
pub struct Reconsolidator {
    advisor: AdvisorConfig,
    controller: ControllerConfig,
    interval_ms: u64,
    window_ms: u64,
    next_due_ms: u64,
    evaluations: u64,
    cycles_planned: u64,
    skips: SkipCounts,
    moves_deferred: u64,
    builds_capped: u64,
    adaptations: u64,
    records_seen: usize,
    last_error: f64,
    misfit: MisfitStreaks,
}

impl Reconsolidator {
    /// A driver that re-plans every `interval_ms` of log time with the
    /// given advisor configuration — the historical fixed-period
    /// behaviour. The first cycle is due one full interval after
    /// deployment.
    pub fn new(advisor: AdvisorConfig, interval_ms: u64) -> Self {
        Self::with_controller(advisor, ControllerConfig::fixed(interval_ms))
    }

    /// A feedback-controlled driver (see [`ControllerConfig`]). The first
    /// cycle is due one initial interval after deployment.
    pub fn with_controller(advisor: AdvisorConfig, controller: ControllerConfig) -> Self {
        let controller = controller.sanitized();
        Reconsolidator {
            advisor,
            controller,
            interval_ms: controller.initial_interval_ms,
            window_ms: controller.initial_window_ms,
            next_due_ms: controller.initial_interval_ms,
            evaluations: 0,
            cycles_planned: 0,
            skips: SkipCounts::default(),
            moves_deferred: 0,
            builds_capped: 0,
            adaptations: 0,
            records_seen: 0,
            last_error: 0.0,
            misfit: MisfitStreaks::new(),
        }
    }

    /// The controller configuration after sanitization.
    pub fn controller(&self) -> &ControllerConfig {
        &self.controller
    }

    /// The current (possibly adapted) cycle period.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// The current (possibly adapted) observation window; `0` means the
    /// service's full monitoring window.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Log-time instant the next cycle is due.
    pub fn next_due_ms(&self) -> u64 {
        self.next_due_ms
    }

    /// Due instants evaluated so far (each advances the schedule, whether
    /// or not a cycle started).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Cycles actually started (no-op plans and skips excluded).
    pub fn cycles_planned(&self) -> u64 {
        self.cycles_planned
    }

    /// Due cycles that were skipped, across all causes (see
    /// [`Reconsolidator::skip_counts`] for the attribution).
    pub fn cycles_skipped(&self) -> u64 {
        self.skips.total()
    }

    /// Per-cause skip counters.
    pub fn skip_counts(&self) -> SkipCounts {
        self.skips
    }

    /// Tenant moves the hysteresis has deferred so far.
    pub fn moves_deferred(&self) -> u64 {
        self.moves_deferred
    }

    /// Builds the per-cycle cap has deferred so far.
    pub fn builds_capped(&self) -> u64 {
        self.builds_capped
    }

    /// Period/window adaptations applied so far.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// The error measured at the most recent evaluation.
    pub fn last_error(&self) -> f64 {
        self.last_error
    }

    /// Plans a cycle from the service's *observed* activity without
    /// executing anything: runs the [`DeploymentAdvisor`] over the
    /// controller's observation window (clamped to the service's
    /// monitoring window and uptime) and diffs the advised deployment
    /// against the serving one. Advisor-excluded tenants (always active
    /// or over-sized) are placed in dedicated singleton groups so every
    /// live tenant stays routable.
    pub fn plan(&self, service: &ThriftyService) -> CyclePlan {
        let (histories, horizon_ms) = if self.window_ms == 0 {
            service.observed_activity_intervals()
        } else {
            service.observed_activity_intervals_in(self.window_ms)
        };
        let mut cfg = self.advisor;
        cfg.epoch.horizon_ms = horizon_ms;
        let advice = DeploymentAdvisor::new(cfg).advise(&histories);

        let mut builds: Vec<PlannedGroup> = advice
            .plan
            .groups
            .iter()
            .map(|g| PlannedGroup {
                members: g.members.clone(),
                replication: g.replication(),
                node_size: g.largest_request(),
            })
            .collect();
        // Excluded tenants get a dedicated single-MPPDB group sized to
        // their own request (the paper serves them "under another service
        // plan"; here that means no consolidation, but still routable).
        for t in &advice.excluded {
            builds.push(PlannedGroup {
                members: vec![*t],
                replication: 1,
                node_size: t.nodes,
            });
        }

        // Diff against the serving deployment: a current group survives if
        // some planned group matches it exactly.
        let mut keep = Vec::new();
        let mut retire = Vec::new();
        for gi in 0..service.group_count() {
            if service.group_is_retired(gi) {
                continue;
            }
            let members: BTreeSet<TenantId> = service
                .group_members(gi)
                .unwrap_or_default()
                .into_iter()
                .collect();
            let replicas = service.group_instances(gi).map_or(0, <[_]>::len);
            let node_size = service.group_node_size(gi).unwrap_or(0);
            let matched = builds.iter().position(|b| {
                b.replication as usize == replicas
                    && b.node_size == node_size
                    && b.members.len() == members.len()
                    && b.members.iter().all(|m| members.contains(&m.id))
            });
            match matched {
                Some(bi) if !members.is_empty() => {
                    builds.remove(bi);
                    keep.push(gi);
                }
                _ => retire.push(gi),
            }
        }
        CyclePlan {
            builds,
            keep,
            retire,
        }
    }

    /// Applies the churn bounds to a freshly planned cycle, updating the
    /// misfit streaks. Deferral operates on connected components of the
    /// rebuild graph (a build and every group it drains retire or defer
    /// together), so the bounded plan stays valid. Components placing
    /// parked registrations are mandatory and never deferred.
    pub fn bound_plan(&mut self, service: &ThriftyService, full: CyclePlan) -> BoundedPlan {
        let k = self.controller.hysteresis_cycles;
        let cap = self.controller.max_builds_per_cycle;
        if full.is_noop() {
            // Every tenant fits its serving group: all streaks end.
            self.misfit.clear();
            return BoundedPlan {
                plan: full,
                ..BoundedPlan::default()
            };
        }
        if k <= 1 && cap == usize::MAX {
            // Unbounded mode tracks no streaks.
            self.misfit.clear();
            return BoundedPlan {
                plan: full,
                ..BoundedPlan::default()
            };
        }

        // Update the streaks: tenants the plan keeps in place stop
        // misfitting; tenants in builds extend their streak only while
        // the proposed placement stays the same (an oscillating proposal
        // is exactly the ping-pong the hysteresis suppresses).
        for &gi in &full.keep {
            for t in service.group_members(gi).unwrap_or_default() {
                self.misfit.remove(&t);
            }
        }
        let mut build_members: BTreeSet<TenantId> = BTreeSet::new();
        for b in &full.builds {
            let sig = placement_signature(b);
            for m in &b.members {
                build_members.insert(m.id);
                let entry = self.misfit.entry(m.id).or_default();
                entry.total = entry.total.saturating_add(1);
                if entry.sig == sig {
                    entry.streak = entry.streak.saturating_add(1);
                } else {
                    entry.sig = sig;
                    entry.streak = 1;
                }
            }
        }
        // Departed tenants must not pin stale streaks.
        self.misfit.retain(|t, _| build_members.contains(t));

        // Connected components of the rebuild graph: build i touches
        // retired group g when some member of build i currently lives in
        // g. Union-find over [builds | retire groups].
        let nb = full.builds.len();
        let retire_pos: BTreeMap<usize, usize> = full
            .retire
            .iter()
            .enumerate()
            .map(|(i, &gi)| (gi, nb + i))
            .collect();
        let mut dsu = Dsu::new(nb + full.retire.len());
        for (bi, b) in full.builds.iter().enumerate() {
            for m in &b.members {
                if let Some(&pos) = service.group_of(m.id).and_then(|gi| retire_pos.get(&gi)) {
                    dsu.union(bi, pos);
                }
            }
        }
        let mut components: BTreeMap<usize, Component> = BTreeMap::new();
        for bi in 0..nb {
            components.entry(dsu.find(bi)).or_default().builds.push(bi);
        }
        for (i, &gi) in full.retire.iter().enumerate() {
            components
                .entry(dsu.find(nb + i))
                .or_default()
                .retire
                .push(gi);
        }

        // Classify: a component is mandatory when it places a parked
        // registration (or retires only drained groups — free cleanup);
        // otherwise it is eligible only once every member tenant's streak
        // reached K.
        let mut ordered: Vec<Component> = components.into_values().collect();
        ordered.sort_by_key(|c| {
            (
                c.retire.first().copied().unwrap_or(usize::MAX),
                c.builds.first().copied().unwrap_or(usize::MAX),
            )
        });
        let mut selected_builds: BTreeSet<usize> = BTreeSet::new();
        let mut selected_retire: BTreeSet<usize> = BTreeSet::new();
        let mut deferred_moves = 0u64;
        let mut capped_builds = 0u64;
        let mut budget = cap;
        for c in &ordered {
            let mandatory = c.builds.is_empty()
                || c.builds
                    .iter()
                    .flat_map(|&bi| &full.builds[bi].members)
                    .any(|m| service.is_parked(m.id));
            // The escape valve only fires while the error signal says the
            // tenants are actually suffering; a harmless misfit can stay
            // deferred forever.
            let force = self.controller.force_after;
            let forcing = force > 0 && self.last_error > self.controller.error_low;
            let ready = mandatory
                || c.builds
                    .iter()
                    .flat_map(|&bi| &full.builds[bi].members)
                    .all(|m| {
                        self.misfit
                            .get(&m.id)
                            .is_some_and(|f| f.streak >= k.max(1) || (forcing && f.total >= force))
                    });
            let moves: u64 = c
                .builds
                .iter()
                .map(|&bi| full.builds[bi].members.len() as u64)
                .sum();
            if !ready {
                deferred_moves += moves;
                continue;
            }
            // An indivisible component larger than the whole cap may run
            // alone when the full budget is still available — otherwise it
            // would starve forever. The cap still bounds everything else.
            if !mandatory && c.builds.len() > budget && budget < cap {
                capped_builds += c.builds.len() as u64;
                deferred_moves += moves;
                continue;
            }
            budget = budget.saturating_sub(c.builds.len());
            selected_builds.extend(c.builds.iter().copied());
            selected_retire.extend(c.retire.iter().copied());
        }

        let mut plan = CyclePlan {
            builds: Vec::new(),
            keep: full.keep.clone(),
            retire: selected_retire.iter().copied().collect(),
        };
        for (bi, b) in full.builds.into_iter().enumerate() {
            if selected_builds.contains(&bi) {
                // The move is granted: its members start from a clean slate,
                // so a fresh proposal against the just-built group must
                // re-earn K cycles (or the escape) before moving again.
                for m in &b.members {
                    self.misfit.remove(&m.id);
                }
                plan.builds.push(b);
            }
        }
        for &gi in &full.retire {
            if !selected_retire.contains(&gi) {
                plan.keep.push(gi);
            }
        }
        plan.keep.sort_unstable();
        BoundedPlan {
            plan,
            deferred_moves,
            capped_builds,
        }
    }

    /// The controller's error signal: the worst relative shortfall of the
    /// observations since the previous evaluation against what the plan
    /// predicted — normalized response times vs 1.0, compliance and
    /// per-group RT-TTP vs the advisor's `sla_p`. Clamped to `[0, 1]`.
    pub fn measure_error(&mut self, service: &ThriftyService) -> f64 {
        let records = service.records();
        let from = self.records_seen.min(records.len());
        self.records_seen = records.len();
        let fresh = &records[from..];
        let target = self.advisor.sla_p.max(f64::EPSILON);
        let mut error = 0.0f64;
        if !fresh.is_empty() {
            // Order pinned: `records` is the service's completion log,
            // appended in deterministic event order regardless of the
            // replay thread count.
            // lint: allow(float-merge)
            let mean_norm = fresh.iter().map(|r| r.normalized).sum::<f64>() / fresh.len() as f64;
            error = error.max((mean_norm - 1.0).clamp(0.0, 1.0));
            let summary = SlaSummary::from_records(fresh);
            error = error.max(((target - summary.compliance()) / target).clamp(0.0, 1.0));
        }
        for gi in 0..service.group_count() {
            if let Some(ttp) = service.group_rt_ttp(gi) {
                error = error.max(((target - ttp) / target).clamp(0.0, 1.0));
            }
        }
        self.last_error = error;
        error
    }

    /// Catches the schedule up past `now_ms` along the original due grid
    /// — a late call must not shift every later cycle (the pre-fix driver
    /// re-anchored to the call instant), and missed due points collapse
    /// into one evaluation instead of bunching.
    fn advance_due(&mut self, now_ms: u64) {
        let missed = now_ms.saturating_sub(self.next_due_ms) / self.interval_ms;
        self.next_due_ms = self
            .next_due_ms
            .saturating_add(self.interval_ms.saturating_mul(missed + 1));
    }

    /// The adaptation law (see the module docs). Returns `+1`/`-1`/`0`
    /// for grow/shrink/hold, after clamping.
    fn adapt(&mut self, error: f64, noop: bool) -> i8 {
        let c = self.controller;
        let (old_i, old_w) = (self.interval_ms, self.window_ms);
        if error >= c.error_high {
            self.interval_ms = (old_i / 2).clamp(c.min_interval_ms, c.max_interval_ms);
            if old_w != 0 {
                self.window_ms = (old_w / 2).clamp(c.min_window_ms, c.max_window_ms);
            }
        } else if noop && error <= c.error_low {
            self.interval_ms =
                (old_i.saturating_mul(3) / 2).clamp(c.min_interval_ms, c.max_interval_ms);
            if old_w != 0 {
                self.window_ms =
                    (old_w.saturating_mul(3) / 2).clamp(c.min_window_ms, c.max_window_ms);
            }
        }
        if self.interval_ms < old_i || self.window_ms < old_w {
            self.adaptations += 1;
            -1
        } else if self.interval_ms > old_i || self.window_ms > old_w {
            self.adaptations += 1;
            1
        } else {
            0
        }
    }

    /// Runs a cycle if one is due at the current log time: measures the
    /// error signal, plans against observed activity, applies the churn
    /// bounds, adapts the cadence, and hands any surviving plan to
    /// [`ThriftyService::begin_reconsolidation`]. Returns `true` when a
    /// cycle started. Due-but-impossible cycles — a previous cycle still
    /// executing, registrations still loading, a no-op plan, every change
    /// deferred by the churn bounds, or not enough free nodes to
    /// double-run the rebuilt groups — are skipped and retried at the
    /// next due instant.
    ///
    /// # Errors
    ///
    /// Propagates every service error except "insufficient free nodes",
    /// which is a skip, not a failure.
    pub fn maybe_cycle(&mut self, service: &mut ThriftyService) -> ThriftyResult<bool> {
        let now_ms = service.log_now().as_ms();
        if now_ms < self.next_due_ms {
            return Ok(false);
        }
        self.evaluations += 1;
        self.advance_due(now_ms);
        if service.reconsolidation_active() || service.has_pending_registrations() {
            self.skips.busy += 1;
            service.note_controller("controller.skipped_busy", 1);
            return Ok(false);
        }
        let error = self.measure_error(service);
        let full = self.plan(service);
        let was_noop = full.is_noop();
        let bounded = self.bound_plan(service, full);
        if bounded.deferred_moves > 0 {
            self.moves_deferred += bounded.deferred_moves;
            service.note_controller("controller.moves_deferred", bounded.deferred_moves);
        }
        if bounded.capped_builds > 0 {
            self.builds_capped += bounded.capped_builds;
            service.note_controller("controller.builds_capped", bounded.capped_builds);
        }
        match self.adapt(error, was_noop) {
            -1 => {
                service.note_controller("controller.adapt_shrink", 1);
                service.note_controller_adapted(self.interval_ms, self.window_ms, error);
            }
            1 => {
                service.note_controller("controller.adapt_grow", 1);
                service.note_controller_adapted(self.interval_ms, self.window_ms, error);
            }
            _ => {}
        }
        if bounded.plan.is_noop() {
            if was_noop {
                self.skips.noop += 1;
                service.note_controller("controller.skipped_noop", 1);
            } else {
                self.skips.deferred += 1;
                service.note_controller("controller.skipped_deferred", 1);
            }
            return Ok(false);
        }
        match service.begin_reconsolidation(&bounded.plan) {
            Ok(()) => {
                self.cycles_planned += 1;
                Ok(true)
            }
            Err(crate::error::ThriftyError::Sim(SimError::InsufficientNodes { .. })) => {
                self.skips.insufficient_nodes += 1;
                service.note_controller("controller.skipped_nodes", 1);
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

/// FNV-1a over a build's sorted member ids, replication, and node size —
/// the "same proposed placement" identity of the hysteresis.
fn placement_signature(b: &PlannedGroup) -> u64 {
    let mut ids: Vec<u32> = b.members.iter().map(|m| m.id.0).collect();
    ids.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for id in ids {
        mix(u64::from(id));
    }
    mix(u64::from(b.replication));
    mix(u64::from(b.node_size));
    h
}

/// One connected component of the rebuild graph.
#[derive(Default)]
struct Component {
    builds: Vec<usize>,
    retire: Vec<usize>,
}

/// Minimal union-find (path halving, union by index).
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::EpochConfig;
    use crate::advisor::{ExclusionPolicy, GroupingAlgorithm};
    use crate::design::{DeploymentPlan, TenantGroupPlan};
    use crate::service::{IncomingQuery, ServiceConfig, ThriftyService};
    use mppdb_sim::query::{QueryTemplate, TemplateId};
    use mppdb_sim::time::{SimDuration, SimTime};

    fn template() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn plan_two_groups() -> DeploymentPlan {
        DeploymentPlan {
            groups: vec![
                TenantGroupPlan::new(
                    vec![
                        Tenant::new(TenantId(0), 2, 100.0),
                        Tenant::new(TenantId(1), 2, 100.0),
                    ],
                    2,
                    2,
                ),
                TenantGroupPlan::new(
                    vec![
                        Tenant::new(TenantId(2), 2, 100.0),
                        Tenant::new(TenantId(3), 2, 100.0),
                    ],
                    2,
                    2,
                ),
            ],
        }
    }

    fn deploy(total_nodes: usize) -> ThriftyService {
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config");
        ThriftyService::deploy(&plan_two_groups(), total_nodes, [template()], config)
            .expect("deploys")
    }

    fn advisor_cfg() -> AdvisorConfig {
        AdvisorConfig {
            replication: 2,
            sla_p: 0.999,
            epoch: EpochConfig::new(10_000, 1),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        }
    }

    fn q(tenant: u32, submit_s: u64) -> IncomingQuery {
        IncomingQuery {
            tenant: TenantId(tenant),
            submit: SimTime::from_secs(submit_s),
            template: TemplateId(1),
            // 600 * 100 / 2 = 30_000 ms dedicated latency.
            baseline: SimDuration::from_ms(30_000),
        }
    }

    #[test]
    fn noop_plan_keeps_every_group() {
        let mut s = deploy(32);
        // Disjoint activity: tenants 0..4 in separate slots, so the advisor
        // reproduces a consolidation equivalent to the serving one — but any
        // regrouping it proposes must keep every live tenant placed.
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let plan = Reconsolidator::new(advisor_cfg(), 60_000).plan(&s);
        let placed: usize = plan.builds.iter().map(|b| b.members.len()).sum::<usize>()
            + plan
                .keep
                .iter()
                .map(|&gi| s.group_members(gi).map_or(0, |m| m.len()))
                .sum::<usize>();
        assert_eq!(placed, 4, "every live tenant placed exactly once");
        // Kept + retired covers every live group.
        let covered = plan.keep.len() + plan.retire.len();
        assert_eq!(covered, s.group_count());
    }

    #[test]
    fn cycle_waits_for_its_interval() {
        let mut s = deploy(32);
        let mut r = Reconsolidator::new(advisor_cfg(), 3_600_000);
        assert!(!r.maybe_cycle(&mut s).expect("no cycle before due"));
        assert_eq!(r.cycles_planned(), 0);
        assert_eq!(r.evaluations(), 0);
    }

    #[test]
    fn late_calls_stay_on_the_due_grid() {
        // Regression for the cadence-drift bug: the pre-fix driver set
        // `next_due_ms = now + interval`, so a call 45 min into a 1 h
        // schedule pushed the next due point to 1 h 45 min instead of 2 h
        // — every late call shifted the entire schedule.
        let mut s = deploy(32);
        let interval = 3_600_000u64;
        let mut r = Reconsolidator::new(advisor_cfg(), interval);
        // First evaluation arrives 45 min late.
        s.advance_log_time(SimTime::from_ms(interval + 45 * 60_000))
            .expect("advances");
        r.maybe_cycle(&mut s).expect("evaluates");
        assert_eq!(
            r.next_due_ms(),
            2 * interval,
            "a late call must not re-anchor the schedule to the call instant"
        );
        // Sleeping past several due points catches up without bunching:
        // one evaluation, next due on the original grid.
        s.advance_log_time(SimTime::from_ms(interval * 5 + 1))
            .expect("advances");
        let evals_before = r.evaluations();
        r.maybe_cycle(&mut s).expect("evaluates");
        assert_eq!(
            r.evaluations(),
            evals_before + 1,
            "missed due points collapse"
        );
        assert_eq!(r.next_due_ms(), 6 * interval, "catch-up lands on the grid");
        // And an on-time call keeps walking the grid.
        s.advance_log_time(SimTime::from_ms(6 * interval))
            .expect("advances");
        r.maybe_cycle(&mut s).expect("evaluates");
        assert_eq!(r.next_due_ms(), 7 * interval);
    }

    #[test]
    fn merge_cycle_frees_nodes_and_keeps_tenants_routable() {
        let mut s = deploy(32);
        // Run one query per tenant in fully disjoint slots: the observed
        // activity is perfectly consolidatable, so the advisor packs all
        // four 2-node tenants into fewer groups than the serving two.
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let nodes_before: usize = (0..s.group_count())
            .filter(|&gi| !s.group_is_retired(gi))
            .map(|gi| s.group_instances(gi).map_or(0, <[_]>::len) * 2)
            .sum();
        let mut r = Reconsolidator::new(advisor_cfg(), 1_000);
        let started = r.maybe_cycle(&mut s).expect("cycle plans");
        if started {
            s.drain().expect("cycle executes");
            assert_eq!(s.reconsolidation_cycles(), 1);
            assert!(!s.reconsolidation_active());
            // Every tenant still routable after the cutover.
            for t in [0u32, 1, 2, 3] {
                s.submit(q(t, 40_000)).expect("post-cutover submit");
            }
            s.drain().expect("drains");
            let nodes_after: usize = (0..s.group_count())
                .filter(|&gi| !s.group_is_retired(gi))
                .map(|gi| s.group_instances(gi).map_or(0, <[_]>::len) * 2)
                .sum();
            assert!(
                nodes_after <= nodes_before,
                "re-consolidation must not grow the serving footprint \
                 ({nodes_after} > {nodes_before})"
            );
        }
    }

    #[test]
    fn insufficient_nodes_skips_the_cycle() {
        // Exactly enough nodes for the initial deployment: any rebuild
        // needs headroom that does not exist.
        let mut s = deploy(8);
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let mut r = Reconsolidator::new(advisor_cfg(), 1_000);
        let started = r.maybe_cycle(&mut s).expect("skip, not error");
        assert!(!started);
        assert!(!s.reconsolidation_active());
        assert_eq!(s.cluster().free_nodes(), 0);
        // The skip is attributed to the node shortage, not conflated.
        assert_eq!(r.skip_counts().insufficient_nodes, 1);
        assert_eq!(r.skip_counts().busy, 0);
        assert_eq!(r.skip_counts().noop, 0);
        assert_eq!(r.cycles_skipped(), 1);
    }

    #[test]
    fn skip_causes_are_attributed() {
        let mut s = deploy(32);
        let mut r = Reconsolidator::new(advisor_cfg(), 1_000);
        // No activity at all: the advisor sees an idle population and its
        // plan regroups nothing that matters — drive one evaluation and
        // check the cause-specific counter moved, not a conflated one.
        s.advance_log_time(SimTime::from_ms(1_000))
            .expect("advances");
        r.maybe_cycle(&mut s).expect("evaluates");
        let counts = r.skip_counts();
        assert_eq!(r.evaluations(), 1);
        assert_eq!(
            counts.total() + r.cycles_planned(),
            r.evaluations(),
            "every evaluation is attributed exactly once"
        );
    }

    #[test]
    fn first_cycle_window_clamps_to_uptime() {
        // A young service must plan from its actual uptime, not from a
        // mostly-empty configured window that biases tenants toward idle.
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .monitor_window_ms(24 * 3_600_000)
            .build()
            .expect("valid service config");
        let mut s =
            ThriftyService::deploy(&plan_two_groups(), 32, [template()], config).expect("deploys");
        s.submit(q(0, 0)).expect("submits");
        s.drain().expect("drains");
        let uptime = s.log_now().as_ms();
        assert!(uptime < 24 * 3_600_000, "the service is young");
        let (_, horizon) = s.observed_activity_intervals_in(24 * 3_600_000);
        assert_eq!(
            horizon,
            uptime.max(1),
            "the observation horizon is the uptime, not the configured window"
        );
        // The controller's windowed plan flows through the same clamp.
        let mut r = Reconsolidator::with_controller(
            advisor_cfg(),
            ControllerConfig {
                initial_window_ms: 24 * 3_600_000,
                min_window_ms: 60_000,
                max_window_ms: 48 * 3_600_000,
                ..ControllerConfig::default()
            },
        );
        let full = r.plan(&s);
        let bounded = r.bound_plan(&s, full);
        let placed: usize = bounded
            .plan
            .builds
            .iter()
            .map(|b| b.members.len())
            .sum::<usize>()
            + bounded
                .plan
                .keep
                .iter()
                .map(|&gi| s.group_members(gi).map_or(0, |m| m.len()))
                .sum::<usize>();
        assert_eq!(placed, 4, "a clamped-window plan still places everyone");
    }

    #[test]
    fn hysteresis_defers_then_releases_a_stable_misfit() {
        let mut s = deploy(32);
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let mut r = Reconsolidator::with_controller(
            advisor_cfg(),
            ControllerConfig {
                hysteresis_cycles: 2,
                max_builds_per_cycle: usize::MAX,
                ..ControllerConfig::default()
            },
        );
        let full = r.plan(&s);
        if full.is_noop() {
            return; // nothing to defer under this activity shape
        }
        // First proposal: every move deferred (streaks at 1 < K = 2).
        let first = r.bound_plan(&s, full.clone());
        assert!(first.plan.builds.is_empty(), "first proposal is deferred");
        assert!(first.deferred_moves > 0);
        // Same proposal again: streaks reach K, the moves release.
        let second = r.bound_plan(&s, full.clone());
        assert_eq!(second.plan.builds.len(), full.builds.len());
        assert_eq!(second.deferred_moves, 0);
    }

    #[test]
    fn oscillating_proposals_never_release() {
        // Ping-pong: the planner alternates between two placements for the
        // same tenants; the signature-aware streak must never reach K.
        let mut s = deploy(32);
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let mut r = Reconsolidator::with_controller(
            advisor_cfg(),
            ControllerConfig {
                hysteresis_cycles: 2,
                force_after: 0,
                ..ControllerConfig::default()
            },
        );
        let full = r.plan(&s);
        if full.is_noop() || full.builds.len() < 2 {
            return;
        }
        let mut flipped = full.clone();
        flipped.builds.reverse();
        // Swap one member between the first two builds to change both
        // placement signatures.
        let m0 = flipped.builds[0].members[0];
        let m1 = flipped.builds[1].members[0];
        flipped.builds[0].members[0] = m1;
        flipped.builds[1].members[0] = m0;
        for _ in 0..4 {
            let a = r.bound_plan(&s, full.clone());
            assert!(
                a.plan.builds.is_empty(),
                "alternating proposals must stay deferred"
            );
            let b = r.bound_plan(&s, flipped.clone());
            assert!(
                b.plan.builds.is_empty(),
                "alternating proposals must stay deferred"
            );
        }
    }

    #[test]
    fn build_cap_limits_concurrent_builds() {
        // Serving groups: {0,1} in group 0, {2,3} in group 1.
        let s = deploy(32);
        let mut r = Reconsolidator::with_controller(
            advisor_cfg(),
            ControllerConfig {
                hysteresis_cycles: 0,
                max_builds_per_cycle: 1,
                ..ControllerConfig::default()
            },
        );
        let build = |ids: [u32; 2]| PlannedGroup {
            members: ids
                .iter()
                .map(|&t| Tenant::new(TenantId(t), 2, 100.0))
                .collect(),
            replication: 2,
            node_size: 1,
        };
        // Two independent components (each build drains one group): the
        // cap admits exactly one per cycle.
        let independent = CyclePlan {
            builds: vec![build([0, 1]), build([2, 3])],
            keep: Vec::new(),
            retire: vec![0, 1],
        };
        let bounded = r.bound_plan(&s, independent);
        assert_eq!(bounded.plan.builds.len(), 1);
        assert_eq!(bounded.capped_builds, 1);
        assert_eq!(bounded.deferred_moves, 2);
        // The deferred component's group stays in service.
        assert_eq!(bounded.plan.keep, vec![1]);
        assert_eq!(bounded.plan.retire, vec![0]);
        // One indivisible component (both builds drain both groups) larger
        // than the cap still runs alone rather than starving forever.
        let atomic = CyclePlan {
            builds: vec![build([0, 2]), build([1, 3])],
            keep: Vec::new(),
            retire: vec![0, 1],
        };
        let bounded = r.bound_plan(&s, atomic);
        assert_eq!(bounded.plan.builds.len(), 2);
        assert_eq!(bounded.capped_builds, 0);
        assert_eq!(bounded.deferred_moves, 0);
    }

    #[test]
    fn adaptation_law_shrinks_and_grows_within_bounds() {
        let cfg = ControllerConfig {
            initial_interval_ms: 2 * 3_600_000,
            min_interval_ms: 30 * 60_000,
            max_interval_ms: 4 * 3_600_000,
            initial_window_ms: 4 * 3_600_000,
            min_window_ms: 3_600_000,
            max_window_ms: 8 * 3_600_000,
            error_high: 0.02,
            error_low: 0.002,
            max_builds_per_cycle: 4,
            hysteresis_cycles: 2,
            force_after: 4,
        };
        let mut r = Reconsolidator::with_controller(advisor_cfg(), cfg);
        // High error halves period and window, saturating at the floors.
        for _ in 0..8 {
            r.adapt(0.5, false);
            assert!(r.interval_ms() >= cfg.min_interval_ms);
            assert!(r.window_ms() >= cfg.min_window_ms);
        }
        assert_eq!(r.interval_ms(), cfg.min_interval_ms);
        assert_eq!(r.window_ms(), cfg.min_window_ms);
        // No-op plans with low error grow both toward the ceilings.
        for _ in 0..16 {
            r.adapt(0.0, true);
            assert!(r.interval_ms() <= cfg.max_interval_ms);
            assert!(r.window_ms() <= cfg.max_window_ms);
        }
        assert_eq!(r.interval_ms(), cfg.max_interval_ms);
        assert_eq!(r.window_ms(), cfg.max_window_ms);
        // Mid-band error with a non-noop plan holds.
        let (i, w) = (r.interval_ms(), r.window_ms());
        r.adapt(0.01, false);
        assert_eq!((r.interval_ms(), r.window_ms()), (i, w));
        assert!(r.adaptations() > 0);
    }

    #[test]
    fn fixed_mode_never_adapts() {
        let mut r = Reconsolidator::new(advisor_cfg(), 3_600_000);
        r.adapt(1.0, false);
        r.adapt(0.0, true);
        assert_eq!(r.interval_ms(), 3_600_000);
        assert_eq!(r.window_ms(), 0);
        assert_eq!(r.adaptations(), 0);
    }

    #[test]
    fn planned_group_accounting() {
        let g = PlannedGroup {
            members: vec![Tenant::new(TenantId(9), 2, 50.0)],
            replication: 3,
            node_size: 4,
        };
        assert_eq!(g.nodes_needed(), 12);
        let plan = CyclePlan {
            builds: vec![g],
            keep: vec![0],
            retire: vec![1],
        };
        assert!(!plan.is_noop());
        assert_eq!(plan.nodes_needed(), 12);
        assert!(CyclePlan::default().is_noop());
    }

    #[test]
    fn controller_config_sanitizes_inverted_ranges() {
        let cfg = ControllerConfig {
            initial_interval_ms: 10,
            min_interval_ms: 5_000,
            max_interval_ms: 1_000,
            initial_window_ms: 99,
            min_window_ms: 500,
            max_window_ms: 100,
            error_high: f64::NAN,
            error_low: -1.0,
            max_builds_per_cycle: 0,
            hysteresis_cycles: 3,
            force_after: 1,
        };
        let r = Reconsolidator::with_controller(advisor_cfg(), cfg);
        let c = r.controller();
        assert!(c.min_interval_ms <= c.max_interval_ms);
        assert!(c.min_window_ms <= c.max_window_ms);
        assert!((c.min_interval_ms..=c.max_interval_ms).contains(&c.initial_interval_ms));
        assert!((c.min_window_ms..=c.max_window_ms).contains(&c.initial_window_ms));
        assert!(c.error_high.is_infinite());
        assert!(c.error_low >= 0.0);
        assert_eq!(
            c.force_after, 3,
            "an enabled escape valve never fires before the hysteresis"
        );
    }

    #[test]
    fn persistent_misfit_with_unstable_target_eventually_releases() {
        // The proposal keeps shifting (so the signature streak never
        // reaches K), but the tenants misfit every evaluation: after
        // `force_after` evaluations the escape valve releases the newest
        // proposal instead of freezing forever.
        let mut s = deploy(32);
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let mut r = Reconsolidator::with_controller(
            advisor_cfg(),
            ControllerConfig {
                hysteresis_cycles: 2,
                force_after: 3,
                ..ControllerConfig::default()
            },
        );
        // The escape only fires while the tenants measurably suffer.
        r.last_error = 0.5;
        let full = r.plan(&s);
        if full.is_noop() || full.builds.len() < 2 {
            return;
        }
        let mut flipped = full.clone();
        flipped.builds.reverse();
        let m0 = flipped.builds[0].members[0];
        let m1 = flipped.builds[1].members[0];
        flipped.builds[0].members[0] = m1;
        flipped.builds[1].members[0] = m0;
        // Evaluations 1 and 2 alternate placements: deferred both times.
        assert!(r.bound_plan(&s, full.clone()).plan.builds.is_empty());
        assert!(r.bound_plan(&s, flipped.clone()).plan.builds.is_empty());
        // Evaluation 3: totals reach `force_after`; the moves release even
        // though no placement was ever proposed twice in a row.
        let third = r.bound_plan(&s, full.clone());
        assert_eq!(third.plan.builds.len(), full.builds.len());
        assert_eq!(third.deferred_moves, 0);
        // Granted moves reset the slate: the very next proposal is
        // deferred again rather than riding the old totals.
        let fourth = r.bound_plan(&s, flipped.clone());
        assert!(fourth.plan.builds.is_empty());
        // With the error signal quiet the valve never fires, no matter
        // how long the unstable misfit persists.
        r.last_error = 0.0;
        for _ in 0..4 {
            assert!(r.bound_plan(&s, full.clone()).plan.builds.is_empty());
            assert!(r.bound_plan(&s, flipped.clone()).plan.builds.is_empty());
        }
    }
}
