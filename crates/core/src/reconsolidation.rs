//! Online re-consolidation (Chapter 5.1): periodic re-grouping of the
//! live tenant population with zero-downtime cutover.
//!
//! The paper's consolidation cycle makes Thrifty a *living* service: the
//! Tenant Activity Monitor's observed ratios — not the day-one estimates —
//! feed the next [`DeploymentAdvisor`] run, together with tenants that
//! arrived or departed since the last cycle and the re-consolidation list
//! of groups that went through elastic scaling. The resulting deployment
//! is diffed against the one currently serving:
//!
//! * groups whose member set, replication, and node size are unchanged are
//!   **kept** in place (no data moves);
//! * every other planned group becomes a **build**: its MPPDBs are
//!   provisioned from the free pool and every member is bulk-loaded onto
//!   every replica with the Table 5.1 delays, *while the old deployment
//!   keeps serving*;
//! * once a build is fully loaded, routing **cuts over** atomically for
//!   its tenants — queries in flight finish on their old instances, new
//!   submissions go to the new group, and SLA accounting never pauses;
//! * when the last build lands, superseded groups **retire**: their stale
//!   replicas are dropped via `Cluster::drop_tenant` and their instances
//!   decommission as soon as the last in-flight query drains, returning
//!   the freed nodes to the pool.
//!
//! [`Reconsolidator`] packages this as a periodic driver: embed it in a
//! replay loop and call [`Reconsolidator::maybe_cycle`] as log time
//! advances. Planning is pure ([`Reconsolidator::plan`]), so tests and
//! benches can inspect or hand-craft a [`CyclePlan`] and feed it straight
//! to [`ThriftyService::begin_reconsolidation`].

use crate::advisor::{AdvisorConfig, DeploymentAdvisor};
use crate::error::ThriftyResult;
use crate::service::ThriftyService;
use crate::tenant::{Tenant, TenantId};
use mppdb_sim::error::SimError;
use std::collections::BTreeSet;

/// One replacement tenant-group a cycle will build: the members to load,
/// the replication factor `A`, and the per-MPPDB node size `n_1`.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedGroup {
    /// The tenants the group will serve (each replicated on all MPPDBs).
    pub members: Vec<Tenant>,
    /// Replicas to provision (the group's availability factor `A`).
    pub replication: u32,
    /// Nodes per MPPDB (sized for the group's largest member).
    pub node_size: u32,
}

impl PlannedGroup {
    /// Nodes this build will draw from the free pool.
    pub fn nodes_needed(&self) -> usize {
        (self.replication as usize) * (self.node_size as usize)
    }
}

/// The diff between the serving deployment and the advisor's new one: the
/// groups to build, the current group indices to keep serving unchanged,
/// and the current group indices to retire after cutover.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CyclePlan {
    /// Replacement groups to provision and bulk load.
    pub builds: Vec<PlannedGroup>,
    /// Current groups kept in place (member set, `A`, and node size all
    /// unchanged) — their data never moves.
    pub keep: Vec<usize>,
    /// Current groups superseded by the builds; retired after the last
    /// cutover.
    pub retire: Vec<usize>,
}

impl CyclePlan {
    /// Whether the cycle would change nothing (every group kept).
    pub fn is_noop(&self) -> bool {
        self.builds.is_empty() && self.retire.is_empty()
    }

    /// Peak extra nodes the cycle needs while old and new deployments
    /// coexist.
    pub fn nodes_needed(&self) -> usize {
        self.builds.iter().map(PlannedGroup::nodes_needed).sum()
    }
}

/// Periodic re-consolidation driver.
///
/// Owns the cycle cadence and the advisor configuration; the observation
/// horizon of [`AdvisorConfig::epoch`] is overridden per cycle with the
/// service's actual monitoring window, so the configured horizon only
/// seeds the initial (pre-deployment) design.
#[derive(Clone, Debug)]
pub struct Reconsolidator {
    advisor: AdvisorConfig,
    interval_ms: u64,
    next_due_ms: u64,
    cycles_planned: u64,
    cycles_skipped: u64,
}

impl Reconsolidator {
    /// A driver that re-plans every `interval_ms` of log time with the
    /// given advisor configuration. The first cycle is due one full
    /// interval after deployment.
    pub fn new(advisor: AdvisorConfig, interval_ms: u64) -> Self {
        Reconsolidator {
            advisor,
            interval_ms: interval_ms.max(1),
            next_due_ms: interval_ms.max(1),
            cycles_planned: 0,
            cycles_skipped: 0,
        }
    }

    /// Log-time instant the next cycle is due.
    pub fn next_due_ms(&self) -> u64 {
        self.next_due_ms
    }

    /// Cycles actually started (no-op plans and skips excluded).
    pub fn cycles_planned(&self) -> u64 {
        self.cycles_planned
    }

    /// Due cycles that were skipped (no-op plan, insufficient free nodes,
    /// or the service was still busy with the previous cycle).
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Plans a cycle from the service's *observed* activity without
    /// executing anything: runs the [`DeploymentAdvisor`] over the
    /// monitoring window and diffs the advised deployment against the
    /// serving one. Advisor-excluded tenants (always active or over-sized)
    /// are placed in dedicated singleton groups so every live tenant stays
    /// routable.
    pub fn plan(&self, service: &ThriftyService) -> CyclePlan {
        let (histories, horizon_ms) = service.observed_activity_intervals();
        let mut cfg = self.advisor;
        cfg.epoch.horizon_ms = horizon_ms;
        let advice = DeploymentAdvisor::new(cfg).advise(&histories);

        let mut builds: Vec<PlannedGroup> = advice
            .plan
            .groups
            .iter()
            .map(|g| PlannedGroup {
                members: g.members.clone(),
                replication: g.replication(),
                node_size: g.largest_request(),
            })
            .collect();
        // Excluded tenants get a dedicated single-MPPDB group sized to
        // their own request (the paper serves them "under another service
        // plan"; here that means no consolidation, but still routable).
        for t in &advice.excluded {
            builds.push(PlannedGroup {
                members: vec![*t],
                replication: 1,
                node_size: t.nodes,
            });
        }

        // Diff against the serving deployment: a current group survives if
        // some planned group matches it exactly.
        let mut keep = Vec::new();
        let mut retire = Vec::new();
        for gi in 0..service.group_count() {
            if service.group_is_retired(gi) {
                continue;
            }
            let members: BTreeSet<TenantId> = service
                .group_members(gi)
                .unwrap_or_default()
                .into_iter()
                .collect();
            let replicas = service.group_instances(gi).map_or(0, <[_]>::len);
            let node_size = service.group_node_size(gi).unwrap_or(0);
            let matched = builds.iter().position(|b| {
                b.replication as usize == replicas
                    && b.node_size == node_size
                    && b.members.len() == members.len()
                    && b.members.iter().all(|m| members.contains(&m.id))
            });
            match matched {
                Some(bi) if !members.is_empty() => {
                    builds.remove(bi);
                    keep.push(gi);
                }
                _ => retire.push(gi),
            }
        }
        CyclePlan {
            builds,
            keep,
            retire,
        }
    }

    /// Runs a cycle if one is due at the current log time: plans against
    /// observed activity and hands the plan to
    /// [`ThriftyService::begin_reconsolidation`]. Returns `true` when a
    /// cycle started. Due-but-impossible cycles — a previous cycle still
    /// executing, registrations still loading, a no-op plan, or not enough
    /// free nodes to double-run the rebuilt groups — are skipped and
    /// retried at the next interval.
    ///
    /// # Errors
    ///
    /// Propagates every service error except "insufficient free nodes",
    /// which is a skip, not a failure.
    pub fn maybe_cycle(&mut self, service: &mut ThriftyService) -> ThriftyResult<bool> {
        let now_ms = service.log_now().as_ms();
        if now_ms < self.next_due_ms {
            return Ok(false);
        }
        self.next_due_ms = now_ms.saturating_add(self.interval_ms);
        if service.reconsolidation_active() || service.has_pending_registrations() {
            self.cycles_skipped += 1;
            return Ok(false);
        }
        let plan = self.plan(service);
        if plan.is_noop() {
            self.cycles_skipped += 1;
            return Ok(false);
        }
        match service.begin_reconsolidation(&plan) {
            Ok(()) => {
                self.cycles_planned += 1;
                Ok(true)
            }
            Err(crate::error::ThriftyError::Sim(SimError::InsufficientNodes { .. })) => {
                self.cycles_skipped += 1;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::EpochConfig;
    use crate::advisor::{ExclusionPolicy, GroupingAlgorithm};
    use crate::design::{DeploymentPlan, TenantGroupPlan};
    use crate::service::{IncomingQuery, ServiceConfig, ThriftyService};
    use mppdb_sim::query::{QueryTemplate, TemplateId};
    use mppdb_sim::time::{SimDuration, SimTime};

    fn template() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn plan_two_groups() -> DeploymentPlan {
        DeploymentPlan {
            groups: vec![
                TenantGroupPlan::new(
                    vec![
                        Tenant::new(TenantId(0), 2, 100.0),
                        Tenant::new(TenantId(1), 2, 100.0),
                    ],
                    2,
                    2,
                ),
                TenantGroupPlan::new(
                    vec![
                        Tenant::new(TenantId(2), 2, 100.0),
                        Tenant::new(TenantId(3), 2, 100.0),
                    ],
                    2,
                    2,
                ),
            ],
        }
    }

    fn deploy(total_nodes: usize) -> ThriftyService {
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .build()
            .expect("valid service config");
        ThriftyService::deploy(&plan_two_groups(), total_nodes, [template()], config)
            .expect("deploys")
    }

    fn advisor_cfg() -> AdvisorConfig {
        AdvisorConfig {
            replication: 2,
            sla_p: 0.999,
            epoch: EpochConfig::new(10_000, 1),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        }
    }

    fn q(tenant: u32, submit_s: u64) -> IncomingQuery {
        IncomingQuery {
            tenant: TenantId(tenant),
            submit: SimTime::from_secs(submit_s),
            template: TemplateId(1),
            // 600 * 100 / 2 = 30_000 ms dedicated latency.
            baseline: SimDuration::from_ms(30_000),
        }
    }

    #[test]
    fn noop_plan_keeps_every_group() {
        let mut s = deploy(32);
        // Disjoint activity: tenants 0..4 in separate slots, so the advisor
        // reproduces a consolidation equivalent to the serving one — but any
        // regrouping it proposes must keep every live tenant placed.
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let plan = Reconsolidator::new(advisor_cfg(), 60_000).plan(&s);
        let placed: usize = plan.builds.iter().map(|b| b.members.len()).sum::<usize>()
            + plan
                .keep
                .iter()
                .map(|&gi| s.group_members(gi).map_or(0, |m| m.len()))
                .sum::<usize>();
        assert_eq!(placed, 4, "every live tenant placed exactly once");
        // Kept + retired covers every live group.
        let covered = plan.keep.len() + plan.retire.len();
        assert_eq!(covered, s.group_count());
    }

    #[test]
    fn cycle_waits_for_its_interval() {
        let mut s = deploy(32);
        let mut r = Reconsolidator::new(advisor_cfg(), 3_600_000);
        assert!(!r.maybe_cycle(&mut s).expect("no cycle before due"));
        assert_eq!(r.cycles_planned(), 0);
    }

    #[test]
    fn merge_cycle_frees_nodes_and_keeps_tenants_routable() {
        let mut s = deploy(32);
        // Run one query per tenant in fully disjoint slots: the observed
        // activity is perfectly consolidatable, so the advisor packs all
        // four 2-node tenants into fewer groups than the serving two.
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let nodes_before: usize = (0..s.group_count())
            .filter(|&gi| !s.group_is_retired(gi))
            .map(|gi| s.group_instances(gi).map_or(0, <[_]>::len) * 2)
            .sum();
        let mut r = Reconsolidator::new(advisor_cfg(), 1_000);
        let started = r.maybe_cycle(&mut s).expect("cycle plans");
        if started {
            s.drain().expect("cycle executes");
            assert_eq!(s.reconsolidation_cycles(), 1);
            assert!(!s.reconsolidation_active());
            // Every tenant still routable after the cutover.
            for t in [0u32, 1, 2, 3] {
                s.submit(q(t, 40_000)).expect("post-cutover submit");
            }
            s.drain().expect("drains");
            let nodes_after: usize = (0..s.group_count())
                .filter(|&gi| !s.group_is_retired(gi))
                .map(|gi| s.group_instances(gi).map_or(0, <[_]>::len) * 2)
                .sum();
            assert!(
                nodes_after <= nodes_before,
                "re-consolidation must not grow the serving footprint \
                 ({nodes_after} > {nodes_before})"
            );
        }
    }

    #[test]
    fn insufficient_nodes_skips_the_cycle() {
        // Exactly enough nodes for the initial deployment: any rebuild
        // needs headroom that does not exist.
        let mut s = deploy(8);
        for (i, t) in [0u32, 1, 2, 3].iter().enumerate() {
            s.submit(q(*t, (i as u64) * 600)).expect("submits");
        }
        s.drain().expect("drains");
        let mut r = Reconsolidator::new(advisor_cfg(), 1_000);
        let started = r.maybe_cycle(&mut s).expect("skip, not error");
        assert!(!started);
        assert!(!s.reconsolidation_active());
        assert_eq!(s.cluster().free_nodes(), 0);
    }

    #[test]
    fn planned_group_accounting() {
        let g = PlannedGroup {
            members: vec![Tenant::new(TenantId(9), 2, 50.0)],
            replication: 3,
            node_size: 4,
        };
        assert_eq!(g.nodes_needed(), 12);
        let plan = CyclePlan {
            builds: vec![g],
            keep: vec![0],
            retire: vec![1],
        };
        assert!(!plan.is_noop());
        assert_eq!(plan.nodes_needed(), 12);
        assert!(CyclePlan::default().is_noop());
    }
}
