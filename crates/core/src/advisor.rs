//! The Deployment Advisor (Chapter 3, component b).
//!
//! Takes tenant activity histories plus the administrator's replication
//! factor `R` and performance SLA guarantee `P`, and returns a deployment
//! plan (cluster design + tenant placement). Tenants that offer no room for
//! consolidation — always active, or holding more data than the service
//! plan covers — are detected and excluded up front (Chapter 3 footnote:
//! they are served by dedicated nodes under another service plan).

use crate::activity::{ActivityVector, EpochConfig};
use crate::bursts::{BurstDetector, RecurringBurst};
use crate::design::DeploymentPlan;
use crate::grouping::{
    exact_grouping, ffd_grouping, two_step_grouping_with, GroupingProblem, GroupingSolution,
    TwoStepConfig,
};
use crate::metrics::ConsolidationReport;
use crate::tenant::{Tenant, TenantHistory};
use std::borrow::Borrow;
use std::time::Duration;

/// Which grouping algorithm the advisor runs.
#[derive(Clone, Copy, Debug, Default)]
pub enum GroupingAlgorithm {
    /// The paper's 2-step heuristic (Algorithm 2) — the default.
    #[default]
    TwoStep,
    /// The 2-step heuristic with explicit configuration (ablations).
    TwoStepWith(TwoStepConfig),
    /// The First-Fit-Decreasing baseline.
    Ffd,
    /// The exact branch-and-bound reference (toy instances only).
    Exact,
}

impl GroupingAlgorithm {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            GroupingAlgorithm::TwoStep => "2-step",
            GroupingAlgorithm::TwoStepWith(_) => "2-step (configured)",
            GroupingAlgorithm::Ffd => "FFD",
            GroupingAlgorithm::Exact => "exact",
        }
    }
}

/// Rules for excluding tenants from consolidation.
#[derive(Clone, Copy, Debug)]
pub struct ExclusionPolicy {
    /// Tenants active in more than this fraction of epochs are excluded
    /// ("tenants that are always active").
    pub max_active_ratio: f64,
    /// Tenants with more data than this are excluded ("more than terabytes
    /// of data"). The default, 20 TB, admits the paper's largest tenants
    /// (3.2 TB) comfortably.
    pub max_data_gb: f64,
    /// When `Some`, tenants whose history shows *recurring* bursts are
    /// excluded from consolidation before the next predicted burst arrives
    /// (Chapter 5.1: "tenants with regular bursts ... would be excluded
    /// from consolidation before the bursts arrive").
    pub burst_detector: Option<BurstDetector>,
}

impl Default for ExclusionPolicy {
    fn default() -> Self {
        ExclusionPolicy {
            max_active_ratio: 0.9,
            max_data_gb: 20_000.0,
            burst_detector: None,
        }
    }
}

/// Advisor configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdvisorConfig {
    /// Replication factor `R` (high availability; Table 7.1 default 3).
    pub replication: u32,
    /// Performance SLA guarantee `P` as a fraction (default 0.999).
    pub sla_p: f64,
    /// Epoch discretization of tenant histories.
    pub epoch: EpochConfig,
    /// Grouping algorithm.
    pub algorithm: GroupingAlgorithm,
    /// Exclusion rules.
    pub exclusion: ExclusionPolicy,
}

impl AdvisorConfig {
    /// The Table 7.1 default configuration: `R = 3`, `P = 99.9%`, 10 s
    /// epochs, 2-step grouping.
    pub fn paper_default(horizon_ms: u64) -> Self {
        AdvisorConfig {
            replication: 3,
            sla_p: 0.999,
            epoch: EpochConfig::new(10_000, horizon_ms),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        }
    }
}

/// The advisor's output: a deployment plan plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Advice {
    /// The deployment plan for the consolidated tenants.
    pub plan: DeploymentPlan,
    /// The underlying grouping problem (consolidated tenants only).
    pub problem: GroupingProblem,
    /// The grouping solution.
    pub solution: GroupingSolution,
    /// Tenants excluded from consolidation.
    pub excluded: Vec<Tenant>,
    /// Tenants excluded because of recurring bursts, with the detected
    /// series (subset of `excluded`; empty when burst exclusion is off).
    pub burst_excluded: Vec<(Tenant, RecurringBurst)>,
    /// Consolidation report (requested vs used, group sizes, runtime).
    pub report: ConsolidationReport,
}

/// The Deployment Advisor.
#[derive(Clone, Copy, Debug)]
pub struct DeploymentAdvisor {
    config: AdvisorConfig,
}

impl DeploymentAdvisor {
    /// Creates an advisor.
    pub fn new(config: AdvisorConfig) -> Self {
        DeploymentAdvisor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// Produces a deployment plan from tenant activity histories.
    ///
    /// Accepts anything that iterates over [`TenantHistory`] — a
    /// `&[TenantHistory]` slice, a `&Vec<TenantHistory>`, or an iterator
    /// of owned histories — so callers never build positional tuples.
    pub fn advise<I>(&self, histories: I) -> Advice
    where
        I: IntoIterator,
        I::Item: Borrow<TenantHistory>,
    {
        let cfg = &self.config;
        let mut tenants = Vec::new();
        let mut activities = Vec::new();
        let mut excluded = Vec::new();
        let mut burst_excluded = Vec::new();
        for h in histories {
            let TenantHistory { tenant, intervals } = h.borrow();
            let v = ActivityVector::from_intervals(intervals, cfg.epoch);
            if v.active_ratio() > cfg.exclusion.max_active_ratio
                || tenant.data_gb > cfg.exclusion.max_data_gb
            {
                excluded.push(*tenant);
                continue;
            }
            if let Some(detector) = &cfg.exclusion.burst_detector {
                if let Some(series) = detector.recurring(intervals, cfg.epoch.horizon_ms) {
                    excluded.push(*tenant);
                    burst_excluded.push((*tenant, series));
                    continue;
                }
            }
            tenants.push(*tenant);
            activities.push(v);
        }
        let problem = GroupingProblem::new(tenants, activities, cfg.replication, cfg.sla_p);
        let solution = match cfg.algorithm {
            GroupingAlgorithm::TwoStep => {
                two_step_grouping_with(&problem, TwoStepConfig::default())
            }
            GroupingAlgorithm::TwoStepWith(c) => two_step_grouping_with(&problem, c),
            GroupingAlgorithm::Ffd => ffd_grouping(&problem),
            GroupingAlgorithm::Exact => exact_grouping(&problem),
        };
        // Wall-clock timing is ambient nondeterminism (lint rule L2), so the
        // deterministic core reports zero here; the bench harness — which is
        // allowed to read the clock — stamps `report.runtime` after the call
        // (see thrifty-bench's pipeline/ablation drivers).
        let runtime = Duration::ZERO;
        let plan = DeploymentPlan::from_grouping(&problem, &solution);
        let report = ConsolidationReport::new(cfg.algorithm.name(), &problem, &solution, runtime);
        Advice {
            plan,
            problem,
            solution,
            excluded,
            burst_excluded,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantId;

    fn histories() -> Vec<TenantHistory> {
        // Horizon 100 ms, epochs of 10 ms.
        vec![
            // Bursty tenant, active in 2 epochs.
            TenantHistory::new(Tenant::new(TenantId(0), 4, 400.0), vec![(0, 15)]),
            // Disjointly bursty tenant.
            TenantHistory::new(Tenant::new(TenantId(1), 4, 400.0), vec![(50, 70)]),
            // Always-active tenant: must be excluded.
            TenantHistory::new(Tenant::new(TenantId(2), 4, 400.0), vec![(0, 100)]),
            // Over-sized tenant: must be excluded.
            TenantHistory::new(Tenant::new(TenantId(3), 4, 40_000.0), vec![(30, 40)]),
        ]
    }

    fn config() -> AdvisorConfig {
        AdvisorConfig {
            replication: 2,
            sla_p: 0.999,
            epoch: EpochConfig::new(10, 100),
            algorithm: GroupingAlgorithm::TwoStep,
            exclusion: ExclusionPolicy::default(),
        }
    }

    #[test]
    fn advisor_excludes_hopeless_tenants() {
        let advice = DeploymentAdvisor::new(config()).advise(histories());
        let excluded_ids: Vec<u32> = advice.excluded.iter().map(|t| t.id.0).collect();
        assert_eq!(excluded_ids, vec![2, 3]);
        assert_eq!(advice.plan.tenant_count(), 2);
    }

    #[test]
    fn advisor_consolidates_disjoint_tenants() {
        let advice = DeploymentAdvisor::new(config()).advise(histories());
        // The two bursty tenants never overlap -> one group, R = 2 replicas
        // of a 4-node MPPDB = 8 nodes for 8 requested.
        assert_eq!(advice.plan.groups.len(), 1);
        assert_eq!(advice.plan.nodes_used(), 8);
        assert_eq!(advice.report.groups, 1);
        advice.solution.validate(&advice.problem).unwrap();
    }

    #[test]
    fn algorithm_switch_changes_the_solver() {
        let mut cfg = config();
        cfg.algorithm = GroupingAlgorithm::Ffd;
        let advice = DeploymentAdvisor::new(cfg).advise(histories());
        assert_eq!(advice.report.algorithm, "FFD");
        advice.solution.validate(&advice.problem).unwrap();

        cfg.algorithm = GroupingAlgorithm::Exact;
        let advice = DeploymentAdvisor::new(cfg).advise(histories());
        assert_eq!(advice.report.algorithm, "exact");
        advice.solution.validate(&advice.problem).unwrap();
    }

    #[test]
    fn paper_default_config() {
        let cfg = AdvisorConfig::paper_default(86_400_000);
        assert_eq!(cfg.replication, 3);
        assert!((cfg.sla_p - 0.999).abs() < 1e-12);
        assert_eq!(cfg.epoch.epoch_ms, 10_000);
    }
}
