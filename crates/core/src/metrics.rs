//! Consolidation-effectiveness reporting.
//!
//! The paper's primary metric (Figures 7.1a–7.6a) is the percentage of
//! nodes *saved*: if tenants requested 10 000 nodes and Thrifty serves them
//! with 2 000, the consolidation effectiveness is 80%.

use crate::grouping::{GroupingProblem, GroupingSolution};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Summary of one grouping run, as reported in the Chapter 7 figures.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConsolidationReport {
    /// Which algorithm produced the solution (e.g. "2-step", "FFD").
    pub algorithm: String,
    /// Total nodes requested by the tenants (`N`).
    pub nodes_requested: u64,
    /// Nodes used after consolidation (`Σ R · max n_i`).
    pub nodes_used: u64,
    /// Fraction of requested nodes saved.
    pub effectiveness: f64,
    /// Number of tenant-groups formed.
    pub groups: usize,
    /// Average members per tenant-group.
    pub average_group_size: f64,
    /// Wall-clock running time of the grouping algorithm.
    pub runtime: Duration,
}

impl ConsolidationReport {
    /// Builds a report from a solution and the measured runtime.
    pub fn new(
        algorithm: impl Into<String>,
        problem: &GroupingProblem,
        solution: &GroupingSolution,
        runtime: Duration,
    ) -> Self {
        ConsolidationReport {
            algorithm: algorithm.into(),
            nodes_requested: problem.nodes_requested(),
            nodes_used: solution.nodes_used(problem),
            effectiveness: solution.effectiveness(problem),
            groups: solution.groups.len(),
            average_group_size: solution.average_group_size(),
            runtime,
        }
    }
}

impl fmt::Display for ConsolidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1}% saved ({} of {} nodes used, {} groups, avg size {:.1}, {:.2?})",
            self.algorithm,
            self.effectiveness * 100.0,
            self.nodes_used,
            self.nodes_requested,
            self.groups,
            self.average_group_size,
            self.runtime,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::livbpwfc::tests::figure_5_1_problem;
    use crate::grouping::two_step_grouping;

    #[test]
    fn report_summarizes_a_run() {
        let problem = figure_5_1_problem(3, 0.999);
        let solution = two_step_grouping(&problem);
        let report =
            ConsolidationReport::new("2-step", &problem, &solution, Duration::from_millis(5));
        assert_eq!(report.nodes_requested, 24);
        assert_eq!(report.nodes_used, 24);
        assert_eq!(report.groups, 2);
        assert!(report.effectiveness.abs() < 1e-12);
        let line = report.to_string();
        assert!(line.contains("2-step"));
        assert!(line.contains("2 groups"));
    }
}
