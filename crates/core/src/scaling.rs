//! Lightweight elastic scaling (Chapter 5.1).
//!
//! When a tenant-group's run-time TTP drops below the SLA guarantee `P`,
//! the heavyweight fix — adding a whole extra MPPDB replica for the group —
//! would bulk load *every* member's data (hours, per Table 5.1). The
//! lightweight approach identifies the **over-active** tenants — the ones
//! whose observed behaviour deviates from history — and starts a new MPPDB
//! loaded with only their data.
//!
//! The identification algorithm is the tenant-grouping heuristic itself
//! (Algorithm 2), run over just the group's members using their *runtime*
//! activity from the monitor window: members that can no longer join the
//! first (least-active-seeded) tenant-group are the over-active ones.

use crate::activity::{ActivityVector, EpochConfig};
use crate::grouping::{two_step_grouping, GroupingProblem};
use crate::monitor::GroupActivityMonitor;
use crate::tenant::{Tenant, TenantId};
use mppdb_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A tenant counts as deviating from history when its observed activity
/// ratio in the monitor window exceeds this multiple of its historical
/// ratio ("more active than the history indicated", Chapter 5.1).
pub const OVER_ACTIVE_DEVIATION_FACTOR: f64 = 2.0;

/// One elastic-scaling action taken by the service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingEvent {
    /// Which tenant-group scaled.
    pub group: usize,
    /// When the RT-TTP drop was detected.
    pub triggered_at: SimTime,
    /// The tenants identified as over-active and moved to the new MPPDB.
    pub over_active: Vec<TenantId>,
    /// When the new MPPDB finished loading and took over their queries
    /// (`None` while still loading).
    pub ready_at: Option<SimTime>,
}

/// Identifies the over-active tenants of a group from its monitor state.
///
/// Runs the 2-step grouping over the group's members with their runtime
/// activity (clipped to the monitor window, ending at `now_ms`); everyone
/// outside the first formed tenant-group is a candidate. When
/// `historical_ratios` is supplied (tenant → fraction of time active in the
/// consolidation history), candidates are filtered to those whose runtime
/// ratio exceeds [`OVER_ACTIVE_DEVIATION_FACTOR`] times their historical
/// ratio — the paper's "more active than the history indicated". Returns an
/// empty vector when the runtime activity still fits one group, when no
/// activity was observed, or when no candidate actually deviates from
/// history (in which case starting a new MPPDB would not help; the
/// manual-tuning path of Chapter 6 applies instead).
pub fn identify_over_active(
    members: &[Tenant],
    monitor: &GroupActivityMonitor,
    replication: u32,
    sla_p: f64,
    epoch_ms: u64,
    now_ms: u64,
    historical_ratios: Option<&BTreeMap<TenantId, f64>>,
) -> Vec<TenantId> {
    let window = monitor.window_activity(now_ms);
    let Some(window_start) = window
        .iter()
        .flat_map(|(_, iv)| iv.iter().map(|&(s, _)| s))
        .min()
    else {
        // No busy interval observed: nothing can be over-active.
        return Vec::new();
    };
    let horizon = now_ms.saturating_sub(window_start).max(epoch_ms);
    let epoch = EpochConfig::new(epoch_ms, horizon);
    let by_id: BTreeMap<TenantId, &Vec<(u64, u64)>> =
        window.iter().map(|(t, iv)| (*t, iv)).collect();

    let mut tenants = Vec::with_capacity(members.len());
    let mut activities = Vec::with_capacity(members.len());
    for m in members {
        tenants.push(*m);
        let v = match by_id.get(&m.id) {
            Some(iv) => {
                // Rebase intervals to the window start so the epoch grid
                // covers exactly the observation window.
                let rebased: Vec<(u64, u64)> = iv
                    .iter()
                    .map(|&(s, e)| (s - window_start, e - window_start))
                    .collect();
                ActivityVector::from_intervals(&rebased, epoch)
            }
            None => ActivityVector::empty(epoch.epoch_count()),
        };
        activities.push(v);
    }
    // With history available, deviation from history is the primary signal:
    // every member whose observed window ratio exceeds the deviation factor
    // times its historical ratio is over-active, whether or not the runtime
    // grouping happened to seat it in the first group (the grouping blames
    // whichever member it *added last*, which under joint overload need not
    // be the deviant).
    if let Some(hist) = historical_ratios {
        let observed = monitor.observed_window(now_ms).max(1) as f64;
        let window_ratio = |id: TenantId| -> f64 {
            by_id
                .get(&id)
                .map(|iv| iv.iter().map(|&(s, e)| e - s).sum::<u64>() as f64 / observed)
                .unwrap_or(0.0)
        };
        // Deviation = observed ratio / historical ratio. During a sustained
        // overload, *everyone's* observed activity inflates (their queries
        // queue behind the over-active tenant's on the shared MPPDB), so a
        // plain threshold would evacuate half the group. Keep only tenants
        // within a factor of two of the worst deviation — the actual
        // culprits, not the collateral.
        let deviations: Vec<(TenantId, f64)> = members
            .iter()
            .map(|m| {
                let baseline = hist.get(&m.id).copied().unwrap_or(0.0).max(1e-6);
                (m.id, window_ratio(m.id) / baseline)
            })
            .collect();
        // lint: allow(float-merge) — max is order-insensitive (no accumulation).
        let top = deviations.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        let mut over: Vec<TenantId> = deviations
            .into_iter()
            .filter(|&(_, d)| d > OVER_ACTIVE_DEVIATION_FACTOR && d >= top / 2.0)
            .map(|(id, _)| id)
            .collect();
        over.sort_unstable();
        return over;
    }
    // Without history: run the grouping over the runtime activity; members
    // outside the first (least-active-seeded) group are over-active.
    let problem = GroupingProblem::new(tenants, activities, replication, sla_p);
    let solution = two_step_grouping(&problem);
    if solution.groups.len() <= 1 {
        return Vec::new();
    }
    let mut over: Vec<TenantId> = solution.groups[1..]
        .iter()
        .flat_map(|g| g.members.iter().map(|&i| problem.tenants[i].id))
        .collect();
    over.sort_unstable();
    over
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Vec<Tenant> {
        (0..n).map(|i| Tenant::new(TenantId(i), 4, 400.0)).collect()
    }

    #[test]
    fn quiet_group_identifies_nobody() {
        let monitor = GroupActivityMonitor::new(3, 1_000_000, 0);
        let over = identify_over_active(&members(5), &monitor, 3, 0.999, 1_000, 500_000, None);
        assert!(over.is_empty());
    }

    #[test]
    fn continuously_active_tenant_is_singled_out() {
        // Four tenants; T0 hammers the group continuously while the others
        // are briefly and disjointly active. With R = 1 the runtime history
        // cannot keep them all in one group, and the greedy grouping seeded
        // by the least active member pushes the hammering tenant out.
        let mut monitor = GroupActivityMonitor::new(1, 1_000_000, 0);
        monitor.on_query_start(TenantId(0), 0); // runs "forever"
        for (i, start) in [(1u32, 10_000u64), (2, 40_000), (3, 70_000)] {
            monitor.on_query_start(TenantId(i), start);
            monitor.on_query_finish(TenantId(i), start + 5_000).unwrap();
        }
        let over = identify_over_active(&members(4), &monitor, 1, 0.999, 1_000, 100_000, None);
        assert_eq!(over, vec![TenantId(0)]);
    }

    #[test]
    fn disjoint_activity_fits_one_group() {
        let mut monitor = GroupActivityMonitor::new(3, 1_000_000, 0);
        for i in 0..6u32 {
            let start = u64::from(i) * 20_000;
            monitor.on_query_start(TenantId(i), start);
            monitor
                .on_query_finish(TenantId(i), start + 10_000)
                .unwrap();
        }
        let over = identify_over_active(&members(6), &monitor, 3, 0.999, 1_000, 150_000, None);
        assert!(over.is_empty());
    }

    #[test]
    fn history_filter_keeps_only_deviating_tenants() {
        // T0 hammers (far above its 5% historical ratio); T1 is busy in the
        // window but *historically* busy too, so it must not be moved.
        let mut monitor = GroupActivityMonitor::new(1, 1_000_000, 0);
        monitor.on_query_start(TenantId(0), 0);
        monitor.on_query_start(TenantId(1), 0);
        monitor.on_query_finish(TenantId(1), 40_000).unwrap();
        let hist: BTreeMap<TenantId, f64> = [
            (TenantId(0), 0.05),
            (TenantId(1), 0.50),
            (TenantId(2), 0.05),
        ]
        .into();
        let over =
            identify_over_active(&members(3), &monitor, 1, 0.999, 1_000, 100_000, Some(&hist));
        assert_eq!(over, vec![TenantId(0)]);
    }

    #[test]
    fn several_over_active_tenants_are_all_reported() {
        // With R = 1 and three tenants continuously active together, at
        // most one of them can stay.
        let mut monitor = GroupActivityMonitor::new(1, 1_000_000, 0);
        for i in 0..3u32 {
            monitor.on_query_start(TenantId(i), 0);
        }
        let over = identify_over_active(&members(3), &monitor, 1, 0.999, 1_000, 60_000, None);
        assert_eq!(over.len(), 2);
    }
}
