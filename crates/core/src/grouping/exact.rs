//! Exact LIVBPwFC solver for small instances.
//!
//! The paper formulates the problem as a mixed-integer non-linear program
//! (Appendix 9.1) and solves it with the DIRECT global optimizer — which
//! took *12 days for 20 tenants*, so it only serves as an optimality
//! reference. This module plays the same role with a branch-and-bound
//! search over canonical set partitions (restricted-growth enumeration):
//! tenants are assigned in order to an existing group or a fresh one,
//! pruning any branch whose partial cost already meets the incumbent or
//! whose current group violates the fuzzy capacity constraint. Practical up
//! to roughly a dozen tenants.

use crate::grouping::histogram::ActiveCountHistogram;
use crate::grouping::livbpwfc::{GroupingProblem, GroupingSolution, TenantGroup};

/// Upper bound on instance size accepted by [`exact_grouping`]; beyond this
/// the search space (Bell numbers) explodes.
pub const MAX_EXACT_TENANTS: usize = 14;

/// Finds a minimum-cost feasible grouping by exhaustive canonical-partition
/// search with pruning. Returns `None` only for the empty instance's
/// trivial solution (which is returned as an empty solution, never `None`)
/// — i.e. this always returns a solution because singleton groups are
/// always feasible when `R ≥ 1`.
///
/// # Panics
/// Panics if the instance exceeds [`MAX_EXACT_TENANTS`] tenants.
pub fn exact_grouping(problem: &GroupingProblem) -> GroupingSolution {
    assert!(
        problem.len() <= MAX_EXACT_TENANTS,
        "exact search is limited to {MAX_EXACT_TENANTS} tenants, got {}",
        problem.len()
    );
    if problem.is_empty() {
        return GroupingSolution { groups: Vec::new() };
    }
    // Incumbent: singleton groups (always feasible for R >= 1, since a
    // single tenant can have at most 1 concurrently active member).
    let mut best: Vec<Vec<usize>> = (0..problem.len()).map(|i| vec![i]).collect();
    let mut best_cost = partition_cost(problem, &best);

    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut hists: Vec<ActiveCountHistogram> = Vec::new();
    let mut maxes: Vec<u32> = Vec::new();
    search(
        problem,
        0,
        0,
        &mut groups,
        &mut hists,
        &mut maxes,
        &mut best,
        &mut best_cost,
    );
    GroupingSolution {
        groups: best
            .into_iter()
            .map(|members| TenantGroup { members })
            .collect(),
    }
}

fn partition_cost(problem: &GroupingProblem, groups: &[Vec<usize>]) -> u64 {
    groups.iter().map(|g| problem.group_nodes(g)).sum()
}

#[allow(clippy::too_many_arguments)]
fn search(
    problem: &GroupingProblem,
    next: usize,
    cost_so_far: u64,
    groups: &mut Vec<Vec<usize>>,
    hists: &mut Vec<ActiveCountHistogram>,
    maxes: &mut Vec<u32>,
    best: &mut Vec<Vec<usize>>,
    best_cost: &mut u64,
) {
    if cost_so_far >= *best_cost {
        return; // adding tenants never decreases the cost
    }
    if next == problem.len() {
        *best = groups.clone();
        *best_cost = cost_so_far;
        return;
    }
    let v = &problem.activities[next];
    let n = problem.tenants[next].nodes;
    let r = u64::from(problem.replication);

    // Try every existing group (canonical order avoids symmetric duplicates
    // because group identity is fixed by its smallest member).
    for gi in 0..groups.len() {
        if hists[gi].ttp_with(v, problem.replication) < problem.sla_p {
            continue;
        }
        let old_max = maxes[gi];
        let new_max = old_max.max(n);
        let delta = r * u64::from(new_max - old_max);
        groups[gi].push(next);
        hists[gi].add(v);
        maxes[gi] = new_max;
        search(
            problem,
            next + 1,
            cost_so_far + delta,
            groups,
            hists,
            maxes,
            best,
            best_cost,
        );
        // Backtrack: histograms do not support removal, so rebuild.
        groups[gi].pop();
        maxes[gi] = old_max;
        let mut rebuilt = ActiveCountHistogram::new(problem.d());
        for &m in &groups[gi] {
            rebuilt.add(&problem.activities[m]);
        }
        hists[gi] = rebuilt;
    }

    // Open a new group with this tenant.
    groups.push(vec![next]);
    let mut h = ActiveCountHistogram::new(problem.d());
    h.add(v);
    hists.push(h);
    maxes.push(n);
    search(
        problem,
        next + 1,
        cost_so_far + r * u64::from(n),
        groups,
        hists,
        maxes,
        best,
        best_cost,
    );
    groups.pop();
    hists.pop();
    maxes.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::ffd::ffd_grouping;
    use crate::grouping::livbpwfc::tests::figure_5_1_problem;
    use crate::grouping::two_step::two_step_grouping;

    #[test]
    fn exact_is_feasible_and_no_worse_than_heuristics() {
        for (r, p) in [(3, 0.999), (2, 0.9), (1, 1.0), (4, 0.95)] {
            let problem = figure_5_1_problem(r, p);
            let exact = exact_grouping(&problem);
            exact.validate(&problem).unwrap();
            let two_step = two_step_grouping(&problem);
            let ffd = ffd_grouping(&problem);
            assert!(
                exact.nodes_used(&problem) <= two_step.nodes_used(&problem),
                "r={r} p={p}"
            );
            assert!(
                exact.nodes_used(&problem) <= ffd.nodes_used(&problem),
                "r={r} p={p}"
            );
        }
    }

    #[test]
    fn exact_matches_known_optimum_on_the_walkthrough() {
        // Figure 5.3 instance, R = 3, P = 99.9%: {T2..T6} + {T1} is
        // feasible and costs 2 groups * 3 * 4 = 24 nodes. One single group
        // of all six is infeasible (TTP 90% at best per the walk-through),
        // so 24 is optimal.
        let problem = figure_5_1_problem(3, 0.999);
        let exact = exact_grouping(&problem);
        assert_eq!(exact.nodes_used(&problem), 24);
        assert_eq!(exact.groups.len(), 2);
    }

    #[test]
    fn exact_handles_empty_instance() {
        let problem = figure_5_1_problem(3, 0.999);
        let empty = crate::grouping::livbpwfc::GroupingProblem::new(
            vec![],
            vec![],
            problem.replication,
            problem.sla_p,
        );
        assert!(exact_grouping(&empty).groups.is_empty());
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn exact_rejects_large_instances() {
        use crate::activity::ActivityVector;
        use crate::tenant::{Tenant, TenantId};
        let n = MAX_EXACT_TENANTS + 1;
        let tenants: Vec<Tenant> = (0..n)
            .map(|i| Tenant::new(TenantId(i as u32), 2, 200.0))
            .collect();
        let activities = vec![ActivityVector::empty(4); n];
        let problem = GroupingProblem::new(tenants, activities, 3, 0.999);
        let _ = exact_grouping(&problem);
    }
}
