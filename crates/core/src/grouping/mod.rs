//! Tenant grouping: the LIVBPwFC problem and its solvers (Chapter 5).
//!
//! * [`livbpwfc`] — the problem statement, feasibility predicate, and
//!   objective.
//! * [`two_step`] — the paper's 2-step heuristic (Algorithm 2).
//! * [`ffd`] — the First-Fit-Decreasing baseline it is compared against.
//! * [`exact`] — a branch-and-bound optimality reference for toy instances
//!   (the role the MINLP + DIRECT formulation of Appendix 9.1 plays in the
//!   paper).
//! * [`histogram`] — the incremental concurrent-activity accounting that
//!   makes candidate evaluation `O(active epochs)` instead of `O(d)`.

pub mod exact;
pub mod ffd;
pub mod histogram;
pub mod livbpwfc;
pub mod two_step;

pub use exact::{exact_grouping, MAX_EXACT_TENANTS};
pub use ffd::{ffd_grouping, ffd_grouping_with, FfdCapacity, FfdConfig, FfdOrder};
pub use histogram::{compare_level_hists, ActiveCountHistogram};
pub use livbpwfc::{GroupingProblem, GroupingProblemBuilder, GroupingSolution, TenantGroup};
pub use two_step::{
    split_size_bucket, two_step_buckets, two_step_grouping, two_step_grouping_with, GroupClosing,
    TieBreaking, TwoStepConfig,
};
