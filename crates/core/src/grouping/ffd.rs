//! First-Fit-Decreasing baseline.
//!
//! The comparison heuristic of Chapter 7: recent work on vector bin packing
//! (Panigrahy et al.) recommends FFD — sort items by a scalar (the product
//! of the item's dimension values), insert each into the first bin with
//! room, open a new bin otherwise. The paper notes that FFD "was not
//! especially designed for the LIVBPwFC problem and it did not take into
//! account the fuzzy capacity constraint and the largest item": the
//! published baseline therefore packs with the *hard* vector capacity (no
//! epoch may exceed `R` active members — no `P%` slack) and is blind to the
//! largest-item objective (it mixes node sizes in one bin). That is the
//! default here. [`FfdConfig`] also exposes fuzzy-capacity and
//! size-ordered variants as stronger baselines for the ablation study.

use crate::grouping::histogram::ActiveCountHistogram;
use crate::grouping::livbpwfc::{GroupingProblem, GroupingSolution, TenantGroup};

/// How a bin's capacity is tested.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FfdCapacity {
    /// Classic vector bin packing: an item fits iff no epoch would exceed
    /// `R` concurrently active members (the paper's baseline, which ignores
    /// the `P%` slack of the fuzzy constraint).
    #[default]
    Hard,
    /// Fuzzy: an item fits iff the bin's TTP stays at or above `P` — the
    /// same test the 2-step heuristic uses (a stronger baseline).
    Fuzzy,
}

/// The scalar FFD sorts by (descending). The recommended heuristic for
/// vector bin packing takes the product of an item's dimension values; the
/// LIVBPwFC item is `(A_i, n_i)`, giving `active_epochs · n_i` — the
/// default. The other orders are ablation baselines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FfdOrder {
    /// `active_epochs · n_i` (the product heuristic; default).
    #[default]
    SizeActivityProduct,
    /// Activity only — ignores `n_i`, so bins mix node sizes anchored by
    /// whatever arrives first; catastrophic on the largest-item objective.
    ActivityOnly,
    /// Node count first, then activity — the classic "size decreasing"
    /// order for the objective's charged dimension.
    SizeFirst,
}

/// FFD configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FfdConfig {
    /// Sort order.
    pub order: FfdOrder,
    /// Capacity test.
    pub capacity: FfdCapacity,
}

/// Runs First-Fit-Decreasing as published: product-heuristic order, hard
/// vector capacity.
pub fn ffd_grouping(problem: &GroupingProblem) -> GroupingSolution {
    ffd_grouping_with(problem, FfdConfig::default())
}

/// Runs First-Fit-Decreasing with an explicit configuration.
pub fn ffd_grouping_with(problem: &GroupingProblem, config: FfdConfig) -> GroupingSolution {
    let order_by = config.order;
    let d = problem.d();
    let mut order: Vec<usize> = (0..problem.len()).collect();
    let key = |i: usize| -> (u64, u64) {
        let activity = u64::from(problem.activities[i].active_epochs());
        let nodes = u64::from(problem.tenants[i].nodes);
        match order_by {
            FfdOrder::SizeActivityProduct => (activity.max(1) * nodes, 0),
            FfdOrder::ActivityOnly => (activity, nodes),
            FfdOrder::SizeFirst => (nodes, activity),
        }
    };
    order.sort_by_key(|&i| (std::cmp::Reverse(key(i)), i));

    let fits =
        |hist: &ActiveCountHistogram, v: &crate::activity::ActivityVector| match config.capacity {
            FfdCapacity::Hard => hist.fits_within(v, problem.replication),
            FfdCapacity::Fuzzy => hist.ttp_with(v, problem.replication) >= problem.sla_p,
        };
    let mut bins: Vec<(TenantGroup, ActiveCountHistogram)> = Vec::new();
    for i in order {
        let v = &problem.activities[i];
        let mut placed = false;
        for (group, hist) in bins.iter_mut() {
            if fits(hist, v) {
                hist.add(v);
                group.members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            let mut hist = ActiveCountHistogram::new(d);
            hist.add(v);
            bins.push((TenantGroup { members: vec![i] }, hist));
        }
    }
    GroupingSolution {
        groups: bins.into_iter().map(|(g, _)| g).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityVector;
    use crate::grouping::livbpwfc::tests::figure_5_1_problem;
    use crate::grouping::two_step::two_step_grouping;
    use crate::tenant::{Tenant, TenantId};

    #[test]
    fn ffd_produces_valid_partitions() {
        for p in [0.5, 0.9, 0.999, 1.0] {
            for r in 1..=4 {
                let problem = figure_5_1_problem(r, p);
                let solution = ffd_grouping(&problem);
                solution
                    .validate(&problem)
                    .unwrap_or_else(|e| panic!("r={r} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn ffd_mixes_node_sizes_where_two_step_does_not() {
        // An inactive small tenant and an inactive big tenant: FFD happily
        // packs them together (first fit), paying R * 8 nodes; the 2-step
        // heuristic separates sizes and pays R * (8 + 2) but gains in larger
        // corpora — this is the structural difference, exercised at toy
        // scale.
        let d = 10;
        let tenants = vec![
            Tenant::new(TenantId(0), 8, 800.0),
            Tenant::new(TenantId(1), 2, 200.0),
        ];
        let activities = vec![ActivityVector::empty(d), ActivityVector::empty(d)];
        let problem = GroupingProblem::new(tenants, activities, 3, 0.999);
        let ffd = ffd_grouping(&problem);
        assert_eq!(ffd.groups.len(), 1);
        assert_eq!(ffd.nodes_used(&problem), 24);
        let ts = two_step_grouping(&problem);
        assert_eq!(ts.groups.len(), 2);
    }

    #[test]
    fn ffd_opens_new_bins_when_capacity_is_fuzzy_full() {
        let d = 50;
        let n = 7usize;
        let full = ActivityVector::from_epochs((0..d).collect(), d);
        let tenants: Vec<Tenant> = (0..n)
            .map(|i| Tenant::new(TenantId(i as u32), 4, 400.0))
            .collect();
        let problem = GroupingProblem::new(tenants, vec![full; n], 2, 0.999);
        let solution = ffd_grouping(&problem);
        assert_eq!(solution.groups.len(), 4); // ceil(7 / 2) with R = 2
        solution.validate(&problem).unwrap();
    }

    #[test]
    fn ffd_handles_empty_problem() {
        let problem = GroupingProblem::new(vec![], vec![], 3, 0.999);
        assert!(ffd_grouping(&problem).groups.is_empty());
    }
}
