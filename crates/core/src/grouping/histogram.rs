//! Concurrent-activity accounting for a tenant-group under construction.
//!
//! The fuzzy-capacity constraint of the LIVBPwFC (Chapter 5) asks, for a set
//! `S` of tenants: in what fraction of epochs are at most `R` members of `S`
//! concurrently active? [`ActiveCountHistogram`] maintains, per epoch, the
//! number of active members (`counts`) plus a histogram over those counts
//! (`level_hist`), so that
//!
//! * adding a tenant costs `O(active epochs of the tenant)`,
//! * evaluating a *candidate* tenant without committing costs the same and
//!   allocates only a histogram copy (a vector of a few entries), and
//! * the TTP ("total time percentage" with ≤ R active) is read off the
//!   histogram in `O(levels)`.
//!
//! This incremental evaluation is what makes the 2-step heuristic practical:
//! a dense recomputation would cost `O(d)` per candidate (26 million epochs
//! at the finest setting of Figure 7.1). The `ttp_evaluation` group of the
//! `grouping` bench quantifies the gap.

use crate::activity::ActivityVector;

/// Per-epoch concurrent-active counts and the histogram over count levels
/// for one tenant-group.
#[derive(Clone, Debug)]
pub struct ActiveCountHistogram {
    /// `counts[k]` = number of group members active in epoch `k`.
    counts: Vec<u16>,
    /// `level_hist[c]` = number of epochs whose count is exactly `c`.
    level_hist: Vec<u64>,
    /// Number of members added so far.
    members: usize,
}

impl ActiveCountHistogram {
    /// An empty group over `d` epochs.
    pub fn new(d: u32) -> Self {
        ActiveCountHistogram {
            counts: vec![0; d as usize],
            level_hist: vec![d as u64],
            members: 0,
        }
    }

    /// Number of epochs `d`.
    pub fn d(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Number of members added.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Highest concurrent-active level that occurs in any epoch.
    pub fn max_level(&self) -> usize {
        self.level_hist.iter().rposition(|&n| n > 0).unwrap_or(0)
    }

    /// The histogram over count levels (`[c]` = epochs with exactly `c`
    /// active members). Trailing zero levels are trimmed lazily, so prefer
    /// [`Self::max_level`] over `len() - 1`.
    pub fn level_hist(&self) -> &[u64] {
        &self.level_hist
    }

    /// Number of epochs with **more than** `r` concurrently active members.
    pub fn epochs_above(&self, r: u32) -> u64 {
        self.level_hist.iter().skip(r as usize + 1).sum()
    }

    /// The TTP: fraction of epochs with at most `r` active members
    /// (`COUNT^{≤R}(Σ A_i) / d` in the paper's notation).
    pub fn ttp(&self, r: u32) -> f64 {
        if self.counts.is_empty() {
            return 1.0;
        }
        1.0 - self.epochs_above(r) as f64 / self.counts.len() as f64
    }

    /// Commits a member's activity into the group.
    ///
    /// # Panics
    /// Panics if the vector's dimensionality differs from the group's.
    pub fn add(&mut self, v: &ActivityVector) {
        assert_eq!(v.d(), self.d(), "activity dimensionality mismatch");
        for &(s, e) in v.runs() {
            for k in s..e {
                let c = &mut self.counts[k as usize];
                let old = *c as usize;
                *c += 1;
                self.level_hist[old] -= 1;
                if old + 1 == self.level_hist.len() {
                    self.level_hist.push(0);
                }
                self.level_hist[old + 1] += 1;
            }
        }
        self.members += 1;
    }

    /// The level histogram that would result from adding `v`, without
    /// committing. `O(active epochs of v)` plus one small allocation.
    ///
    /// # Panics
    /// Panics if the vector's dimensionality differs from the group's.
    pub fn level_hist_with(&self, v: &ActivityVector) -> Vec<u64> {
        assert_eq!(v.d(), self.d(), "activity dimensionality mismatch");
        let mut hist = self.level_hist.clone();
        for &(s, e) in v.runs() {
            for k in s..e {
                let old = self.counts[k as usize] as usize;
                hist[old] -= 1;
                if old + 1 == hist.len() {
                    hist.push(0);
                }
                hist[old + 1] += 1;
            }
        }
        hist
    }

    /// Whether adding `v` keeps every epoch at or below `r` concurrently
    /// active members (the *hard* vector-capacity test). Early-exits on the
    /// first violating epoch, so rejections are cheap — the common case in
    /// First-Fit packing.
    ///
    /// # Panics
    /// Panics if the vector's dimensionality differs from the group's.
    pub fn fits_within(&self, v: &ActivityVector, r: u32) -> bool {
        assert_eq!(v.d(), self.d(), "activity dimensionality mismatch");
        // The group itself may already exceed r somewhere v is inactive;
        // hard capacity only constrains the epochs v touches plus the
        // existing profile.
        if self.epochs_above(r) > 0 {
            return false;
        }
        for &(s, e) in v.runs() {
            for k in s..e {
                if u32::from(self.counts[k as usize]) + 1 > r {
                    return false;
                }
            }
        }
        true
    }

    /// The TTP that would result from adding `v`, without committing.
    pub fn ttp_with(&self, v: &ActivityVector, r: u32) -> f64 {
        if self.counts.is_empty() {
            return 1.0;
        }
        let hist = self.level_hist_with(v);
        let above: u64 = hist.iter().skip(r as usize + 1).sum();
        1.0 - above as f64 / self.counts.len() as f64
    }

    /// Dense recomputation of the TTP from scratch, used as the reference
    /// implementation in tests and as the baseline of the representation
    /// ablation bench.
    pub fn ttp_dense(vectors: &[&ActivityVector], d: u32, r: u32) -> f64 {
        if d == 0 {
            return 1.0;
        }
        let mut counts = vec![0u32; d as usize];
        for v in vectors {
            for k in v.iter_epochs() {
                counts[k as usize] += 1;
            }
        }
        let ok = counts.iter().filter(|&&c| c <= r).count();
        ok as f64 / d as f64
    }
}

/// Compares two candidate level histograms by the paper's selection rule:
/// the better candidate is the one whose resulting concurrency profile is
/// lexicographically smaller *read from the highest level down* — i.e. first
/// minimize the maximum number of concurrently active tenants, then the time
/// share at that maximum, then at the next level, and so on (the tie-break
/// illustrated in Figure 5.3a, where `T2` beats `T4` because it leaves fewer
/// epochs at the 1-active level).
pub fn compare_level_hists(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let max_a = a.iter().rposition(|&n| n > 0).unwrap_or(0);
    let max_b = b.iter().rposition(|&n| n > 0).unwrap_or(0);
    match max_a.cmp(&max_b) {
        Ordering::Equal => {}
        other => return other,
    }
    // Equal max level: compare occupancy from the top down. Levels 0 is
    // excluded — "fewer idle epochs" is not a quality signal.
    for level in (1..=max_a).rev() {
        match a[level].cmp(&b[level]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(epochs: &[u32], d: u32) -> ActivityVector {
        ActivityVector::from_epochs(epochs.to_vec(), d)
    }

    #[test]
    fn empty_group_is_fully_compliant() {
        let h = ActiveCountHistogram::new(10);
        assert_eq!(h.ttp(0), 1.0);
        assert_eq!(h.max_level(), 0);
        assert_eq!(h.epochs_above(0), 0);
    }

    #[test]
    fn add_updates_counts_and_hist() {
        let mut h = ActiveCountHistogram::new(10);
        h.add(&av(&[0, 1, 2], 10));
        h.add(&av(&[2, 3], 10));
        assert_eq!(h.members(), 2);
        assert_eq!(h.max_level(), 2);
        // counts: [1,1,2,1,0,0,0,0,0,0]
        assert_eq!(h.epochs_above(0), 4);
        assert_eq!(h.epochs_above(1), 1);
        assert_eq!(h.epochs_above(2), 0);
        assert!((h.ttp(1) - 0.9).abs() < 1e-12);
        assert!((h.ttp(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn candidate_evaluation_matches_commit() {
        let mut h = ActiveCountHistogram::new(12);
        h.add(&av(&[0, 1, 5, 6], 12));
        h.add(&av(&[1, 2, 6], 12));
        let candidate = av(&[1, 6, 7, 11], 12);
        let predicted = h.level_hist_with(&candidate);
        let predicted_ttp = h.ttp_with(&candidate, 2);
        h.add(&candidate);
        let committed: Vec<u64> = h.level_hist().to_vec();
        // Compare up to the shorter trailing-zero tail.
        let n = predicted.len().max(committed.len());
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        for i in 0..n {
            assert_eq!(get(&predicted, i), get(&committed, i), "level {i}");
        }
        assert!((predicted_ttp - h.ttp(2)).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_dense_reference() {
        let d = 40;
        let vs = [
            av(&[0, 1, 2, 10, 11, 30], d),
            av(&[2, 3, 11, 31], d),
            av(&[2, 11, 30, 31, 32], d),
            av(&[5], d),
        ];
        let mut h = ActiveCountHistogram::new(d);
        for v in &vs {
            h.add(v);
        }
        let refs: Vec<&ActivityVector> = vs.iter().collect();
        for r in 0..4 {
            assert!(
                (h.ttp(r) - ActiveCountHistogram::ttp_dense(&refs, d, r)).abs() < 1e-12,
                "r = {r}"
            );
        }
    }

    #[test]
    fn paper_figure_5_1_count_example() {
        // S = {T1, T4, T5, T6} of Figure 5.1 sums to
        // <2,2,2,2,4,3,2,1,2,1>; COUNT^{<=3} = 9 of 10 epochs.
        let d = 10;
        let t1 = av(&[0, 1, 2, 3, 4, 5], d);
        let t4 = av(&[4, 5, 6, 8, 9], d);
        let t5 = av(&[0, 1, 4, 5], d);
        let t6 = av(&[2, 3, 4, 6, 7, 8], d);
        let mut h = ActiveCountHistogram::new(d);
        for v in [&t1, &t4, &t5, &t6] {
            h.add(v);
        }
        assert_eq!(h.epochs_above(3), 1);
        assert!((h.ttp(3) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fits_within_matches_full_evaluation() {
        let mut h = ActiveCountHistogram::new(12);
        h.add(&av(&[0, 1, 5], 12));
        h.add(&av(&[1, 5], 12));
        // counts: 1,2,0,0,0,2,0,...
        let cand = av(&[1, 2], 12);
        assert!(!h.fits_within(&cand, 2)); // epoch 1 would reach 3
        assert!(h.fits_within(&cand, 3));
        // Disjoint candidate: fits as long as the group itself is within r.
        let disjoint = av(&[3, 4], 12);
        assert!(h.fits_within(&disjoint, 2));
        assert!(
            !h.fits_within(&disjoint, 1),
            "the group already has an epoch at 2"
        );
        // An already-violating group accepts nobody under hard capacity.
        let mut over = ActiveCountHistogram::new(4);
        for _ in 0..3 {
            over.add(&av(&[0], 4));
        }
        assert!(!over.fits_within(&av(&[2], 4), 2));
    }

    #[test]
    fn hist_comparison_prefers_lower_max_level() {
        // a: max level 1; b: max level 2 -> a wins.
        let a = vec![5, 5, 0];
        let b = vec![6, 2, 2];
        assert_eq!(compare_level_hists(&a, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn hist_comparison_breaks_ties_from_the_top_down() {
        // Same max level and occupancy there; fewer epochs at level 1 wins
        // (the Figure 5.3a tie-break).
        let a = vec![3, 7, 0];
        let b = vec![2, 8, 0];
        assert_eq!(compare_level_hists(&a, &b), std::cmp::Ordering::Less);
        let c = vec![1, 4, 5];
        let e = vec![0, 5, 5];
        assert_eq!(compare_level_hists(&c, &e), std::cmp::Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn dimension_mismatch_panics() {
        let mut h = ActiveCountHistogram::new(10);
        h.add(&av(&[0], 11));
    }
}
