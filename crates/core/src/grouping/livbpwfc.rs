//! The Largest Item Vector Bin Packing Problem with Fuzzy Capacity
//! (LIVBPwFC), Chapter 5 and Appendix 9.1.
//!
//! * **Item** — tenant `T_i`, characterized by `(A_i, n_i)`: its activity
//!   vector over `d` epochs and its requested node count.
//! * **Bin** — tenant-group `TG_j` with fuzzy capacity `(B_j, P)`:
//!   a set `S` fits iff `COUNT^{≤R}(Σ_{T_i∈S} A_i) / d ≥ P` — i.e. in at
//!   least `P` of the epochs at most `R` members are concurrently active.
//! * **Objective** — minimize `Σ_j R · max_{i∈TG_j} n_i`: under the
//!   tenant-driven design each group is served by `A = R` MPPDBs sized for
//!   its largest member, so only the largest item of each bin costs nodes.
//!
//! The classic vector bin packing problem is the special case `P = 100%`
//! with `n_i` ignored; LIVBPwFC is therefore NP-hard.

use crate::activity::ActivityVector;
use crate::error::{ThriftyError, ThriftyResult};
use crate::grouping::histogram::ActiveCountHistogram;
use crate::tenant::Tenant;
use serde::{Deserialize, Serialize};

/// One instance of the LIVBPwFC.
#[derive(Clone, Debug)]
pub struct GroupingProblem {
    /// The tenants (items).
    pub tenants: Vec<Tenant>,
    /// `activities[i]` is tenant `i`'s activity vector; all vectors share
    /// the same dimensionality `d`.
    pub activities: Vec<ActivityVector>,
    /// Replication factor `R` — also the per-group concurrency budget.
    pub replication: u32,
    /// Performance SLA guarantee `P` as a fraction in `(0, 1]`
    /// (Table 7.1 default 0.999).
    pub sla_p: f64,
}

impl GroupingProblem {
    /// Starts building a problem instance with Table 7.1 defaults
    /// (`R = 3`, `P = 0.999`) — the validating construction surface.
    ///
    /// ```
    /// use thrifty::prelude::*;
    /// let problem = GroupingProblem::builder()
    ///     .tenant(Tenant::new(TenantId(0), 4, 400.0),
    ///             ActivityVector::from_epochs(vec![0, 1], 10))
    ///     .replication(2)
    ///     .sla_p(0.99)
    ///     .build()
    ///     .expect("consistent inputs");
    /// assert_eq!(problem.len(), 1);
    /// ```
    pub fn builder() -> GroupingProblemBuilder {
        GroupingProblemBuilder::default()
    }

    /// Creates a problem instance from pre-validated parts. Prefer
    /// [`GroupingProblem::builder`], which reports inconsistent inputs as
    /// a [`ThriftyError`] instead of panicking and also rejects an empty
    /// tenant population.
    ///
    /// # Panics
    /// Panics if inputs are inconsistent (length mismatch, mixed `d`,
    /// `R = 0`, or `P` outside `(0, 1]`).
    pub fn new(
        tenants: Vec<Tenant>,
        activities: Vec<ActivityVector>,
        replication: u32,
        sla_p: f64,
    ) -> Self {
        assert_eq!(
            tenants.len(),
            activities.len(),
            "one activity vector per tenant"
        );
        assert!(replication >= 1, "replication factor must be at least 1");
        assert!(
            sla_p > 0.0 && sla_p <= 1.0,
            "P must lie in (0, 1], got {sla_p}"
        );
        if let Some(first) = activities.first() {
            assert!(
                activities.iter().all(|a| a.d() == first.d()),
                "all activity vectors must share the same epoch count"
            );
        }
        GroupingProblem {
            tenants,
            activities,
            replication,
            sla_p,
        }
    }

    /// Number of tenants `T`.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the instance has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Epoch count `d`.
    pub fn d(&self) -> u32 {
        self.activities.first().map_or(0, ActivityVector::d)
    }

    /// Total nodes requested by all tenants (`N = Σ n_i`) — the cost of
    /// serving everyone on dedicated clusters, before consolidation.
    pub fn nodes_requested(&self) -> u64 {
        self.tenants.iter().map(|t| u64::from(t.nodes)).sum()
    }

    /// The TTP of a member set: fraction of epochs with at most `R`
    /// concurrently active members.
    pub fn group_ttp(&self, members: &[usize]) -> f64 {
        let d = self.d();
        if d == 0 || members.is_empty() {
            return 1.0;
        }
        let mut h = ActiveCountHistogram::new(d);
        for &i in members {
            h.add(&self.activities[i]);
        }
        h.ttp(self.replication)
    }

    /// Whether a member set satisfies the fuzzy capacity constraint.
    pub fn group_feasible(&self, members: &[usize]) -> bool {
        self.group_ttp(members) >= self.sla_p
    }

    /// Nodes the tenant-driven design uses for a member set:
    /// `R · max n_i` (Property 1 with `U = n_1`).
    pub fn group_nodes(&self, members: &[usize]) -> u64 {
        let max_n = members
            .iter()
            .map(|&i| u64::from(self.tenants[i].nodes))
            .max()
            .unwrap_or(0);
        u64::from(self.replication) * max_n
    }
}

/// Validating builder for [`GroupingProblem`] — see
/// [`GroupingProblem::builder`].
///
/// Follows the same discipline as
/// [`ServiceConfigBuilder::build`](crate::service::ServiceConfigBuilder):
/// every inconsistency surfaces as a
/// [`ThriftyError::InvalidConfig`] from [`build`](Self::build) rather
/// than a panic, so callers assembling problems from external data can
/// propagate with `?`.
#[derive(Clone, Debug)]
pub struct GroupingProblemBuilder {
    tenants: Vec<Tenant>,
    activities: Vec<ActivityVector>,
    replication: u32,
    sla_p: f64,
}

impl Default for GroupingProblemBuilder {
    fn default() -> Self {
        GroupingProblemBuilder {
            tenants: Vec::new(),
            activities: Vec::new(),
            replication: 3,
            sla_p: 0.999,
        }
    }
}

impl GroupingProblemBuilder {
    /// Sets the tenant list (paired index-wise with
    /// [`activities`](Self::activities)).
    pub fn tenants(mut self, tenants: Vec<Tenant>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Sets the activity vectors (paired index-wise with
    /// [`tenants`](Self::tenants)).
    pub fn activities(mut self, activities: Vec<ActivityVector>) -> Self {
        self.activities = activities;
        self
    }

    /// Appends one tenant together with its activity vector.
    pub fn tenant(mut self, tenant: Tenant, activity: ActivityVector) -> Self {
        self.tenants.push(tenant);
        self.activities.push(activity);
        self
    }

    /// Sets the replication factor `R` (default 3).
    pub fn replication(mut self, replication: u32) -> Self {
        self.replication = replication;
        self
    }

    /// Sets the performance SLA guarantee `P` (default 0.999).
    pub fn sla_p(mut self, sla_p: f64) -> Self {
        self.sla_p = sla_p;
        self
    }

    /// Validates the assembled instance.
    ///
    /// # Errors
    ///
    /// Returns [`ThriftyError::InvalidConfig`] if the tenant and activity
    /// lists differ in length, the population is empty, `R = 0`, `P` lies
    /// outside `(0, 1]`, or the activity vectors disagree on the epoch
    /// count `d`.
    pub fn build(self) -> ThriftyResult<GroupingProblem> {
        if self.tenants.len() != self.activities.len() {
            return Err(ThriftyError::InvalidConfig(
                "grouping problem needs one activity vector per tenant",
            ));
        }
        if self.activities.is_empty() {
            return Err(ThriftyError::InvalidConfig(
                "grouping problem needs at least one tenant",
            ));
        }
        if self.replication < 1 {
            return Err(ThriftyError::InvalidConfig(
                "replication factor must be at least 1",
            ));
        }
        if !(self.sla_p > 0.0 && self.sla_p <= 1.0) {
            return Err(ThriftyError::InvalidConfig("P must lie in (0, 1]"));
        }
        if let Some(first) = self.activities.first() {
            if !self.activities.iter().all(|a| a.d() == first.d()) {
                return Err(ThriftyError::InvalidConfig(
                    "all activity vectors must share the same epoch count",
                ));
            }
        }
        Ok(GroupingProblem {
            tenants: self.tenants,
            activities: self.activities,
            replication: self.replication,
            sla_p: self.sla_p,
        })
    }
}

/// A bin: indices of the tenants assigned to one tenant-group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantGroup {
    /// Indices into [`GroupingProblem::tenants`].
    pub members: Vec<usize>,
}

/// A complete assignment of every tenant to exactly one tenant-group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupingSolution {
    /// The tenant-groups.
    pub groups: Vec<TenantGroup>,
}

impl GroupingSolution {
    /// Total nodes used: `Σ_j R · max_{i∈TG_j} n_i`.
    pub fn nodes_used(&self, problem: &GroupingProblem) -> u64 {
        self.groups
            .iter()
            .map(|g| problem.group_nodes(&g.members))
            .sum()
    }

    /// Consolidation effectiveness: fraction of requested nodes saved
    /// (the y-axis of Figures 7.1a–7.6a).
    pub fn effectiveness(&self, problem: &GroupingProblem) -> f64 {
        let requested = problem.nodes_requested();
        if requested == 0 {
            return 0.0;
        }
        1.0 - self.nodes_used(problem) as f64 / requested as f64
    }

    /// Mean members per group (the y-axis of Figures 7.1b–7.6b).
    pub fn average_group_size(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        let members: usize = self.groups.iter().map(|g| g.members.len()).sum();
        members as f64 / self.groups.len() as f64
    }

    /// Checks that the solution is a partition of all tenants and every
    /// group satisfies the fuzzy capacity constraint. Returns a description
    /// of the first violation, if any.
    ///
    /// # Errors
    /// A human-readable description of the first violation: an empty
    /// group, a tenant missing or assigned twice, or a group exceeding
    /// the fuzzy capacity bound.
    pub fn validate(&self, problem: &GroupingProblem) -> Result<(), String> {
        let mut seen = vec![false; problem.len()];
        for (gi, g) in self.groups.iter().enumerate() {
            if g.members.is_empty() {
                return Err(format!("group {gi} is empty"));
            }
            for &i in &g.members {
                if i >= problem.len() {
                    return Err(format!("group {gi} references unknown tenant {i}"));
                }
                if seen[i] {
                    return Err(format!("tenant {i} assigned twice"));
                }
                seen[i] = true;
            }
            let ttp = problem.group_ttp(&g.members);
            if ttp < problem.sla_p {
                return Err(format!(
                    "group {gi} violates fuzzy capacity: TTP {ttp:.6} < P {:.6}",
                    problem.sla_p
                ));
            }
        }
        if let Some(i) = seen.iter().position(|s| !s) {
            return Err(format!("tenant {i} is unassigned"));
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::tenant::TenantId;

    /// The six tenants of Figure 5.1 (0-indexed epochs over d = 10).
    ///
    /// The thesis never prints the raw vectors, but they are fully
    /// determined by the worked example: the count identity
    /// `Σ_{T1,T4,T5,T6} = <2,2,2,2,4,3,2,1,2,1>` (Chapter 5), every
    /// before/after histogram of the Figure 5.3 walk-through, and its
    /// footnote ("with T2–T5 only, epochs t1, t3, t4, and t8 have 1 active
    /// tenant"). These vectors satisfy all of them.
    pub(crate) fn figure_5_1_problem(r: u32, p: f64) -> GroupingProblem {
        let d = 10;
        let epochs: [&[u32]; 6] = [
            &[0, 1, 2, 3, 4, 5], // T1: active t1..t6
            &[6, 7, 8, 9],       // T2
            &[1, 2, 3],          // T3 (least active seed of Figure 5.3)
            &[4, 5, 6, 8, 9],    // T4
            &[0, 1, 4, 5],       // T5
            &[2, 3, 4, 6, 7, 8], // T6
        ];
        let tenants = (0..6)
            .map(|i| Tenant::new(TenantId(i as u32), 4, 400.0))
            .collect();
        let activities = epochs
            .iter()
            .map(|e| ActivityVector::from_epochs(e.to_vec(), d))
            .collect();
        GroupingProblem::new(tenants, activities, r, p)
    }

    #[test]
    fn problem_accessors() {
        let p = figure_5_1_problem(3, 0.999);
        assert_eq!(p.len(), 6);
        assert_eq!(p.d(), 10);
        assert_eq!(p.nodes_requested(), 24);
        assert!(!p.is_empty());
    }

    #[test]
    fn group_ttp_matches_paper_count_example() {
        let p = figure_5_1_problem(3, 0.999);
        // S = {T1, T4, T5, T6} -> 9 of 10 epochs have <= 3 active.
        assert!((p.group_ttp(&[0, 3, 4, 5]) - 0.9).abs() < 1e-12);
        assert!(!p.group_feasible(&[0, 3, 4, 5]));
        assert!(p.group_feasible(&[1, 2]));
    }

    #[test]
    fn nodes_and_effectiveness() {
        let p = figure_5_1_problem(3, 0.9);
        let sol = GroupingSolution {
            groups: vec![
                TenantGroup {
                    members: vec![0, 1, 2],
                },
                TenantGroup {
                    members: vec![3, 4, 5],
                },
            ],
        };
        // Each group: 3 replicas x 4 nodes = 12; two groups = 24 = requested.
        assert_eq!(sol.nodes_used(&p), 24);
        assert!((sol.effectiveness(&p) - 0.0).abs() < 1e-12);
        assert!((sol.average_group_size() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_partition_errors() {
        let p = figure_5_1_problem(3, 0.5);
        let missing = GroupingSolution {
            groups: vec![TenantGroup {
                members: vec![0, 1, 2, 3, 4],
            }],
        };
        assert!(missing.validate(&p).unwrap_err().contains("unassigned"));
        let dup = GroupingSolution {
            groups: vec![
                TenantGroup {
                    members: vec![0, 1, 2, 3, 4, 5],
                },
                TenantGroup { members: vec![0] },
            ],
        };
        assert!(dup.validate(&p).unwrap_err().contains("twice"));
    }

    #[test]
    fn validation_catches_capacity_violations() {
        let p = figure_5_1_problem(1, 0.999);
        let sol = GroupingSolution {
            groups: vec![TenantGroup {
                members: (0..6).collect(),
            }],
        };
        assert!(sol.validate(&p).unwrap_err().contains("fuzzy capacity"));
    }

    #[test]
    #[should_panic(expected = "one activity vector per tenant")]
    fn mismatched_lengths_panic() {
        let _ = GroupingProblem::new(vec![Tenant::new(TenantId(0), 2, 200.0)], vec![], 3, 0.999);
    }

    #[test]
    fn builder_accepts_consistent_inputs() {
        let problem = GroupingProblem::builder()
            .tenant(
                Tenant::new(TenantId(0), 4, 400.0),
                ActivityVector::from_epochs(vec![0, 1], 10),
            )
            .tenant(
                Tenant::new(TenantId(1), 4, 400.0),
                ActivityVector::from_epochs(vec![5], 10),
            )
            .replication(2)
            .sla_p(0.99)
            .build()
            .expect("consistent inputs");
        assert_eq!(problem.len(), 2);
        assert_eq!(problem.replication, 2);
        assert!((problem.sla_p - 0.99).abs() < 1e-12);
    }

    #[test]
    fn builder_defaults_match_table_7_1() {
        let problem = GroupingProblem::builder()
            .tenant(
                Tenant::new(TenantId(0), 4, 400.0),
                ActivityVector::empty(10),
            )
            .build()
            .expect("defaults are valid");
        assert_eq!(problem.replication, 3);
        assert!((problem.sla_p - 0.999).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_inconsistent_inputs() {
        use crate::error::ThriftyError;
        let t = Tenant::new(TenantId(0), 4, 400.0);
        let v = || ActivityVector::empty(10);
        let cases: Vec<(GroupingProblemBuilder, &str)> = vec![
            (GroupingProblem::builder(), "at least one tenant"),
            (
                GroupingProblem::builder().tenants(vec![t]),
                "one activity vector per tenant",
            ),
            (
                GroupingProblem::builder().tenant(t, v()).replication(0),
                "at least 1",
            ),
            (
                GroupingProblem::builder().tenant(t, v()).sla_p(0.0),
                "(0, 1]",
            ),
            (
                GroupingProblem::builder().tenant(t, v()).sla_p(1.5),
                "(0, 1]",
            ),
            (
                GroupingProblem::builder()
                    .tenant(t, v())
                    .tenant(t, ActivityVector::empty(20)),
                "same epoch count",
            ),
        ];
        for (builder, needle) in cases {
            match builder.build() {
                Err(ThriftyError::InvalidConfig(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
                }
                other => panic!("expected InvalidConfig({needle}), got {other:?}"),
            }
        }
    }
}
