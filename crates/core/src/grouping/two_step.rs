//! The 2-step tenant-grouping heuristic (Algorithm 2, Chapter 5).
//!
//! **Step 1** puts all tenants requesting the same number of nodes into the
//! same *initial group*: the objective charges each tenant-group for its
//! largest member (`R · max n_i`), so mixing sizes wastes the smaller
//! tenants' slack — grouping ten 6-node tenants saves 42 nodes where the
//! mixed toy example of Figure 4.1 saves only 24.
//!
//! **Step 2** splits every initial group into tenant-groups greedily:
//!
//! 1. Seed a new group with the least active remaining tenant.
//! 2. Repeatedly pick the remaining tenant `T_best` that minimizes the
//!    increase in the time share of the *maximum* concurrent-active level
//!    (ties resolved at the next level down — see
//!    [`crate::grouping::histogram::compare_level_hists`]),
//!    and add it while the group's TTP stays at or above `P`.
//! 3. When adding `T_best` would drop the TTP below `P`, close the group
//!    and start the next one (Algorithm 2 lines 9–11: the group closes on
//!    the *best* candidate's failure; it does not shop for a worse-profile
//!    candidate that happens to still fit).
//!
//! Complexity: `O(Σ_buckets g_b²)` candidate evaluations, each
//! `O(active epochs of the candidate)` thanks to the incremental histogram.

use crate::grouping::histogram::{compare_level_hists, ActiveCountHistogram};
use crate::grouping::livbpwfc::{GroupingProblem, GroupingSolution, TenantGroup};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Tie-breaking depth for candidate selection — the subject of the
/// tie-breaking ablation (DESIGN.md §6.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreaking {
    /// Compare the full level histogram from the maximum level down
    /// (the paper's rule, illustrated in Figure 5.3a).
    #[default]
    FullLexicographic,
    /// Compare only (max level, epochs at max level); deeper ties fall
    /// through to insertion order.
    TopLevelOnly,
}

/// When does a growing tenant-group close?
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GroupClosing {
    /// "The adding of a tenant to a tenant-group stops only when that would
    /// result in TTP < P" (Chapter 5): if the activity-best candidate does
    /// not fit, fall back to the best candidate that still fits; close only
    /// when nobody fits. The default.
    #[default]
    FillUntilNoneFits,
    /// The literal Algorithm 2 lines 5–11: test only `T_best`; close the
    /// group the first time it fails. An ablation — it closes groups early
    /// because the lexicographic activity metric does not minimize the
    /// violating-epoch count that feasibility depends on.
    CloseOnBestFailure,
}

/// Configuration of the 2-step heuristic.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoStepConfig {
    /// Tie-breaking depth (default: the paper's full rule).
    pub tie_breaking: TieBreaking,
    /// If `true`, skip Step 1 and run Step 2 over the whole tenant pool —
    /// the "no homogeneous initial groups" ablation.
    pub skip_size_grouping: bool,
    /// Group-closing policy.
    pub closing: GroupClosing,
}

/// Runs the 2-step tenant-grouping heuristic with default configuration.
pub fn two_step_grouping(problem: &GroupingProblem) -> GroupingSolution {
    two_step_grouping_with(problem, TwoStepConfig::default())
}

/// Runs the 2-step heuristic with explicit configuration.
pub fn two_step_grouping_with(
    problem: &GroupingProblem,
    config: TwoStepConfig,
) -> GroupingSolution {
    let mut groups = Vec::new();
    for bucket in two_step_buckets(problem, config) {
        split_bucket(problem, &bucket, config, &mut groups);
    }
    GroupingSolution { groups }
}

/// Step 1 alone: partitions the tenant indices into the homogeneous
/// node-size buckets the heuristic splits independently, in the order it
/// processes them (largest node size first). With `skip_size_grouping`
/// the whole pool is a single bucket.
///
/// Buckets are independent shards: Step 2 never looks across a bucket
/// boundary, so splitting them concurrently — see
/// `thrifty_bench::sharded::two_step_grouping_sharded` — and
/// concatenating the per-bucket groups in this order reproduces
/// [`two_step_grouping_with`] byte for byte.
pub fn two_step_buckets(problem: &GroupingProblem, config: TwoStepConfig) -> Vec<Vec<usize>> {
    if config.skip_size_grouping {
        return vec![(0..problem.len()).collect()];
    }
    let mut buckets: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, t) in problem.tenants.iter().enumerate() {
        buckets.entry(t.nodes).or_default().push(i);
    }
    buckets.into_values().rev().collect()
}

/// Step 2 alone: splits one Step-1 bucket into tenant-groups and returns
/// them in creation order. `bucket` must come from [`two_step_buckets`]
/// (or otherwise hold indices into `problem`).
pub fn split_size_bucket(
    problem: &GroupingProblem,
    bucket: &[usize],
    config: TwoStepConfig,
) -> Vec<TenantGroup> {
    let mut out = Vec::new();
    split_bucket(problem, bucket, config, &mut out);
    out
}

/// Step 2: split one initial group into tenant-groups.
fn split_bucket(
    problem: &GroupingProblem,
    bucket: &[usize],
    config: TwoStepConfig,
    out: &mut Vec<TenantGroup>,
) {
    let d = problem.d();
    let mut remaining: Vec<usize> = bucket.to_vec();
    while !remaining.is_empty() {
        // Seed with the least active remaining tenant (ties: lowest index,
        // i.e. lowest tenant id, for determinism).
        let Some(seed_pos) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| (problem.activities[i].active_epochs(), i))
            .map(|(pos, _)| pos)
        else {
            break; // unreachable: the loop condition holds remaining non-empty
        };
        let seed = remaining.swap_remove(seed_pos);
        let mut hist = ActiveCountHistogram::new(d);
        hist.add(&problem.activities[seed]);
        let mut members = vec![seed];

        // Grow the group until no further tenant fits.
        while !remaining.is_empty() {
            let best_pos = select_best(problem, &hist, &remaining, config, false);
            let candidate = remaining[best_pos];
            let ttp = hist.ttp_with(&problem.activities[candidate], problem.replication);
            if ttp >= problem.sla_p {
                hist.add(&problem.activities[candidate]);
                members.push(candidate);
                remaining.swap_remove(best_pos);
                continue;
            }
            if config.closing == GroupClosing::CloseOnBestFailure {
                break; // the literal Algorithm 2 line 9
            }
            // The activity-best candidate does not fit; shop for the best
            // candidate that still does.
            let feasible_pos = select_best(problem, &hist, &remaining, config, true);
            let candidate = remaining[feasible_pos];
            if hist.ttp_with(&problem.activities[candidate], problem.replication) >= problem.sla_p {
                hist.add(&problem.activities[candidate]);
                members.push(candidate);
                remaining.swap_remove(feasible_pos);
            } else {
                break; // nobody fits: close the group
            }
        }
        out.push(TenantGroup { members });
    }
}

/// Picks the candidate minimizing the increase in the time share of the
/// maximum concurrent-active level. On full ties the *later* candidate in
/// iteration order wins — this reproduces the published walk-through, where
/// the all-ties round of Figure 5.3d selects `T6`. With `feasible_only`,
/// candidates whose addition would violate the fuzzy capacity are skipped
/// (unless none fits, in which case position 0 is returned and the caller's
/// re-check closes the group).
fn select_best(
    problem: &GroupingProblem,
    hist: &ActiveCountHistogram,
    remaining: &[usize],
    config: TwoStepConfig,
    feasible_only: bool,
) -> usize {
    debug_assert!(!remaining.is_empty());
    let d = hist.d();
    let mut best: Option<(usize, Vec<u64>)> = None;
    for (pos, &i) in remaining.iter().enumerate() {
        // One scan per candidate: the resulting level histogram also decides
        // feasibility (epochs above R), so the feasible-only fallback costs
        // no extra pass.
        let cand_hist = hist.level_hist_with(&problem.activities[i]);
        if feasible_only && d > 0 {
            let above: u64 = cand_hist
                .iter()
                .skip(problem.replication as usize + 1)
                .sum();
            let ttp = 1.0 - above as f64 / f64::from(d);
            if ttp < problem.sla_p {
                continue;
            }
        }
        let better = match &best {
            None => true,
            Some((_, best_hist)) => {
                let ord = match config.tie_breaking {
                    TieBreaking::FullLexicographic => compare_level_hists(&cand_hist, best_hist),
                    TieBreaking::TopLevelOnly => compare_top_level(&cand_hist, best_hist),
                };
                ord != Ordering::Greater
            }
        };
        if better {
            best = Some((pos, cand_hist));
        }
    }
    best.map(|(pos, _)| pos).unwrap_or(0)
}

/// Shallow comparison: (max level, epochs at max level) only.
fn compare_top_level(a: &[u64], b: &[u64]) -> Ordering {
    let max_a = a.iter().rposition(|&n| n > 0).unwrap_or(0);
    let max_b = b.iter().rposition(|&n| n > 0).unwrap_or(0);
    max_a.cmp(&max_b).then_with(|| {
        let at_a = if max_a == 0 { 0 } else { a[max_a] };
        let at_b = if max_b == 0 { 0 } else { b[max_b] };
        at_a.cmp(&at_b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityVector;
    use crate::grouping::livbpwfc::tests::figure_5_1_problem;
    use crate::tenant::{Tenant, TenantId};

    #[test]
    fn paper_walkthrough() {
        // Figure 5.3, R = 3, P = 99.9%: the heuristic seeds TG1 with T3,
        // then adds T2, T5, T4, T6 in that order; T1 would drop the TTP to
        // 90% and opens TG2.
        let problem = figure_5_1_problem(3, 0.999);
        let solution = two_step_grouping(&problem);
        assert_eq!(solution.groups.len(), 2);
        // Tenant indices are 0-based: T3 = index 2, etc.
        assert_eq!(solution.groups[0].members, vec![2, 1, 4, 3, 5]);
        assert_eq!(solution.groups[1].members, vec![0]);
        solution.validate(&problem).expect("solution must be valid");
        // "After TG1 has five tenants T2..T6, the maximum number of active
        // tenants is only three."
        assert!((problem.group_ttp(&solution.groups[0].members) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn walkthrough_intermediate_choice_matches_figure_5_3a() {
        // With TG1 = {T3}, the candidate evaluation of Figure 5.3a must
        // choose T2 (keeps max level at 1 with the smallest level-1 share).
        let problem = figure_5_1_problem(3, 0.999);
        let mut hist = ActiveCountHistogram::new(problem.d());
        hist.add(&problem.activities[2]); // T3
        let remaining = vec![0, 1, 3, 4, 5]; // T1, T2, T4, T5, T6
        let pos = select_best(&problem, &hist, &remaining, TwoStepConfig::default(), false);
        assert_eq!(remaining[pos], 1, "T2 must be selected");
    }

    #[test]
    fn solution_is_always_a_valid_partition() {
        for p in [0.5, 0.9, 0.999, 1.0] {
            for r in 1..=4 {
                let problem = figure_5_1_problem(r, p);
                let solution = two_step_grouping(&problem);
                solution
                    .validate(&problem)
                    .unwrap_or_else(|e| panic!("r={r} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn r_equal_one_forbids_concurrent_overlap_beyond_p() {
        // With R = 1 and P = 1.0, no two tenants that are ever concurrently
        // active may share a group.
        let problem = figure_5_1_problem(1, 1.0);
        let solution = two_step_grouping(&problem);
        solution.validate(&problem).unwrap();
        for g in &solution.groups {
            assert!((problem.group_ttp(&g.members) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn step_one_separates_node_sizes() {
        // Two always-inactive tenants of different sizes must land in
        // different groups (homogeneous initial groups), even though their
        // activities would trivially fit together.
        let d = 10;
        let tenants = vec![
            Tenant::new(TenantId(0), 2, 200.0),
            Tenant::new(TenantId(1), 8, 800.0),
        ];
        let activities = vec![ActivityVector::empty(d), ActivityVector::empty(d)];
        let problem = GroupingProblem::new(tenants, activities, 3, 0.999);
        let solution = two_step_grouping(&problem);
        assert_eq!(solution.groups.len(), 2);
        // The ablation switch packs them together instead.
        let ablated = two_step_grouping_with(
            &problem,
            TwoStepConfig {
                skip_size_grouping: true,
                ..TwoStepConfig::default()
            },
        );
        assert_eq!(ablated.groups.len(), 1);
    }

    #[test]
    fn inactive_tenants_all_share_one_group() {
        let d = 100;
        let n = 50;
        let tenants: Vec<Tenant> = (0..n).map(|i| Tenant::new(TenantId(i), 4, 400.0)).collect();
        let activities = vec![ActivityVector::empty(d); n as usize];
        let problem = GroupingProblem::new(tenants, activities, 3, 0.999);
        let solution = two_step_grouping(&problem);
        assert_eq!(solution.groups.len(), 1);
        assert_eq!(solution.groups[0].members.len(), n as usize);
    }

    #[test]
    fn always_active_tenants_get_r_per_group() {
        // Tenants active in every epoch: at most R of them fit per group
        // (any R are concurrently active everywhere; an (R+1)-th violates
        // every epoch).
        let d = 50;
        let n = 10usize;
        let full = ActivityVector::from_epochs((0..d).collect(), d);
        let tenants: Vec<Tenant> = (0..n)
            .map(|i| Tenant::new(TenantId(i as u32), 4, 400.0))
            .collect();
        let problem = GroupingProblem::new(tenants, vec![full; n], 3, 0.999);
        let solution = two_step_grouping(&problem);
        assert_eq!(solution.groups.len(), 4); // ceil(10 / 3)
        assert!(solution.groups.iter().all(|g| g.members.len() <= 3));
        solution.validate(&problem).unwrap();
    }

    #[test]
    fn empty_problem_yields_empty_solution() {
        let problem = GroupingProblem::new(vec![], vec![], 3, 0.999);
        let solution = two_step_grouping(&problem);
        assert!(solution.groups.is_empty());
    }

    #[test]
    fn buckets_then_splits_reproduce_the_solver() {
        // The exposed shard surface (Step-1 buckets + per-bucket Step-2)
        // must compose back into exactly what the one-call solver returns.
        let d = 10;
        let tenants = vec![
            Tenant::new(TenantId(0), 2, 200.0),
            Tenant::new(TenantId(1), 8, 800.0),
            Tenant::new(TenantId(2), 2, 200.0),
            Tenant::new(TenantId(3), 8, 800.0),
        ];
        let activities = vec![
            ActivityVector::from_epochs(vec![0, 1], d),
            ActivityVector::from_epochs(vec![2], d),
            ActivityVector::from_epochs(vec![5], d),
            ActivityVector::empty(d),
        ];
        let problem = GroupingProblem::new(tenants, activities, 2, 0.999);
        let config = TwoStepConfig::default();
        let buckets = two_step_buckets(&problem, config);
        assert_eq!(buckets, vec![vec![1, 3], vec![0, 2]], "largest size first");
        let composed: Vec<TenantGroup> = buckets
            .iter()
            .flat_map(|b| split_size_bucket(&problem, b, config))
            .collect();
        let direct = two_step_grouping_with(&problem, config);
        assert_eq!(composed, direct.groups);

        let one = two_step_buckets(
            &problem,
            TwoStepConfig {
                skip_size_grouping: true,
                ..config
            },
        );
        assert_eq!(one, vec![vec![0, 1, 2, 3]], "ablation: a single bucket");
    }
}
