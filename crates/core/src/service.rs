//! The end-to-end Thrifty service loop.
//!
//! [`ThriftyService`] wires all components together against the simulated
//! cluster: the Deployment Master materializes the plan, the Query Router
//! (Algorithm 1) places every incoming query, the Tenant Activity Monitor
//! tracks per-group RT-TTP, the SLA layer grades every completion against
//! the tenant's dedicated-MPPDB baseline, and — when enabled — lightweight
//! elastic scaling moves over-active tenants onto freshly loaded MPPDBs
//! (Chapter 5.1). Replaying a §7.1 multi-tenant log through this loop is
//! how the Figure 7.7 experiment is produced.

use crate::billing::{Invoice, Tariff, UsageMeter};
use crate::design::DeploymentPlan;
use crate::error::{ThriftyError, ThriftyResult};
use crate::master::DeploymentMaster;
use crate::monitor::GroupActivityMonitor;
use crate::routing::{QueryRouter, RouteKind};
use crate::scaling::{identify_over_active, ScalingEvent};
use crate::sla::{SlaPolicy, SlaRecord, SlaSummary};
use crate::telemetry::{InstanceUtilization, Telemetry, TelemetryConfig, TelemetryEvent};
use crate::tenant::{Tenant, TenantId};
use mppdb_sim::cluster::{Cluster, ClusterConfig, QueryCompletion, SimEvent};
use mppdb_sim::error::SimError;
use mppdb_sim::failure::FailurePlan;
use mppdb_sim::instance::InstanceId;
use mppdb_sim::node::NodeId;
use mppdb_sim::query::{QueryId, QuerySpec, QueryTemplate, TemplateId};
use mppdb_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// RT-TTP trace sampling (for the Figure 7.7 time-series plots).
///
/// `#[non_exhaustive]`: construct via [`TraceConfig::new`] (fields stay
/// readable).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct TraceConfig {
    /// Which tenant-groups to sample.
    pub groups: Vec<usize>,
    /// Sampling interval in ms.
    pub interval_ms: u64,
}

impl TraceConfig {
    /// Samples the RT-TTP of `groups` every `interval_ms` of log time.
    pub fn new(groups: Vec<usize>, interval_ms: u64) -> Self {
        TraceConfig {
            groups,
            interval_ms,
        }
    }
}

/// Service configuration.
///
/// `#[non_exhaustive]`: construct via [`ServiceConfig::builder`] (or take
/// [`ServiceConfig::default`] as-is); fields stay readable. New knobs —
/// like [`TelemetryConfig`] in this revision — land behind the builder
/// without breaking existing callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// SLA evaluation policy.
    pub sla_policy: SlaPolicy,
    /// Performance SLA guarantee `P` (fraction) that triggers scaling.
    pub sla_p: f64,
    /// Whether lightweight elastic scaling is enabled.
    pub elastic_scaling: bool,
    /// RT-TTP monitoring window (paper: 24 h).
    pub monitor_window_ms: u64,
    /// Epoch size for over-active-tenant identification.
    pub scaling_epoch_ms: u64,
    /// Minimum spacing between scaling checks of the same group.
    pub scaling_check_interval_ms: u64,
    /// Optional RT-TTP trace sampling.
    pub trace: Option<TraceConfig>,
    /// Telemetry recording policy (on by default).
    pub telemetry: TelemetryConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            sla_policy: SlaPolicy::default(),
            sla_p: 0.999,
            elastic_scaling: true,
            monitor_window_ms: 24 * 3_600_000,
            scaling_epoch_ms: 10_000,
            scaling_check_interval_ms: 60_000,
            trace: None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Starts a fluent builder seeded with [`ServiceConfig::default`].
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder::default()
    }
}

/// Fluent builder for [`ServiceConfig`]. Every setter has the same name
/// as the field it sets; unset fields keep their default.
///
/// ```
/// use thrifty::prelude::*;
///
/// let config = ServiceConfig::builder()
///     .elastic_scaling(false)
///     .sla_p(0.99)
///     .telemetry(TelemetryConfig::disabled())
///     .build();
/// assert!(!config.elastic_scaling);
/// assert!(!config.telemetry.enabled);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the SLA evaluation policy.
    pub fn sla_policy(mut self, policy: SlaPolicy) -> Self {
        self.cfg.sla_policy = policy;
        self
    }

    /// Sets the performance guarantee `P` (fraction).
    pub fn sla_p(mut self, p: f64) -> Self {
        self.cfg.sla_p = p;
        self
    }

    /// Enables or disables lightweight elastic scaling.
    pub fn elastic_scaling(mut self, on: bool) -> Self {
        self.cfg.elastic_scaling = on;
        self
    }

    /// Sets the RT-TTP monitoring window in ms.
    pub fn monitor_window_ms(mut self, ms: u64) -> Self {
        self.cfg.monitor_window_ms = ms;
        self
    }

    /// Sets the epoch size for over-active-tenant identification in ms.
    pub fn scaling_epoch_ms(mut self, ms: u64) -> Self {
        self.cfg.scaling_epoch_ms = ms;
        self
    }

    /// Sets the minimum spacing between scaling checks of one group in ms.
    pub fn scaling_check_interval_ms(mut self, ms: u64) -> Self {
        self.cfg.scaling_check_interval_ms = ms;
        self
    }

    /// Enables RT-TTP trace sampling.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = Some(trace);
        self
    }

    /// Sets the telemetry recording policy.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ServiceConfig {
        self.cfg
    }
}

/// One RT-TTP sample of a traced group.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TtpSample {
    /// Sample instant on the *log* timeline (deployment offset removed).
    pub at_ms: u64,
    /// The tenant-group.
    pub group: usize,
    /// The group's RT-TTP at that instant.
    pub rt_ttp: f64,
}

/// The result of replaying a log through the service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Per-query SLA verdicts, in completion order.
    pub records: Vec<SlaRecord>,
    /// Aggregate compliance.
    pub summary: SlaSummary,
    /// Elastic-scaling actions taken.
    pub scaling_events: Vec<ScalingEvent>,
    /// RT-TTP trace samples (empty unless tracing was configured).
    pub ttp_trace: Vec<TtpSample>,
    /// Telemetry recorded along the way (empty when disabled).
    pub telemetry: crate::telemetry::TelemetrySnapshot,
}

/// An incoming query on the log timeline.
#[derive(Clone, Copy, Debug)]
pub struct IncomingQuery {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Submission instant on the log timeline.
    pub submit: SimTime,
    /// Template to execute.
    pub template: TemplateId,
    /// The tenant's dedicated-MPPDB latency for this query (the SLA).
    pub baseline: SimDuration,
}

struct PendingScale {
    instance: InstanceId,
    moved: Vec<TenantId>,
    event_idx: usize,
}

struct GroupRuntime {
    members: Vec<Tenant>,
    /// Router index -> instance id; index 0 is the tuning MPPDB.
    instances: Vec<InstanceId>,
    router: QueryRouter,
    monitor: GroupActivityMonitor,
    monitor_generation: u32,
    /// Node size of this group's MPPDBs (`n_1`), used to size scale-out
    /// instances.
    node_size: u32,
    pending_scale: Option<PendingScale>,
    last_scaling_check_ms: u64,
    /// `Some(parent)` for scale-out groups created by elastic scaling.
    parent: Option<usize>,
    /// Whether this group has ever gone through elastic scaling — its
    /// members join the re-consolidation list (Chapter 5.1).
    has_scaled: bool,
}

struct Inflight {
    tenant: TenantId,
    group: usize,
    mppdb: usize,
    log_submit: SimTime,
    /// Absolute instant of the *first* submission. Preserved across a
    /// scale-out migration so the achieved latency includes the stall the
    /// query suffered before it was re-routed.
    submitted_abs: SimTime,
    baseline: SimDuration,
    route: RouteKind,
    monitor_generation: u32,
}

/// The Thrifty MPPDBaaS service: deployment + run-time loop over the
/// simulated cluster.
pub struct ThriftyService {
    cluster: Cluster,
    config: ServiceConfig,
    templates: BTreeMap<TemplateId, QueryTemplate>,
    tenant_info: BTreeMap<TenantId, Tenant>,
    tenant_group: BTreeMap<TenantId, usize>,
    groups: Vec<GroupRuntime>,
    /// Keyed by a `BTreeMap` so every iteration (most importantly the
    /// scale-out migration sweep) visits queries in id order — replaying
    /// the same log twice reassigns identical query ids.
    inflight: BTreeMap<QueryId, Inflight>,
    records: Vec<SlaRecord>,
    scaling_events: Vec<ScalingEvent>,
    ttp_trace: Vec<TtpSample>,
    next_trace_ms: u64,
    /// Per-tenant historical activity ratios, used by over-active
    /// identification to detect deviation from history.
    historical_ratios: BTreeMap<TenantId, f64>,
    /// Pricing-model usage metering (Chapter 3).
    meter: UsageMeter,
    /// Metrics + event recorder (see [`crate::telemetry`]).
    telemetry: Telemetry,
    /// All log times are shifted by this offset: the deployment finishes
    /// provisioning first, then the observation horizon begins.
    offset_ms: u64,
}

impl ThriftyService {
    /// Deploys a plan onto a fresh cluster of `total_nodes` nodes and
    /// prepares the run-time state. `templates` supplies the latency
    /// profile of every template id the replayed log may reference.
    pub fn deploy(
        plan: &DeploymentPlan,
        total_nodes: usize,
        templates: impl IntoIterator<Item = QueryTemplate>,
        config: ServiceConfig,
    ) -> ThriftyResult<Self> {
        let mut cluster = Cluster::new(ClusterConfig::new(total_nodes));
        let deployment = DeploymentMaster::deploy(plan, &mut cluster)?;
        let offset_ms = deployment.ready_at.as_ms();

        let mut tenant_info = BTreeMap::new();
        let mut tenant_group = BTreeMap::new();
        let mut groups = Vec::with_capacity(plan.groups.len());
        for (gi, (group_plan, instances)) in plan
            .groups
            .iter()
            .zip(deployment.instances.iter())
            .enumerate()
        {
            for member in &group_plan.members {
                tenant_info.insert(member.id, *member);
                tenant_group.insert(member.id, gi);
            }
            groups.push(GroupRuntime {
                members: group_plan.members.clone(),
                instances: instances.clone(),
                router: QueryRouter::new(instances.len()),
                monitor: GroupActivityMonitor::new(
                    group_plan.replication(),
                    config.monitor_window_ms,
                    offset_ms,
                ),
                monitor_generation: 0,
                node_size: group_plan.largest_request(),
                pending_scale: None,
                last_scaling_check_ms: 0,
                parent: None,
                has_scaled: false,
            });
        }
        let next_trace_ms = offset_ms;
        let mut telemetry = Telemetry::new(config.telemetry);
        if telemetry.is_enabled() {
            // Pre-register the counter taxonomy at zero so every snapshot
            // carries the full set of names, touched or not.
            for name in [
                "queries.submitted",
                "queries.completed",
                "queries.cancelled",
                "queries.migrated",
                "route.sticky",
                "route.tuning_free",
                "route.other_free",
                "route.overflow",
                "sla.met",
                "sla.violated",
                "scaling.triggered",
                "scaling.activated",
                "tenants.migrated",
                "nodes.failed",
                "nodes.replaced",
                "nodes.replacement_deferred",
                "nodes.replacement_retried",
                "instances.provisioned",
            ] {
                telemetry.incr_by(name, 0);
            }
            // The initial deployment counts as provisioning at log time 0.
            for group in &groups {
                for &instance in &group.instances {
                    let nodes = cluster
                        .instance(instance)
                        .map(|i| i.nodes().len())
                        .unwrap_or(0);
                    telemetry.incr("instances.provisioned");
                    telemetry.record(TelemetryEvent::InstanceProvisioned {
                        at_ms: 0,
                        instance,
                        nodes,
                    });
                }
            }
            telemetry.set_gauge("groups", groups.len() as i64);
        }
        Ok(ThriftyService {
            cluster,
            config,
            templates: templates.into_iter().map(|t| (t.id, t)).collect(),
            tenant_info,
            tenant_group,
            groups,
            inflight: BTreeMap::new(),
            records: Vec::new(),
            scaling_events: Vec::new(),
            ttp_trace: Vec::new(),
            next_trace_ms,
            offset_ms,
            historical_ratios: BTreeMap::new(),
            meter: UsageMeter::new(),
            telemetry,
        })
    }

    /// Supplies the per-tenant historical activity ratios (fraction of time
    /// active in the consolidation history). With these set, elastic
    /// scaling only moves tenants that are genuinely *more active than the
    /// history indicated* (Chapter 5.1); without them, everyone the runtime
    /// grouping cannot keep in one group is eligible.
    pub fn set_historical_activity(&mut self, ratios: impl IntoIterator<Item = (TenantId, f64)>) {
        self.historical_ratios = ratios.into_iter().collect();
    }

    /// The simulated instant where the log timeline starts (deployment
    /// completion).
    pub fn log_epoch(&self) -> SimTime {
        SimTime::from_ms(self.offset_ms)
    }

    /// Number of tenant-groups (including scale-out groups created at
    /// run time).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group currently serving a tenant.
    pub fn group_of(&self, tenant: TenantId) -> Option<usize> {
        self.tenant_group.get(&tenant).copied()
    }

    /// Replays a chronologically ordered sequence of queries and returns
    /// the service report. May be called repeatedly with consecutive log
    /// segments; each call *drains* the accumulated records, scaling
    /// events, trace samples, and telemetry events into the returned
    /// report (summary counters stay cumulative inside the telemetry
    /// snapshot), so replaying a large log does not hold two copies of
    /// the record vectors in memory at once. Use [`Self::records`] or
    /// [`Self::report`] for non-draining access.
    pub fn replay<I>(&mut self, queries: I) -> ThriftyResult<ServiceReport>
    where
        I: IntoIterator<Item = IncomingQuery>,
    {
        for q in queries {
            self.submit(q)?;
        }
        self.drain()?;
        Ok(self.take_report())
    }

    /// Submits one query at its log time, first delivering every simulator
    /// event up to that instant. Building block for closed-loop drivers
    /// that react to completions (e.g. the Figure 7.7 takeover). The
    /// effective submission instant never precedes the simulation clock:
    /// a query bearing an older log timestamp (e.g. scheduled against a
    /// completion that surfaced late) executes *now* — the monitor's
    /// interval accounting requires monotone event times.
    pub fn submit(&mut self, q: IncomingQuery) -> ThriftyResult<()> {
        let at =
            SimTime::from_ms((q.submit.as_ms() + self.offset_ms).max(self.cluster.now().as_ms()));
        self.advance_to(at)?;
        self.submit_query(q, at)
    }

    /// The current instant on the log timeline.
    pub fn log_now(&self) -> SimTime {
        SimTime::from_ms(self.cluster.now().as_ms().saturating_sub(self.offset_ms))
    }

    /// Read access to the underlying simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The MPPDB instances serving tenant-group `gi` (index 0 is the
    /// tuning MPPDB).
    pub fn group_instances(&self, gi: usize) -> Option<&[InstanceId]> {
        self.groups.get(gi).map(|g| g.instances.as_slice())
    }

    /// Schedules a node failure at a log-time instant. The MPPDB stays
    /// online at reduced parallelism and a replacement node is started
    /// automatically if the pool has one (Chapter 4.4).
    pub fn inject_node_failure(&mut self, node: NodeId, at_log: SimTime) -> ThriftyResult<()> {
        let at = SimTime::from_ms(at_log.as_ms() + self.offset_ms);
        self.cluster.inject_node_failure(node, at)?;
        Ok(())
    }

    /// Invoices a tenant under the given tariff (Chapter 3 pricing model:
    /// requested nodes + metered active usage).
    pub fn invoice(
        &self,
        tenant: TenantId,
        tariff: &Tariff,
        billing_days: f64,
    ) -> ThriftyResult<Invoice> {
        let info = self
            .tenant_info
            .get(&tenant)
            .ok_or(ThriftyError::UnknownTenant(tenant))?;
        Ok(self.meter.invoice(info, tariff, billing_days))
    }

    /// The observed per-tenant activity ratios since the deployment went
    /// live — the Tenant Activity Monitor's "active tenant ratio of all
    /// tenants in the past 30 days" feed (Chapter 3). These are exactly the
    /// histories the next (re-)consolidation cycle should be advised with,
    /// and the baseline [`Self::set_historical_activity`] expects.
    pub fn observed_activity_ratios(&self) -> Vec<(TenantId, f64)> {
        let elapsed = self
            .cluster
            .now()
            .as_ms()
            .saturating_sub(self.offset_ms)
            .max(1) as f64;
        self.meter
            .all_active_ms()
            .into_iter()
            .map(|(t, ms)| (t, ms as f64 / elapsed))
            .collect()
    }

    /// The re-consolidation list (Chapter 5.1): tenants in groups that have
    /// gone through elastic scaling (including the tenants moved to
    /// scale-out MPPDBs). These get re-consolidated together with new and
    /// de-registered tenants at the next consolidation cycle.
    pub fn reconsolidation_list(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self
            .groups
            .iter()
            .filter(|g| g.has_scaled || g.parent.is_some())
            .flat_map(|g| g.members.iter().map(|m| m.id))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Advances the service (and the underlying simulation) to a log-time
    /// instant, delivering completions and scaling events on the way.
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// delivered events violate the service's bookkeeping invariants.
    pub fn advance_log_time(&mut self, log_time: SimTime) -> ThriftyResult<()> {
        self.advance_to(SimTime::from_ms(log_time.as_ms() + self.offset_ms))
    }

    /// The SLA records produced so far, in completion order.
    pub fn records(&self) -> &[SlaRecord] {
        &self.records
    }

    /// Processes all outstanding simulator work (lets every running query
    /// finish).
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// delivered events violate the service's bookkeeping invariants.
    pub fn drain(&mut self) -> ThriftyResult<()> {
        while let Some(t) = self.cluster.peek_next_event_time() {
            self.advance_to(t)?;
        }
        Ok(())
    }

    /// Builds the report for everything replayed so far without consuming
    /// any state (clones the record vectors; prefer [`Self::into_report`]
    /// or the draining [`Self::replay`] for large logs).
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            records: self.records.clone(),
            summary: SlaSummary::from_records(&self.records),
            scaling_events: self.scaling_events.clone(),
            ttp_trace: self.ttp_trace.clone(),
            telemetry: self.telemetry_snapshot(),
        }
    }

    /// Consumes the service and produces the final report without cloning
    /// the accumulated record vectors. Outstanding simulator work is
    /// drained first, so every submitted query is accounted for.
    ///
    /// # Errors
    ///
    /// Propagates [`ThriftyError::Internal`] (or a simulator error) if the
    /// final drain violates the service's bookkeeping invariants.
    pub fn into_report(mut self) -> ThriftyResult<ServiceReport> {
        self.drain()?;
        Ok(self.take_report())
    }

    /// A snapshot of the telemetry recorded so far, with per-instance
    /// utilization filled in from the live cluster.
    pub fn telemetry_snapshot(&self) -> crate::telemetry::TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        if snap.enabled {
            self.fill_instance_utilization(&mut snap);
        }
        snap
    }

    fn fill_instance_utilization(&self, snap: &mut crate::telemetry::TelemetrySnapshot) {
        let now = self.cluster.now();
        let epoch = SimTime::from_ms(self.offset_ms);
        snap.instances = self
            .cluster
            .instances()
            .map(|inst| InstanceUtilization::from_instance(inst, epoch, now))
            .collect();
    }

    /// Moves the accumulated records out of the service into a report.
    /// `scaling_events` can only be drained while no scale-out is pending
    /// (a pending scale holds an index into the vector); after
    /// [`Self::drain`] that is the normal state.
    fn take_report(&mut self) -> ServiceReport {
        let records = std::mem::take(&mut self.records);
        let summary = SlaSummary::from_records(&records);
        let scaling_pending = self.groups.iter().any(|g| g.pending_scale.is_some());
        let scaling_events = if scaling_pending {
            self.scaling_events.clone()
        } else {
            std::mem::take(&mut self.scaling_events)
        };
        let ttp_trace = std::mem::take(&mut self.ttp_trace);
        let mut telemetry = self.telemetry.take_snapshot();
        if telemetry.enabled {
            self.fill_instance_utilization(&mut telemetry);
        }
        ServiceReport {
            records,
            summary,
            scaling_events,
            ttp_trace,
            telemetry,
        }
    }

    /// Schedules every node failure of a [`FailurePlan`] at its log-time
    /// instant (the plan's times are interpreted on the log timeline, like
    /// [`Self::inject_node_failure`]).
    pub fn apply_failure_plan(&mut self, plan: &FailurePlan) -> ThriftyResult<()> {
        for &(node, at) in plan.events() {
            self.inject_node_failure(node, at)?;
        }
        Ok(())
    }

    /// Translates an absolute simulated instant to the log timeline.
    fn log_ms(&self, abs_ms: u64) -> u64 {
        abs_ms.saturating_sub(self.offset_ms)
    }

    fn route_counter(kind: RouteKind) -> &'static str {
        match kind {
            RouteKind::Sticky => "route.sticky",
            RouteKind::TuningFree => "route.tuning_free",
            RouteKind::OtherFree => "route.other_free",
            RouteKind::Overflow => "route.overflow",
        }
    }

    fn advance_to(&mut self, t: SimTime) -> ThriftyResult<()> {
        self.sample_traces_until(t.as_ms());
        let events = self.cluster.run_until(t);
        for event in events {
            match event {
                SimEvent::QueryCompleted(c) => self.handle_completion(c)?,
                SimEvent::InstanceReady { instance, at } => {
                    self.activate_scale_out(instance, at)?;
                }
                SimEvent::NodeFailed { node, instance, at } => {
                    // The MPPDB stays online at reduced parallelism
                    // (Chapter 4.4); record the event for the operators.
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.failed");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::NodeFailed {
                            at_ms,
                            node,
                            instance,
                        });
                    }
                }
                SimEvent::NodeReplaced { instance, node, at } => {
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.replaced");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::NodeReplaced {
                            at_ms,
                            instance,
                            node,
                        });
                    }
                }
                SimEvent::ReplacementDeferred { instance, node, at } => {
                    // No spare was available; the instance runs degraded
                    // until the pool refills and the retry fires.
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.replacement_deferred");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::ReplacementDeferred {
                            at_ms,
                            instance,
                            node,
                        });
                    }
                }
                SimEvent::ReplacementRetried { instance, node, at } => {
                    if self.telemetry.is_enabled() {
                        self.telemetry.incr("nodes.replacement_retried");
                        let at_ms = self.log_ms(at.as_ms());
                        self.telemetry.record(TelemetryEvent::ReplacementRetried {
                            at_ms,
                            instance,
                            node,
                        });
                    }
                }
                // Tenant loads outside scaling do not occur in the
                // service path.
                SimEvent::TenantLoaded { .. } => {}
            }
        }
        Ok(())
    }

    fn sample_traces_until(&mut self, now_ms: u64) {
        let Some(trace) = &self.config.trace else {
            return;
        };
        while self.next_trace_ms <= now_ms {
            let at = self.next_trace_ms;
            for &g in &trace.groups {
                if let Some(group) = self.groups.get(g) {
                    self.ttp_trace.push(TtpSample {
                        at_ms: at.saturating_sub(self.offset_ms),
                        group: g,
                        rt_ttp: group.monitor.rt_ttp(at),
                    });
                }
            }
            self.next_trace_ms += trace.interval_ms;
        }
    }

    fn submit_query(&mut self, q: IncomingQuery, at: SimTime) -> ThriftyResult<()> {
        let tenant = *self
            .tenant_info
            .get(&q.tenant)
            .ok_or(ThriftyError::UnknownTenant(q.tenant))?;
        let gi = *self
            .tenant_group
            .get(&q.tenant)
            .ok_or(ThriftyError::UnknownTenant(q.tenant))?;
        let template = *self
            .templates
            .get(&q.template)
            .ok_or(ThriftyError::UnknownTemplate(q.template))?;
        let group = &mut self.groups[gi];
        let route = group.router.route(q.tenant);
        let instance = group.instances[route.mppdb];
        let spec = QuerySpec::new(template, tenant.data_gb, tenant.id);
        let qid = self.cluster.submit(instance, spec)?;
        group.monitor.on_query_start(q.tenant, at.as_ms());
        self.meter.on_query_start(q.tenant, at.as_ms());
        let monitor_generation = group.monitor_generation;
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(at.as_ms());
            self.telemetry.incr("queries.submitted");
            self.telemetry.incr(Self::route_counter(route.kind));
            self.telemetry.record(TelemetryEvent::QuerySubmitted {
                at_ms,
                query: qid,
                tenant: q.tenant,
                group: gi,
            });
            self.telemetry.record(TelemetryEvent::QueryRouted {
                at_ms,
                query: qid,
                tenant: q.tenant,
                group: gi,
                mppdb: route.mppdb,
                kind: route.kind,
            });
        }
        self.inflight.insert(
            qid,
            Inflight {
                tenant: q.tenant,
                group: gi,
                mppdb: route.mppdb,
                log_submit: q.submit,
                submitted_abs: at,
                baseline: q.baseline,
                route: route.kind,
                monitor_generation,
            },
        );
        Ok(())
    }

    fn handle_completion(&mut self, c: QueryCompletion) -> ThriftyResult<()> {
        let Some(info) = self.inflight.remove(&c.query) else {
            return Ok(()); // aborted by decommission
        };
        let now_ms = c.finished.as_ms();
        let group = &mut self.groups[info.group];
        group.router.complete(info.mppdb, info.tenant)?;
        if info.monitor_generation == group.monitor_generation {
            group.monitor.on_query_finish(info.tenant, now_ms)?;
        }
        self.meter.on_query_finish(info.tenant, now_ms)?;
        // Achieved latency is measured from the query's first submission,
        // not from any re-submission a scale-out migration performed.
        let achieved = c.finished.saturating_since(info.submitted_abs);
        let record = SlaRecord::evaluate(
            info.tenant,
            info.group,
            c.template,
            info.log_submit,
            achieved,
            info.baseline,
            info.route,
            &self.config.sla_policy,
        );
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("queries.completed");
            self.telemetry.incr(if record.met {
                "sla.met"
            } else {
                "sla.violated"
            });
            self.telemetry.observe("query.latency_ms", achieved.as_ms());
            // Normalized performance vs the dedicated baseline, in percent
            // (100 = exactly the dedicated latency).
            self.telemetry
                .observe("query.slowdown_pct", (record.normalized * 100.0) as u64);
            self.telemetry.record(TelemetryEvent::QueryCompleted {
                at_ms,
                query: c.query,
                tenant: info.tenant,
                group: info.group,
                latency_ms: achieved.as_ms(),
                met: record.met,
            });
        }
        self.records.push(record);
        self.maybe_scale(info.group, now_ms)
    }

    /// Checks a group's RT-TTP and triggers lightweight elastic scaling
    /// when it falls below `P` (Chapter 5.1).
    fn maybe_scale(&mut self, gi: usize, now_ms: u64) -> ThriftyResult<()> {
        if !self.config.elastic_scaling {
            return Ok(());
        }
        {
            let group = &self.groups[gi];
            if group.parent.is_some()
                || group.pending_scale.is_some()
                || now_ms.saturating_sub(group.last_scaling_check_ms)
                    < self.config.scaling_check_interval_ms
            {
                return Ok(());
            }
        }
        self.groups[gi].last_scaling_check_ms = now_ms;
        if self.groups[gi].monitor.rt_ttp(now_ms) >= self.config.sla_p {
            return Ok(());
        }
        let group = &self.groups[gi];
        let history = if self.historical_ratios.is_empty() {
            None
        } else {
            Some(&self.historical_ratios)
        };
        let over_active = identify_over_active(
            &group.members,
            &group.monitor,
            group.monitor.budget(),
            self.config.sla_p,
            self.config.scaling_epoch_ms,
            now_ms,
            history,
        );
        // Never strip the whole group; keep at least one member.
        if over_active.is_empty() || over_active.len() >= group.members.len() {
            return Ok(());
        }
        let datasets: Vec<(TenantId, f64)> = over_active
            .iter()
            .map(|id| {
                let t = self.tenant_info[id];
                (t.id, t.data_gb)
            })
            .collect();
        let node_size = self.groups[gi].node_size as usize;
        let instance = match self.cluster.provision_instance(node_size, &datasets) {
            Ok(id) => id,
            // No spare nodes: the cloud ran dry; scaling is impossible now.
            Err(SimError::InsufficientNodes { .. }) => return Ok(()),
            // Any other provisioning failure is a bug in our request —
            // surface it instead of panicking.
            Err(e) => return Err(ThriftyError::Sim(e)),
        };
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            let nodes = self
                .cluster
                .instance(instance)
                .map(|i| i.nodes().len())
                .unwrap_or(0);
            self.telemetry.incr("scaling.triggered");
            self.telemetry.incr("instances.provisioned");
            self.telemetry.record(TelemetryEvent::ScalingTriggered {
                at_ms,
                group: gi,
                tenants: over_active.len(),
            });
            self.telemetry.record(TelemetryEvent::InstanceProvisioned {
                at_ms,
                instance,
                nodes,
            });
        }
        let event_idx = self.scaling_events.len();
        self.scaling_events.push(ScalingEvent {
            group: gi,
            triggered_at: SimTime::from_ms(now_ms.saturating_sub(self.offset_ms)),
            over_active: over_active.clone(),
            ready_at: None,
        });
        self.groups[gi].pending_scale = Some(PendingScale {
            instance,
            moved: over_active,
            event_idx,
        });
        Ok(())
    }

    /// Completes a pending scale-out when its MPPDB finishes loading: the
    /// over-active tenants move to a new single-MPPDB group and the parent
    /// group's monitoring restarts without their history.
    fn activate_scale_out(&mut self, instance: InstanceId, at: SimTime) -> ThriftyResult<()> {
        let Some(gi) = self
            .groups
            .iter()
            .position(|g| matches!(&g.pending_scale, Some(p) if p.instance == instance))
        else {
            return Ok(());
        };
        // The position lookup above matched on `pending_scale`, so `take`
        // must yield it; anything else is corrupt bookkeeping.
        let Some(pending) = self.groups[gi].pending_scale.take() else {
            return Err(ThriftyError::Internal(
                "a matched pending scale-out must be present in its group",
            ));
        };
        self.groups[gi].has_scaled = true;
        let now_ms = at.as_ms();
        self.scaling_events[pending.event_idx].ready_at =
            Some(SimTime::from_ms(now_ms.saturating_sub(self.offset_ms)));

        // Split members.
        let moved_set: Vec<TenantId> = pending.moved.clone();
        let (moved, kept): (Vec<Tenant>, Vec<Tenant>) = self.groups[gi]
            .members
            .iter()
            .partition(|m| moved_set.contains(&m.id));
        self.groups[gi].members = kept;

        // Restart the parent group's monitor without the movers' history
        // ("the tenant-group excluded all the activities of the removed
        // tenant" — Chapter 7.5). Queries already running keep their old
        // generation so their completions do not unbalance the new monitor;
        // remaining members' running queries are re-registered.
        let budget = self.groups[gi].monitor.budget();
        self.groups[gi].monitor =
            GroupActivityMonitor::new(budget, self.config.monitor_window_ms, now_ms);
        self.groups[gi].monitor_generation += 1;
        let new_generation = self.groups[gi].monitor_generation;
        let kept_ids: Vec<TenantId> = self.groups[gi].members.iter().map(|m| m.id).collect();
        for info in self.inflight.values_mut() {
            if info.group == gi && kept_ids.contains(&info.tenant) {
                self.groups[gi].monitor.on_query_start(info.tenant, now_ms);
                info.monitor_generation = new_generation;
            }
        }

        // The new group: one MPPDB, exclusively serving the over-active
        // tenants.
        let new_gi = self.groups.len();
        let node_size = self.groups[gi].node_size;
        for t in &moved {
            self.tenant_group.insert(t.id, new_gi);
        }
        if self.telemetry.is_enabled() {
            let at_ms = self.log_ms(now_ms);
            self.telemetry.incr("scaling.activated");
            self.telemetry
                .incr_by("tenants.migrated", moved.len() as u64);
            self.telemetry.record(TelemetryEvent::ScalingActivated {
                at_ms,
                group: gi,
                new_group: new_gi,
            });
            for t in &moved {
                self.telemetry.record(TelemetryEvent::TenantMigrated {
                    at_ms,
                    tenant: t.id,
                    from_group: gi,
                    to_group: new_gi,
                });
            }
            self.telemetry
                .set_gauge("groups", (self.groups.len() + 1) as i64);
        }
        self.groups.push(GroupRuntime {
            members: moved,
            instances: vec![instance],
            router: QueryRouter::new(1),
            monitor: GroupActivityMonitor::new(1, self.config.monitor_window_ms, now_ms),
            monitor_generation: 0,
            node_size,
            pending_scale: None,
            last_scaling_check_ms: now_ms,
            parent: Some(gi),
            has_scaled: false,
        });

        // "Thrifty routed all the queries to the new MPPDB" (Chapter 7.5):
        // the movers' queries still queued on the old group are migrated,
        // freeing the tuning MPPDB from the overload backlog. Their achieved
        // latency keeps the original submission time, so the stall they
        // already suffered stays visible in the SLA records.
        let migrate: Vec<QueryId> = self
            .inflight
            .iter()
            .filter(|(_, info)| info.group == gi && moved_set.contains(&info.tenant))
            .map(|(&qid, _)| qid)
            .collect();
        for qid in migrate {
            // Collected from the map just above and nothing removes entries
            // in between; a miss would mean corrupt bookkeeping.
            let Some(info) = self.inflight.remove(&qid) else {
                return Err(ThriftyError::Internal(
                    "a query listed for migration must still be in flight",
                ));
            };
            let old_instance = self.groups[gi].instances[info.mppdb];
            // The query may have completed within the same event batch that
            // delivered this instance-ready notification (the cluster state
            // is already final for the whole batch). Its completion event is
            // still queued behind us: put the bookkeeping back and let the
            // normal completion path handle it.
            let Ok((spec, _submitted)) = self.cluster.cancel_query(old_instance, qid) else {
                self.inflight.insert(qid, info);
                continue;
            };
            self.groups[gi].router.complete(info.mppdb, info.tenant)?;
            // Restart on the new MPPDB. The new query id replaces the old
            // one in the in-flight map; latency accounting is anchored to
            // the original log submission via `log_submit`/`baseline`. The
            // scale-out instance hosts every moved tenant, so a submission
            // failure is a genuine error worth surfacing.
            let route = self.groups[new_gi].router.route(info.tenant);
            let new_qid = self.cluster.submit(instance, spec)?;
            self.groups[new_gi]
                .monitor
                .on_query_start(info.tenant, now_ms);
            if self.telemetry.is_enabled() {
                let at_ms = self.log_ms(now_ms);
                self.telemetry.incr("queries.cancelled");
                self.telemetry.incr("queries.submitted");
                self.telemetry.incr("queries.migrated");
                self.telemetry.incr(Self::route_counter(route.kind));
                self.telemetry.record(TelemetryEvent::QueryCancelled {
                    at_ms,
                    query: qid,
                    tenant: info.tenant,
                    group: gi,
                });
                self.telemetry.record(TelemetryEvent::QuerySubmitted {
                    at_ms,
                    query: new_qid,
                    tenant: info.tenant,
                    group: new_gi,
                });
                self.telemetry.record(TelemetryEvent::QueryRouted {
                    at_ms,
                    query: new_qid,
                    tenant: info.tenant,
                    group: new_gi,
                    mppdb: route.mppdb,
                    kind: route.kind,
                });
            }
            self.inflight.insert(
                new_qid,
                Inflight {
                    tenant: info.tenant,
                    group: new_gi,
                    mppdb: route.mppdb,
                    log_submit: info.log_submit,
                    submitted_abs: info.submitted_abs,
                    baseline: info.baseline,
                    route: route.kind,
                    monitor_generation: self.groups[new_gi].monitor_generation,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::TenantGroupPlan;
    use mppdb_sim::query::TemplateId;

    fn linear_template() -> QueryTemplate {
        QueryTemplate::new(TemplateId(1), 600.0, 0.0)
    }

    fn two_tenant_plan(a: u32) -> DeploymentPlan {
        DeploymentPlan {
            groups: vec![TenantGroupPlan::new(
                vec![
                    Tenant::new(TenantId(0), 2, 200.0),
                    Tenant::new(TenantId(1), 2, 200.0),
                ],
                a,
                2,
            )],
        }
    }

    fn service(a: u32, scaling: bool) -> ThriftyService {
        let config = ServiceConfig::builder().elastic_scaling(scaling).build();
        ThriftyService::deploy(&two_tenant_plan(a), 16, [linear_template()], config).unwrap()
    }

    fn q(tenant: u32, submit_s: u64, baseline_ms: u64) -> IncomingQuery {
        IncomingQuery {
            tenant: TenantId(tenant),
            submit: SimTime::from_secs(submit_s),
            template: TemplateId(1),
            baseline: SimDuration::from_ms(baseline_ms),
        }
    }

    #[test]
    fn disjoint_tenants_meet_their_slas() {
        let mut s = service(2, false);
        // Dedicated latency of the template on a 2-node MPPDB over 200 GB:
        // 600 * 200 / 2 = 60 000 ms. Submissions far apart.
        let report = s
            .replay([q(0, 0, 60_000), q(1, 100, 60_000), q(0, 200, 60_000)])
            .unwrap();
        assert_eq!(report.summary.total, 3);
        assert_eq!(report.summary.met, 3);
        assert!(report.scaling_events.is_empty());
        for r in &report.records {
            assert!((r.normalized - 1.0).abs() < 0.01, "{r:?}");
        }
    }

    #[test]
    fn concurrent_tenants_use_separate_replicas() {
        let mut s = service(2, false);
        // Both tenants submit at t = 0: Algorithm 1 sends them to different
        // MPPDBs, so both finish at dedicated speed.
        let report = s.replay([q(0, 0, 60_000), q(1, 0, 60_000)]).unwrap();
        assert_eq!(report.summary.met, 2);
        let groups: Vec<RouteKind> = report.records.iter().map(|r| r.route).collect();
        assert!(groups.contains(&RouteKind::TuningFree));
        assert!(groups.contains(&RouteKind::OtherFree));
    }

    #[test]
    fn overflow_violates_sla_with_one_replica() {
        let mut s = service(1, false);
        // One MPPDB for two tenants active together: the second query
        // overflows onto the busy instance and both slow down 2x.
        let report = s.replay([q(0, 0, 60_000), q(1, 0, 60_000)]).unwrap();
        assert_eq!(report.summary.total, 2);
        assert_eq!(report.summary.met, 0);
        assert!(report
            .records
            .iter()
            .any(|r| r.route == RouteKind::Overflow));
        assert!(report.summary.worst_normalized > 1.5);
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let mut s = service(2, false);
        let err = s.replay([q(9, 0, 1_000)]).unwrap_err();
        assert_eq!(err, ThriftyError::UnknownTenant(TenantId(9)));
    }

    #[test]
    fn unknown_template_is_rejected() {
        let mut s = service(2, false);
        let err = s
            .replay([IncomingQuery {
                tenant: TenantId(0),
                submit: SimTime::ZERO,
                template: TemplateId(77),
                baseline: SimDuration::SECOND,
            }])
            .unwrap_err();
        assert_eq!(err, ThriftyError::UnknownTemplate(TemplateId(77)));
    }

    #[test]
    fn log_epoch_is_deployment_ready_time() {
        let s = service(2, false);
        assert!(s.log_epoch() > SimTime::ZERO);
        assert_eq!(s.group_count(), 1);
        assert_eq!(s.group_of(TenantId(0)), Some(0));
        assert_eq!(s.group_of(TenantId(9)), None);
    }

    #[test]
    fn elastic_scaling_moves_an_over_active_tenant() {
        // One replica (A = 1), two tenants. Tenant 0 hammers the group with
        // back-to-back queries while tenant 1 submits periodically: the
        // RT-TTP collapses, tenant 0 is identified as over-active, and a
        // scale-out MPPDB takes it over.
        let config = ServiceConfig::builder()
            .elastic_scaling(true)
            .monitor_window_ms(24 * 3_600_000)
            .scaling_check_interval_ms(10_000)
            .build();
        let mut s =
            ThriftyService::deploy(&two_tenant_plan(1), 16, [linear_template()], config).unwrap();
        // Baseline 60 s queries. Tenant 0 submits every 50 s (continuously
        // active), tenant 1 every 400 s.
        let mut queries = Vec::new();
        for k in 0..200u64 {
            queries.push(q(0, k * 50, 60_000));
        }
        for k in 0..25u64 {
            queries.push(q(1, 40 + k * 400, 60_000));
        }
        queries.sort_by_key(|e| e.submit);
        let report = s.replay(queries).unwrap();
        assert!(
            !report.scaling_events.is_empty(),
            "scaling must have triggered"
        );
        let ev = &report.scaling_events[0];
        assert_eq!(ev.over_active, vec![TenantId(0)]);
        assert!(ev.ready_at.is_some(), "the scale-out MPPDB must go ready");
        // After activation the hammering tenant is served by the new group.
        assert_eq!(s.group_of(TenantId(0)), Some(1));
        assert_eq!(s.group_of(TenantId(1)), Some(0));
        assert_eq!(s.group_count(), 2);
    }

    #[test]
    fn replay_drains_and_into_report_consumes() {
        let mut s = service(2, false);
        let first = s.replay([q(0, 0, 60_000)]).unwrap();
        assert_eq!(first.records.len(), 1);
        // 2 InstanceProvisioned + QuerySubmitted + QueryRouted + QueryCompleted.
        assert_eq!(first.telemetry.events.len(), 5);
        let second = s.replay([q(1, 1_000, 60_000)]).unwrap();
        assert_eq!(second.records.len(), 1, "first segment was drained");
        assert_eq!(
            second.telemetry.counter("queries.submitted"),
            2,
            "registry counters stay cumulative across segments"
        );
        let mut s2 = service(2, false);
        s2.submit(q(0, 0, 60_000)).unwrap();
        let report = s2.into_report().unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.summary.met, 1);
    }

    #[test]
    fn telemetry_counters_reconcile_with_records() {
        let mut s = service(2, false);
        let report = s
            .replay([q(0, 0, 60_000), q(1, 0, 60_000), q(0, 200, 60_000)])
            .unwrap();
        let t = &report.telemetry;
        assert!(t.enabled);
        assert_eq!(t.counter("queries.submitted"), 3);
        assert_eq!(t.counter("queries.completed"), 3);
        assert_eq!(t.counter("queries.cancelled"), 0);
        assert_eq!(
            t.counter("sla.met") + t.counter("sla.violated"),
            report.summary.total as u64
        );
        assert_eq!(t.counter("instances.provisioned"), 2);
        assert!(!t.instances.is_empty());
        assert_eq!(t.histograms["query.latency_ms"].count, 3);
    }

    #[test]
    fn disabled_telemetry_yields_empty_snapshot() {
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .telemetry(TelemetryConfig::disabled())
            .build();
        let mut s =
            ThriftyService::deploy(&two_tenant_plan(2), 16, [linear_template()], config).unwrap();
        let report = s.replay([q(0, 0, 60_000)]).unwrap();
        assert_eq!(report.summary.total, 1, "service behaviour is unchanged");
        assert!(!report.telemetry.enabled);
        assert!(report.telemetry.counters.is_empty());
        assert!(report.telemetry.events.is_empty());
        assert!(report.telemetry.instances.is_empty());
    }

    #[test]
    fn trace_sampling_produces_monotone_timestamps() {
        let config = ServiceConfig::builder()
            .elastic_scaling(false)
            .trace(TraceConfig::new(vec![0], 100_000))
            .build();
        let mut s =
            ThriftyService::deploy(&two_tenant_plan(2), 16, [linear_template()], config).unwrap();
        let report = s
            .replay([q(0, 0, 60_000), q(1, 500, 60_000), q(0, 1_000, 60_000)])
            .unwrap();
        assert!(!report.ttp_trace.is_empty());
        for w in report.ttp_trace.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
        assert!(report
            .ttp_trace
            .iter()
            .all(|s| s.rt_ttp >= 0.0 && s.rt_ttp <= 1.0));
    }
}
